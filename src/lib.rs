//! # ErbiumDB
//!
//! An entity-relationship database system: a Rust implementation of the
//! CIDR'25 paper *"Beyond Relations: A Case for Elevating to the
//! Entity-Relationship Abstraction"* (Amol Deshpande), with an embedded
//! relational substrate replacing the paper's PostgreSQL backend.
//!
//! The E/R model — entities, relationships, composite and multi-valued
//! attributes, weak entity sets, ISA hierarchies — is the *primary* data
//! model: you define schemas, run CRUD, and write queries against it, while
//! the system freely chooses (and changes) the physical relational layout
//! underneath.
//!
//! Start with [`core::Database`]; the layer crates are re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `erbium-core` | the `Database` facade, governance |
//! | [`model`] | `erbium-model` | E/R schema + E/R graph |
//! | [`query`] | `erbium-query` | ERQL parser (DDL + SELECT with `VIA`/`NEST`) |
//! | [`mapping`] | `erbium-mapping` | graph-cover mappings, CRUD + query rewriting |
//! | [`engine`] | `erbium-engine` | plans, optimizer, executor |
//! | [`storage`] | `erbium-storage` | tables, indexes, transactions, factorized storage |
//! | [`evolve`] | `erbium-evolve` | schema evolution, migration, versioning |
//! | [`advisor`] | `erbium-advisor` | workload-aware mapping advisor |
//! | [`datagen`] | `erbium-datagen` | the paper's synthetic instances |
//! | [`client`] | `erbium-client` | ERSP wire protocol + `RemoteClient` |
//! | [`server`] | `erbium-server` | TCP server: sessions, admission control |
//!
//! Embedded and networked use share one API: the [`Connection`] trait
//! (`query`, `query_params`, `prepare`/`execute_prepared`, `transaction`,
//! `snapshot`, `set_option`) is implemented by [`core::Database`],
//! [`core::SharedDatabase`], and [`client::RemoteClient`] alike.
//!
//! ```
//! use erbiumdb::core::Database;
//! use erbiumdb::storage::Value;
//!
//! let mut db = Database::new();
//! db.execute(
//!     "CREATE ENTITY city (name text KEY, population int);
//!      CREATE ENTITY capital EXTENDS city (since int NULLABLE);",
//! ).unwrap();
//! db.install_default().unwrap();
//! db.insert("capital", &[
//!     ("name", Value::str("Annapolis")),
//!     ("population", Value::Int(40_000)),
//!     ("since", Value::Int(1694)),
//! ]).unwrap();
//! let r = db.query("SELECT c.name FROM city c WHERE c.population < 100000").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! ```

pub use erbium_advisor as advisor;
pub use erbium_client as client;
pub use erbium_core as core;
pub use erbium_datagen as datagen;
pub use erbium_engine as engine;
pub use erbium_evolve as evolve;
pub use erbium_mapping as mapping;
pub use erbium_model as model;
pub use erbium_query as query;
pub use erbium_server as server;
pub use erbium_storage as storage;

pub use erbium_core::{AccessPolicy, Database, DbError, DbResult, QueryResult};
pub use erbium_model::api::{CacheStats, Connection, ReadSession, Rows, TxOps};
