//! Integration tests for the pull-based streaming executor, run over the
//! paper's query shapes (Section 6) compiled by the mapping layer.
//!
//! Three properties are checked end-to-end:
//!
//! 1. **Equivalence** — for every (mapping, query) pair, draining the
//!    stream yields the same rows in the same order regardless of batch
//!    size, morsel size, or thread count. The streaming executor is
//!    deterministic by construction (morsel outputs are reassembled in
//!    morsel order), so this is exact equality, not multiset equality.
//! 2. **Early termination** — a `LIMIT k` plan stops pulling from (and
//!    scanning inside) its input as soon as `k` rows are out, visible in
//!    the per-operator metrics.
//! 3. **Metrics shape** — the [`ExecMetrics`] tree returned alongside the
//!    rows mirrors the physical plan the rewriter produced.

use erbium_datagen::{populate_experiment, ExperimentConfig};
use erbium_engine::{execute_streaming, execute_with_metrics, ExecContext, Plan};
use erbium_mapping::presets::paper;
use erbium_mapping::{CoFormat, Lowering, QueryRewriter};
use erbium_model::fixtures;
use erbium_storage::{Catalog, Row};

/// Build a populated experiment instance under one of the paper mappings.
fn setup(mapping_name: &str) -> (Lowering, Catalog) {
    let schema = fixtures::experiment();
    let mapping = match mapping_name {
        "M1" => paper::m1(&schema),
        "M2" => paper::m2(&schema),
        "M3" => paper::m3(&schema),
        "M4" => paper::m4(&schema),
        "M5" => paper::m5(&schema).unwrap(),
        "M6f" => paper::m6(&schema, CoFormat::Factorized).unwrap(),
        other => panic!("unknown mapping {other}"),
    };
    let lw = Lowering::build(&schema, &mapping).unwrap();
    let mut cat = Catalog::new();
    lw.install(&mut cat).unwrap();
    populate_experiment(&mut cat, &lw, &ExperimentConfig::tiny()).unwrap();
    (lw, cat)
}

fn plan_for(lw: &Lowering, cat: &Catalog, sql: &str) -> Plan {
    let stmt = erbium_query::parse_single(sql).unwrap();
    let erbium_query::Statement::Select(sel) = stmt else { panic!("expected SELECT") };
    QueryRewriter::new(lw, cat).rewrite_optimized(&sel).unwrap()
}

fn drain(plan: &Plan, cat: &Catalog, ctx: &ExecContext) -> Vec<Row> {
    execute_streaming(plan, cat, ctx).unwrap().drain().unwrap()
}

/// The paper's experiment queries that are pure SELECTs (no parameters).
const QUERIES: &[(&str, &str)] = &[
    ("E1", "SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r"),
    ("E2", "SELECT UNNEST(r.r_mv1) FROM R r"),
    ("E5", "SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r"),
    (
        "E6",
        "SELECT r.r_id, s.s_id FROM R r JOIN S s VIA r_s \
         WHERE r.r_b < 10 AND s.s_b < 5",
    ),
    ("E8", "SELECT w.s_id, w.s1_no, r.r_id, r.r_a FROM S1 w JOIN R2 r VIA r2_s1"),
    ("E9a", "SELECT r.r_id, r.r2_a, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1"),
    ("E9b", "SELECT r.r_id, r.r2_a, r.r2_b FROM R2 r"),
];

const MAPPINGS: &[&str] = &["M1", "M3", "M4", "M5", "M6f"];

#[test]
fn streaming_is_invariant_under_batch_morsel_and_thread_configs() {
    for &mapping in MAPPINGS {
        let (lw, cat) = setup(mapping);
        for &(qid, sql) in QUERIES {
            let plan = plan_for(&lw, &cat, sql);
            let reference = drain(&plan, &cat, &ExecContext::default());
            assert!(
                !reference.is_empty(),
                "{mapping}/{qid}: fixture should produce rows\n{}",
                plan.explain()
            );
            let configs = [
                ExecContext::default().with_batch_size(1),
                ExecContext::default().with_batch_size(7).with_morsel_size(3),
                ExecContext::default().with_threads(1),
                ExecContext::default().with_threads(4),
                ExecContext::default().with_threads(4).with_batch_size(2).with_morsel_size(5),
                ExecContext::default().with_fusion(false),
                ExecContext::default().with_fusion(false).with_threads(4).with_morsel_size(3),
            ];
            for (i, ctx) in configs.iter().enumerate() {
                let rows = drain(&plan, &cat, ctx);
                assert_eq!(
                    rows, reference,
                    "{mapping}/{qid}: config #{i} diverged from default context\n{}",
                    plan.explain()
                );
            }
        }
    }
}

#[test]
fn batches_never_exceed_batch_size_and_are_nonempty() {
    let (lw, cat) = setup("M1");
    let plan = plan_for(&lw, &cat, QUERIES[0].1);
    let ctx = ExecContext::default().with_batch_size(5);
    let mut stream = execute_streaming(&plan, &cat, &ctx).unwrap();
    let mut total = 0usize;
    while let Some(batch) = stream.next_batch().unwrap() {
        assert!(!batch.is_empty(), "streams must never emit empty batches");
        assert!(batch.len() <= 5, "batch of {} exceeds batch_size", batch.len());
        total += batch.len();
    }
    assert_eq!(total, drain(&plan, &cat, &ExecContext::default()).len());
}

#[test]
fn limit_terminates_upstream_scan_early() {
    let (lw, cat) = setup("M4");
    // E9b under M4 is a plain single-table scan; wrap it in LIMIT 3.
    let plan = plan_for(&lw, &cat, QUERIES[6].1).limit(3);
    // Threads pinned: one scan wave examines up to threads x morsel slots,
    // so the rows_in bound below depends on the thread count.
    let ctx = ExecContext::default().with_batch_size(4).with_morsel_size(4).with_threads(2);
    let (rows, metrics) = execute_with_metrics(&plan, &cat, &ctx).unwrap();
    assert_eq!(rows.len(), 3);
    let limit = metrics.find("Limit").expect("limit node in metrics");
    assert_eq!(limit.rows_out, 3);
    // Full table is ExperimentConfig::tiny().n_r / 5 = 20 R2 entities; the
    // scan must have examined only the first morsel's worth of slots.
    let scan = metrics.leaves()[0];
    assert!(
        scan.rows_in < 20,
        "scan examined {} rows; LIMIT should have stopped it early\n{}",
        scan.rows_in,
        metrics.render()
    );
}

#[test]
fn metrics_tree_mirrors_rewritten_plan_for_e5_under_m1() {
    let (lw, cat) = setup("M1");
    // E5 under M1 is the paper's 3-way join: two Join nodes, three scans.
    let plan = plan_for(&lw, &cat, QUERIES[2].1);
    let (rows, metrics) = execute_with_metrics(&plan, &cat, &ExecContext::default()).unwrap();
    assert!(!rows.is_empty());
    fn count_joins(m: &erbium_engine::ExecMetrics) -> usize {
        usize::from(m.name.starts_with("Join"))
            + m.children.iter().map(count_joins).sum::<usize>()
    }
    assert_eq!(count_joins(&metrics), 2, "expected 2 join operators\n{}", metrics.render());
    assert_eq!(metrics.leaves().len(), 3, "expected 3 leaf scans\n{}", metrics.render());
    // Every operator that emitted rows must have recorded batches.
    fn check(m: &erbium_engine::ExecMetrics) {
        if m.rows_out > 0 {
            assert!(m.batches > 0, "{} emitted rows but no batches", m.name);
        }
        m.children.iter().for_each(check);
    }
    check(&metrics);
    // Root emits exactly the result rows.
    assert_eq!(metrics.rows_out as usize, rows.len());
}

/// Regression: `Value::Int` bound to a Float column is canonicalized to
/// `Value::Float` at ingest, so hash-join keys over that column match rows
/// inserted with the literal float form. Before canonicalization, the hash
/// of `Int(2)` differed from `Float(2.0)` and the join silently dropped
/// matches.
#[test]
fn hash_join_matches_int_populated_float_column() {
    use erbium_engine::{Expr, JoinKind};
    use erbium_storage::{Column, DataType, Table, TableSchema, Value};

    let mut cat = Catalog::new();
    let mut readings = Table::new(TableSchema::new(
        "readings",
        vec![Column::not_null("id", DataType::Int), Column::new("score", DataType::Float)],
        vec![0],
    ));
    // Mixed ingest: whole-number scores arrive as Ints, others as Floats.
    readings.insert(vec![Value::Int(1), Value::Int(2)]).unwrap();
    readings.insert(vec![Value::Int(2), Value::Float(2.0)]).unwrap();
    readings.insert(vec![Value::Int(3), Value::Float(3.5)]).unwrap();
    cat.create_table(readings).unwrap();

    let mut thresholds = Table::new(TableSchema::new(
        "thresholds",
        vec![Column::not_null("score", DataType::Float)],
        vec![0],
    ));
    thresholds.insert(vec![Value::Float(2.0)]).unwrap();
    thresholds.insert(vec![Value::Int(3)]).unwrap(); // canonicalized too
    cat.create_table(thresholds).unwrap();

    let plan = Plan::scan(&cat, "readings").unwrap().join(
        Plan::scan(&cat, "thresholds").unwrap(),
        JoinKind::Inner,
        vec![Expr::col(1)],
        vec![Expr::col(0)],
    );
    let mut rows = drain(&plan, &cat, &ExecContext::default());
    rows.sort();
    // Both the Int-ingested and Float-ingested score=2 rows must join.
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Float(2.0), Value::Float(2.0)],
            vec![Value::Int(2), Value::Float(2.0), Value::Float(2.0)],
        ],
        "Int-populated Float column must hash-join against Float literals"
    );
}

#[test]
fn cancellation_mid_stream_stops_execution() {
    let (lw, cat) = setup("M1");
    let plan = plan_for(&lw, &cat, QUERIES[0].1);
    let ctx = ExecContext::default().with_batch_size(1);
    let mut stream = execute_streaming(&plan, &cat, &ctx).unwrap();
    assert!(stream.next_batch().unwrap().is_some(), "first batch should arrive");
    ctx.cancel();
    let err = loop {
        match stream.next_batch() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("stream completed despite cancellation"),
            Err(e) => break e,
        }
    };
    assert_eq!(err, erbium_engine::EngineError::Cancelled);
}
