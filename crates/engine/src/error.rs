//! Engine error type.

use erbium_storage::StorageError;
use std::fmt;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// An expression was applied to incompatible values.
    Eval(String),
    /// A plan is structurally invalid (bad column index, schema mismatch).
    Plan(String),
    /// The query was cancelled through its [`crate::exec::ExecContext`]
    /// before the stream was exhausted.
    Cancelled,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<EngineError> for erbium_model::DbError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Storage(s) => s.into(),
            EngineError::Cancelled => erbium_model::DbError::Cancelled,
            other => erbium_model::DbError::Engine(other.to_string()),
        }
    }
}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;
