//! Per-query analysis for vectorized execution: compiles row-shaped
//! predicates into the closed set of vector-predicate forms that
//! [`crate::vector`]'s kernels execute over column slices.
//!
//! This module is the *only* place on the columnar path that decomposes
//! [`Expr`] and [`Value`] — the kernels in `vector.rs` operate purely on
//! typed slices, selection vectors, and the compiled forms below (a
//! check.sh gate enforces that `vector.rs` contains no per-row `Value`
//! enum match). Everything here replicates the row path's semantics
//! exactly: comparisons follow `Value`'s total order (i64 order for
//! Int/Int, `f64::total_cmp` for any Float operand, string order for
//! dictionary columns, constant rank order across types), and a NULL on
//! either side of a comparison yields NULL, which a predicate treats as
//! false.

use crate::expr::{BinOp, Expr};
use erbium_storage::{ColumnSlice, Table, Value};
use std::cmp::Ordering;

/// Which [`Ordering`] outcomes of a comparison a predicate accepts
/// (`Lt` = {Less}, `Ne` = {Less, Greater}, …).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CmpSet {
    lt: bool,
    eq: bool,
    gt: bool,
}

impl CmpSet {
    fn of(op: BinOp) -> Option<CmpSet> {
        Some(match op {
            BinOp::Eq => CmpSet { lt: false, eq: true, gt: false },
            BinOp::Ne => CmpSet { lt: true, eq: false, gt: true },
            BinOp::Lt => CmpSet { lt: true, eq: false, gt: false },
            BinOp::Le => CmpSet { lt: true, eq: true, gt: false },
            BinOp::Gt => CmpSet { lt: false, eq: false, gt: true },
            BinOp::Ge => CmpSet { lt: false, eq: true, gt: true },
            _ => return None,
        })
    }

    /// The acceptance set of the mirrored comparison (`lit OP col`
    /// rewritten as `col OP' lit`): Less and Greater swap.
    fn mirror(self) -> CmpSet {
        CmpSet { lt: self.gt, eq: self.eq, gt: self.lt }
    }

    #[inline]
    pub(crate) fn accepts(self, ord: Ordering) -> bool {
        match ord {
            Ordering::Less => self.lt,
            Ordering::Equal => self.eq,
            Ordering::Greater => self.gt,
        }
    }
}

/// A compiled vector predicate over one table column. All variants treat
/// NULL (invalid) slots as non-qualifying except `IsNull`.
#[derive(Debug, Clone)]
pub(crate) enum VecPred {
    /// Int column vs Int literal: i64 order.
    IntCmp { col: usize, set: CmpSet, lit: i64 },
    /// Int column vs Float literal: `(i as f64).total_cmp(lit)`, exactly
    /// `Value::cmp`'s cross-type numeric rule.
    IntAsFloatCmp { col: usize, set: CmpSet, lit: f64 },
    /// Float column vs numeric literal: `f64::total_cmp` (Int literals
    /// arrive widened to f64 here, mirroring `Value::cmp`).
    FloatCmp { col: usize, set: CmpSet, lit: f64 },
    /// Bool column vs Bool literal (false < true).
    BoolCmp { col: usize, set: CmpSet, lit: bool },
    /// Dictionary-encoded text column: `keep[code]` precomputed once per
    /// query by comparing every dictionary string against the literal, so
    /// the per-row kernel is a single table lookup.
    DictCmp { col: usize, keep: Vec<bool> },
    /// Cross-rank comparison (e.g. Int column vs Str literal): `Value`'s
    /// total order gives every non-NULL value of the column the same
    /// ordering against the literal, so the outcome is a constant
    /// (masked by validity).
    Const { col: usize, keep: bool },
    /// `col IS NULL`.
    IsNull { col: usize },
    /// `col IS NOT NULL`.
    IsNotNull { col: usize },
    /// Comparison against a NULL literal: yields NULL for every row, and
    /// NULL is not TRUE — selects nothing.
    Nothing,
}

/// Type rank of a non-null literal, mirroring `Value`'s cross-type
/// ordering (Bool=1, numerics=2, Str=3, Array=4, Struct=5).
fn lit_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Array(_) => 4,
        Value::Struct(_) => 5,
    }
}

/// Rank of the (type-pure, non-null) values held by a typed column.
fn slice_rank(s: &ColumnSlice<'_>) -> u8 {
    match s {
        ColumnSlice::Bool { .. } => 1,
        ColumnSlice::Int { .. } | ColumnSlice::Float { .. } => 2,
        ColumnSlice::Str { .. } => 3,
    }
}

/// Try to compile one predicate into a vector form over `t`'s columns.
///
/// `mapping` translates the predicate's column space into table columns
/// (identity for scan filters; the current projection for fused steps).
/// Returns `None` when the shape isn't vectorizable — the caller keeps it
/// as a row-evaluated residual, preserving evaluation order and error
/// behavior exactly.
pub(crate) fn compile_pred(e: &Expr, t: &Table, mapping: &[usize]) -> Option<VecPred> {
    match e {
        Expr::IsNull(inner) => {
            let col = mapped_col(inner, mapping)?;
            t.column_slice(col)?;
            Some(VecPred::IsNull { col })
        }
        Expr::IsNotNull(inner) => {
            let col = mapped_col(inner, mapping)?;
            t.column_slice(col)?;
            Some(VecPred::IsNotNull { col })
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let (col, lit, set) = match (&**left, &**right) {
                (Expr::Col(i), Expr::Lit(v)) => (*mapping.get(*i)?, v, CmpSet::of(*op)?),
                (Expr::Lit(v), Expr::Col(i)) => (*mapping.get(*i)?, v, CmpSet::of(*op)?.mirror()),
                _ => return None,
            };
            if lit.is_null() {
                return Some(VecPred::Nothing);
            }
            let slice = t.column_slice(col)?;
            Some(match (&slice, lit) {
                (ColumnSlice::Int { .. }, Value::Int(x)) => VecPred::IntCmp { col, set, lit: *x },
                (ColumnSlice::Int { .. }, Value::Float(x)) => {
                    VecPred::IntAsFloatCmp { col, set, lit: *x }
                }
                (ColumnSlice::Float { .. }, Value::Int(x)) => {
                    VecPred::FloatCmp { col, set, lit: *x as f64 }
                }
                (ColumnSlice::Float { .. }, Value::Float(x)) => {
                    VecPred::FloatCmp { col, set, lit: *x }
                }
                (ColumnSlice::Bool { .. }, Value::Bool(b)) => {
                    VecPred::BoolCmp { col, set, lit: *b }
                }
                (ColumnSlice::Str { dict, .. }, Value::Str(s)) => {
                    let keep = (0..dict.len() as u32)
                        .map(|c| set.accepts(dict.get(c).as_ref().cmp(s.as_ref())))
                        .collect();
                    VecPred::DictCmp { col, keep }
                }
                _ => {
                    let ord = slice_rank(&slice).cmp(&lit_rank(lit));
                    VecPred::Const { col, keep: set.accepts(ord) }
                }
            })
        }
        _ => None,
    }
}

/// Split conjunctive filters into the maximal vectorizable *prefix* plus
/// the row-evaluated residual suffix. Stopping at the first
/// non-vectorizable conjunct (rather than cherry-picking) preserves the
/// row path's left-to-right evaluation order, so error-raising predicates
/// fire for exactly the same rows.
pub(crate) fn split_filters<'a>(
    filters: &'a [Expr],
    t: &Table,
    mapping: &[usize],
) -> (Vec<VecPred>, &'a [Expr]) {
    let mut preds = Vec::new();
    let mut i = 0;
    while i < filters.len() {
        match compile_pred(&filters[i], t, mapping) {
            Some(p) => {
                preds.push(p);
                i += 1;
            }
            None => break,
        }
    }
    (preds, &filters[i..])
}

/// `Col(i)` behind an optional mapping, else `None`.
fn mapped_col(e: &Expr, mapping: &[usize]) -> Option<usize> {
    match e {
        Expr::Col(i) => mapping.get(*i).copied(),
        _ => None,
    }
}

/// If every projection expression is a bare column reference, compose it
/// with the current mapping (output column → table column); otherwise the
/// chain must materialize.
pub(crate) fn compose_projection(exprs: &[Expr], mapping: &[usize]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|e| match e {
            Expr::Col(i) => mapping.get(*i).copied(),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_storage::{Column, DataType, TableSchema};

    fn table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                Column::not_null("i", DataType::Int),
                Column::new("f", DataType::Float),
                Column::new("s", DataType::Text),
                Column::new("a", DataType::Int.array_of()),
            ],
            vec![0],
        ));
        for (i, s) in [(1i64, "x"), (2, "y"), (3, "z")] {
            t.insert(vec![
                Value::Int(i),
                Value::Float(i as f64),
                Value::str(s),
                Value::Array(vec![Value::Int(i)]),
            ])
            .unwrap();
        }
        t
    }

    fn ident(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn compiles_typed_comparisons_and_mirrors_literal_first() {
        let t = table();
        let m = ident(4);
        let p = compile_pred(&Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(2i64)), &t, &m);
        assert!(matches!(p, Some(VecPred::IntCmp { col: 0, lit: 2, .. })));
        // `5 > col` mirrors to `col < 5`.
        let p = compile_pred(&Expr::binary(BinOp::Gt, Expr::lit(5i64), Expr::col(0)), &t, &m);
        let Some(VecPred::IntCmp { set, lit: 5, .. }) = p else { panic!("mirrored int cmp") };
        assert!(set.accepts(Ordering::Less) && !set.accepts(Ordering::Greater));
        // Int column vs float literal takes the total_cmp form.
        let p = compile_pred(&Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(1.5f64)), &t, &m);
        assert!(matches!(p, Some(VecPred::IntAsFloatCmp { .. })));
    }

    #[test]
    fn null_literal_selects_nothing_and_array_columns_stay_residual() {
        let t = table();
        let m = ident(4);
        let p = compile_pred(&Expr::binary(BinOp::Eq, Expr::col(0), Expr::Lit(Value::Null)), &t, &m);
        assert!(matches!(p, Some(VecPred::Nothing)));
        assert!(compile_pred(
            &Expr::binary(BinOp::Eq, Expr::col(3), Expr::lit(1i64)),
            &t,
            &m
        )
        .is_none());
    }

    #[test]
    fn cross_rank_comparison_is_constant() {
        let t = table();
        let m = ident(4);
        // Int column < Str literal: every non-null int ranks below strings.
        let p = compile_pred(&Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit("q")), &t, &m);
        assert!(matches!(p, Some(VecPred::Const { keep: true, .. })));
        let p = compile_pred(&Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit("q")), &t, &m);
        assert!(matches!(p, Some(VecPred::Const { keep: false, .. })));
    }

    #[test]
    fn split_stops_at_first_residual_conjunct() {
        let t = table();
        let m = ident(4);
        let filters = vec![
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(3i64)),
            Expr::binary(BinOp::Eq, Expr::col(3), Expr::lit(1i64)), // array: residual
            Expr::binary(BinOp::Eq, Expr::col(0), Expr::lit(1i64)), // after residual: stays residual
        ];
        let (preds, residual) = split_filters(&filters, &t, &m);
        assert_eq!(preds.len(), 1);
        assert_eq!(residual.len(), 2);
    }

    #[test]
    fn projection_composition() {
        assert_eq!(
            compose_projection(&[Expr::col(1), Expr::col(0)], &[4, 2, 7]),
            Some(vec![2, 4])
        );
        assert_eq!(
            compose_projection(&[Expr::col(0), Expr::lit(1i64)], &[4, 2, 7]),
            None
        );
    }
}
