//! Materializing executor.
//!
//! Each operator consumes fully-materialized child output. For an in-memory
//! engine at paper-experiment scale this is simpler than and competitive
//! with an iterator model, and it keeps operator implementations easy to
//! verify against reference semantics in tests.

use crate::agg::Accumulator;
use crate::error::{EngineError, EngineResult};
use crate::expr::Expr;
use crate::optimizer;
use crate::plan::{FactorizedSide, JoinKind, Plan, PlanKind};
use erbium_storage::{Catalog, Row, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// Execute a plan against a catalog, returning the result rows.
pub fn execute(plan: &Plan, cat: &Catalog) -> EngineResult<Vec<Row>> {
    match &plan.kind {
        PlanKind::Scan { table, filters } => {
            let t = cat.table(table)?;
            let mut out = Vec::new();
            'rows: for (_, row) in t.scan() {
                for f in filters {
                    if !f.eval_predicate(row)? {
                        continue 'rows;
                    }
                }
                out.push(row.clone());
            }
            Ok(out)
        }
        PlanKind::IndexLookup { table, columns, keys, residual } => {
            let t = cat.table(table)?;
            let mut out = Vec::new();
            for key in keys {
                let matches = t.index_lookup(columns, key).ok_or_else(|| {
                    EngineError::Plan(format!("no index on {columns:?} of '{table}'"))
                })?;
                'rows: for (_, row) in matches {
                    for f in residual {
                        if !f.eval_predicate(row)? {
                            continue 'rows;
                        }
                    }
                    out.push(row.clone());
                }
            }
            Ok(out)
        }
        PlanKind::IndexRange { table, column, lo, hi, residual } => {
            let t = cat.table(table)?;
            let idx = t
                .indexes()
                .iter()
                .find(|i| i.columns == [*column])
                .ok_or_else(|| EngineError::Plan(format!("no index on #{column} of '{table}'")))?;
            use std::ops::Bound;
            let lo_b = match lo {
                None => Bound::Unbounded,
                Some((v, true)) => Bound::Included(v),
                Some((v, false)) => Bound::Excluded(v),
            };
            let hi_b = match hi {
                None => Bound::Unbounded,
                Some((v, true)) => Bound::Included(v),
                Some((v, false)) => Bound::Excluded(v),
            };
            let rids = idx.lookup_range(lo_b, hi_b).ok_or_else(|| {
                EngineError::Plan(format!("index on #{column} of '{table}' is not ordered"))
            })?;
            let mut out = Vec::new();
            'rows: for rid in rids {
                let Some(row) = t.get(rid) else { continue };
                for f in residual {
                    if !f.eval_predicate(row)? {
                        continue 'rows;
                    }
                }
                out.push(row.clone());
            }
            Ok(out)
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let ft = cat.factorized(table)?;
            let rows: Vec<Row> = match side {
                FactorizedSide::Left => ft.left().scan().map(|(_, r)| r.clone()).collect(),
                FactorizedSide::Right => ft.right().scan().map(|(_, r)| r.clone()).collect(),
                FactorizedSide::Join => ft.enumerate_join(),
            };
            if filters.is_empty() {
                return Ok(rows);
            }
            let mut out = Vec::with_capacity(rows.len());
            'rows: for row in rows {
                for f in filters {
                    if !f.eval_predicate(&row)? {
                        continue 'rows;
                    }
                }
                out.push(row);
            }
            Ok(out)
        }
        PlanKind::FactorizedCount { table } => {
            let ft = cat.factorized(table)?;
            Ok(vec![vec![Value::Int(ft.count_join() as i64)]])
        }
        PlanKind::Filter { input, predicate } => {
            let rows = execute(input, cat)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if predicate.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanKind::Project { input, exprs } => {
            let rows = execute(input, cat)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut new_row = Vec::with_capacity(exprs.len());
                for e in exprs {
                    new_row.push(e.eval(&row)?);
                }
                out.push(new_row);
            }
            Ok(out)
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => {
            exec_join(cat, left, right, *kind, left_keys, right_keys)
        }
        PlanKind::Aggregate { input, group, aggs } => {
            let rows = execute(input, cat)?;
            exec_aggregate(rows, group, aggs)
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            let rows = execute(input, cat)?;
            let mut out = Vec::new();
            for row in rows {
                match &row[*column] {
                    Value::Null => {
                        if *keep_empty {
                            out.push(row);
                        }
                    }
                    Value::Array(vs) => {
                        if vs.is_empty() {
                            if *keep_empty {
                                let mut new_row = row.clone();
                                new_row[*column] = Value::Null;
                                out.push(new_row);
                            }
                            continue;
                        }
                        for v in vs {
                            let mut new_row = row.clone();
                            new_row[*column] = v.clone();
                            out.push(new_row);
                        }
                    }
                    other => {
                        return Err(EngineError::Eval(format!(
                            "unnest over non-array value {other}"
                        )))
                    }
                }
            }
            Ok(out)
        }
        PlanKind::Sort { input, keys } => {
            let rows = execute(input, cat)?;
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for row in rows {
                let mut k = Vec::with_capacity(keys.len());
                for sk in keys {
                    k.push(sk.expr.eval(&row)?);
                }
                keyed.push((k, row));
            }
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, sk) in keys.iter().enumerate() {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if sk.desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        PlanKind::Limit { input, limit } => {
            let mut rows = execute(input, cat)?;
            rows.truncate(*limit);
            Ok(rows)
        }
        PlanKind::Distinct { input } => {
            let rows = execute(input, cat)?;
            let mut seen = FxHashSet::default();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PlanKind::Union { inputs } => {
            let mut out = Vec::new();
            for p in inputs {
                out.extend(execute(p, cat)?);
            }
            Ok(out)
        }
        PlanKind::Values { rows } => Ok(rows.clone()),
    }
}

/// Optimize the plan (see [`crate::optimizer`]) and execute it.
pub fn execute_optimized(plan: &Plan, cat: &Catalog) -> EngineResult<Vec<Row>> {
    let optimized = optimizer::optimize(plan.clone(), cat)?;
    execute(&optimized, cat)
}

fn exec_join(
    cat: &Catalog,
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    left_keys: &[Expr],
    right_keys: &[Expr],
) -> EngineResult<Vec<Row>> {
    if left_keys.len() != right_keys.len() {
        return Err(EngineError::Plan("join key arity mismatch".into()));
    }
    let left_rows = execute(left, cat)?;
    let right_rows = execute(right, cat)?;
    let right_arity = right.fields.len();

    // Build on the right side.
    let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    'build: for (i, row) in right_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(right_keys.len());
        for e in right_keys {
            let v = e.eval(row)?;
            if v.is_null() {
                continue 'build; // NULL keys never join
            }
            key.push(v);
        }
        table.entry(key).or_default().push(i);
    }

    let mut out = Vec::new();
    for lrow in &left_rows {
        let mut key = Vec::with_capacity(left_keys.len());
        let mut null_key = false;
        for e in left_keys {
            let v = e.eval(lrow)?;
            if v.is_null() {
                null_key = true;
                break;
            }
            key.push(v);
        }
        let matches = if null_key { None } else { table.get(&key) };
        match kind {
            JoinKind::Inner => {
                if let Some(idxs) = matches {
                    for &i in idxs {
                        let mut row = Vec::with_capacity(lrow.len() + right_arity);
                        row.extend_from_slice(lrow);
                        row.extend_from_slice(&right_rows[i]);
                        out.push(row);
                    }
                }
            }
            JoinKind::Left => match matches {
                Some(idxs) if !idxs.is_empty() => {
                    for &i in idxs {
                        let mut row = Vec::with_capacity(lrow.len() + right_arity);
                        row.extend_from_slice(lrow);
                        row.extend_from_slice(&right_rows[i]);
                        out.push(row);
                    }
                }
                _ => {
                    let mut row = Vec::with_capacity(lrow.len() + right_arity);
                    row.extend_from_slice(lrow);
                    row.extend(std::iter::repeat_n(Value::Null, right_arity));
                    out.push(row);
                }
            },
            JoinKind::Semi => {
                if matches.map(|m| !m.is_empty()).unwrap_or(false) {
                    out.push(lrow.clone());
                }
            }
        }
    }
    Ok(out)
}

fn exec_aggregate(
    rows: Vec<Row>,
    group: &[Expr],
    aggs: &[crate::agg::AggCall],
) -> EngineResult<Vec<Row>> {
    if group.is_empty() {
        // Global aggregate: always exactly one output row.
        let mut accs: Vec<Accumulator> = aggs.iter().map(|a| a.accumulator()).collect();
        for row in &rows {
            for (acc, call) in accs.iter_mut().zip(aggs) {
                acc.update(call.arg.eval(row)?)?;
            }
        }
        return Ok(vec![accs.into_iter().map(Accumulator::finish).collect()]);
    }
    // Group-by: preserve first-seen group order for determinism.
    let mut groups: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut states: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    for row in &rows {
        let mut key = Vec::with_capacity(group.len());
        for e in group {
            key.push(e.eval(row)?);
        }
        let slot = match groups.get(&key) {
            Some(&s) => s,
            None => {
                let s = states.len();
                groups.insert(key.clone(), s);
                states.push((key, aggs.iter().map(|a| a.accumulator()).collect()));
                s
            }
        };
        let (_, accs) = &mut states[slot];
        for (acc, call) in accs.iter_mut().zip(aggs) {
            acc.update(call.arg.eval(row)?)?;
        }
    }
    let mut out = Vec::with_capacity(states.len());
    for (key, accs) in states {
        let mut row = key;
        row.extend(accs.into_iter().map(Accumulator::finish));
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggCall, AggFunc};
    use crate::expr::ScalarFunc;
    use crate::plan::SortKey;
    use erbium_storage::{Column, DataType, Table, TableSchema};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        let mut dept = Table::new(TableSchema::new(
            "dept",
            vec![Column::not_null("id", DataType::Int), Column::new("name", DataType::Text)],
            vec![0],
        ));
        dept.insert(vec![Value::Int(1), Value::str("cs")]).unwrap();
        dept.insert(vec![Value::Int(2), Value::str("math")]).unwrap();
        dept.insert(vec![Value::Int(3), Value::str("bio")]).unwrap();
        c.create_table(dept).unwrap();

        let mut emp = Table::new(TableSchema::new(
            "emp",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("dept_id", DataType::Int),
                Column::new("salary", DataType::Int),
                Column::new("skills", DataType::Text.array_of()),
            ],
            vec![0],
        ));
        emp.insert(vec![Value::Int(10), Value::Int(1), Value::Int(100), vec!["a", "b"].into()])
            .unwrap();
        emp.insert(vec![Value::Int(11), Value::Int(1), Value::Int(200), vec!["b"].into()]).unwrap();
        emp.insert(vec![Value::Int(12), Value::Int(2), Value::Int(150), Value::Array(vec![])])
            .unwrap();
        emp.insert(vec![Value::Int(13), Value::Null, Value::Int(50), Value::Null]).unwrap();
        c.create_table(emp).unwrap();
        c
    }

    #[test]
    fn scan_and_filter() {
        let c = cat();
        let p = Plan::scan(&c, "emp")
            .unwrap()
            .filter(Expr::binary(crate::expr::BinOp::Gt, Expr::col(2), Expr::lit(120i64)));
        let rows = execute(&p, &c).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn inner_join_skips_null_keys() {
        let c = cat();
        let emp = Plan::scan(&c, "emp").unwrap();
        let dept = Plan::scan(&c, "dept").unwrap();
        let j = emp.join(dept, JoinKind::Inner, vec![Expr::col(1)], vec![Expr::col(0)]);
        let rows = execute(&j, &c).unwrap();
        assert_eq!(rows.len(), 3, "emp 13 has NULL dept_id and must not match");
    }

    #[test]
    fn left_join_null_extends() {
        let c = cat();
        let emp = Plan::scan(&c, "emp").unwrap();
        let dept = Plan::scan(&c, "dept").unwrap();
        let j = emp.join(dept, JoinKind::Left, vec![Expr::col(1)], vec![Expr::col(0)]);
        let rows = execute(&j, &c).unwrap();
        assert_eq!(rows.len(), 4);
        let unmatched = rows.iter().find(|r| r[0] == Value::Int(13)).unwrap();
        assert_eq!(unmatched[4], Value::Null);
        assert_eq!(unmatched[5], Value::Null);
    }

    #[test]
    fn semi_join_emits_left_once() {
        let c = cat();
        let dept = Plan::scan(&c, "dept").unwrap();
        let emp = Plan::scan(&c, "emp").unwrap();
        let j = dept.join(emp, JoinKind::Semi, vec![Expr::col(0)], vec![Expr::col(1)]);
        let rows = execute(&j, &c).unwrap();
        // cs has two employees but appears once; bio has none.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2, "semi join keeps left arity");
    }

    #[test]
    fn aggregate_group_by() {
        let c = cat();
        let emp = Plan::scan(&c, "emp").unwrap();
        let agg = emp.aggregate(
            vec![(Expr::col(1), "dept_id".into())],
            vec![
                (AggCall::new(AggFunc::Sum, Expr::col(2)), "total".into()),
                (AggCall::count_star(), "n".into()),
            ],
        );
        let mut rows = execute(&agg, &c).unwrap();
        rows.sort();
        assert_eq!(rows.len(), 3); // dept 1, 2, NULL
        let cs = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(cs[1], Value::Int(300));
        assert_eq!(cs[2], Value::Int(2));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let c = cat();
        let p = Plan::scan(&c, "emp")
            .unwrap()
            .filter(Expr::eq(Expr::col(0), Expr::lit(-1i64)))
            .aggregate(vec![], vec![(AggCall::count_star(), "n".into())]);
        let rows = execute(&p, &c).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn unnest_expands_and_drops_empty() {
        let c = cat();
        let p = Plan::scan(&c, "emp").unwrap().unnest(3).unwrap();
        let rows = execute(&p, &c).unwrap();
        // emp 10 -> 2 rows, emp 11 -> 1 row, emp 12 empty -> 0, emp 13 null -> 0.
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| matches!(r[3], Value::Str(_))));
    }

    #[test]
    fn nest_via_array_agg_struct_pack() {
        // SELECT dept_id, NEST(id, salary) — lowered to array_agg(struct_pack).
        let c = cat();
        let p = Plan::scan(&c, "emp").unwrap().aggregate(
            vec![(Expr::col(1), "dept_id".into())],
            vec![(
                AggCall::new(
                    AggFunc::ArrayAgg,
                    Expr::func(ScalarFunc::StructPack, vec![Expr::col(0), Expr::col(2)]),
                ),
                "emps".into(),
            )],
        );
        let rows = execute(&p, &c).unwrap();
        let cs = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        match &cs[1] {
            Value::Array(vs) => {
                assert_eq!(vs.len(), 2);
                assert!(vs.contains(&Value::Struct(vec![Value::Int(10), Value::Int(100)])));
            }
            other => panic!("expected array, got {other}"),
        }
    }

    #[test]
    fn sort_limit_distinct() {
        let c = cat();
        let p = Plan::scan(&c, "emp")
            .unwrap()
            .project_columns(&[1])
            .distinct()
            .sort(vec![SortKey { expr: Expr::col(0), desc: false }])
            .limit(2);
        let rows = execute(&p, &c).unwrap();
        // NULL sorts first, then 1.
        assert_eq!(rows, vec![vec![Value::Null], vec![Value::Int(1)]]);
    }

    #[test]
    fn union_all_concatenates() {
        let c = cat();
        let a = Plan::scan(&c, "dept").unwrap();
        let b = Plan::scan(&c, "dept").unwrap();
        let u = Plan::union(vec![a, b]).unwrap();
        assert_eq!(execute(&u, &c).unwrap().len(), 6);
    }

    #[test]
    fn index_lookup_uses_pk() {
        let c = cat();
        let p = Plan {
            kind: PlanKind::IndexLookup {
                table: "emp".into(),
                columns: vec![0],
                keys: vec![Value::Int(11), Value::Int(12)],
                residual: vec![],
            },
            fields: Plan::scan(&c, "emp").unwrap().fields,
        };
        let rows = execute(&p, &c).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn values_plan() {
        let c = Catalog::new();
        let p = Plan::values(
            vec![crate::plan::Field::new("x", DataType::Int)],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        assert_eq!(execute(&p, &c).unwrap().len(), 2);
    }
}
