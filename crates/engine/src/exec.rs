//! Streaming executor entry points.
//!
//! The executor is pull-based: a plan compiles (via [`crate::stream`]) into
//! a tree of [`RowStream`] operators that exchange small row batches on
//! demand. Pipeline operators (filter, project, join probe, unnest, limit,
//! union) never materialize their input; `Limit` terminates early by simply
//! not pulling. When [`ExecContext::threads`] `> 1`, work is dispatched in
//! morsel waves to the shared persistent [`crate::pool::WorkerPool`] (no
//! per-wave thread spawn): leaf scans *and the Filter/Project chain fused
//! directly above them*, hash-join build and probe sides, and partial
//! aggregation all run in parallel — with deterministic
//! (thread-count-independent, bit-identical) output. See `DESIGN.md` §9 for
//! the determinism argument.
//!
//! Entry points:
//!
//! * [`execute_streaming`] — compile to a [`QueryStream`] handle that the
//!   caller pulls batch-by-batch; exposes live per-operator
//!   [`ExecMetrics`] and cooperative cancellation.
//! * [`execute`] — compatibility wrapper: drain the stream to a `Vec<Row>`
//!   under a default context (what the materializing executor returned).
//! * [`execute_optimized`] — optimize (see [`crate::optimizer`]) then drain.
//! * [`execute_with_metrics`] — drain and return the metrics tree
//!   (`EXPLAIN ANALYZE`-style).

use crate::error::EngineResult;
use crate::metrics::{ExecMetrics, OpMetrics};
use crate::optimizer;
use crate::plan::Plan;
use crate::stream::{self, BoxedRowStream};
use erbium_storage::{Catalog, Row};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Runtime knobs threaded through every operator of a streaming query.
///
/// Cloning the context shares the cancellation flag: keep a clone, hand the
/// original to [`execute_streaming`], and call [`ExecContext::cancel`] from
/// anywhere to make every operator of the running query error with
/// [`crate::EngineError::Cancelled`] at its next pull.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Target rows per batch. Operators may emit smaller batches, and
    /// expanding operators (join, unnest) may exceed it.
    pub batch_size: usize,
    /// Slot-range granularity handed to scan workers.
    pub morsel_size: usize,
    /// Worker threads for morsel-parallel operators (leaf scans + fused
    /// Filter/Project, hash-join build and probe, partial aggregation).
    /// `1` runs fully inline — no pool dispatch at all. Defaults to
    /// [`default_threads`] (the machine's available parallelism, clamped).
    ///
    /// Changing this never changes query results: every parallel operator
    /// reassembles its output in morsel/chunk order and merges aggregate
    /// partials over fixed, config-independent chunk boundaries, so results
    /// are bit-identical to single-threaded execution (including float
    /// aggregates and `ARRAY_AGG` order).
    pub threads: usize,
    /// Fuse Filter/Project chains into the scan's morsel workers instead of
    /// running them as serial post-passes. On by default; disable to ablate.
    pub fusion: bool,
    /// Execute eligible leaf pipelines over the tables' typed column
    /// vectors (selection-vector kernels + late row materialization)
    /// instead of cloning row-shaped slots. On by default; disable to
    /// ablate. Results are bit-identical either way — the columnar
    /// kernels replicate `Value` comparison semantics exactly and
    /// non-vectorizable predicates fall back to row evaluation in the
    /// original order.
    pub columnar: bool,
    cancel: Arc<AtomicBool>,
}

/// Default worker count: the machine's available parallelism, clamped to
/// `1..=16`. Safe as a *default* because parallel execution is
/// deterministic (see [`ExecContext::threads`]); override per-query with
/// [`ExecContext::with_threads`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 16)
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            batch_size: 1024,
            morsel_size: 4096,
            threads: default_threads(),
            fusion: true,
            columnar: true,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl ExecContext {
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    pub fn with_batch_size(mut self, n: usize) -> ExecContext {
        self.batch_size = n.max(1);
        self
    }

    pub fn with_morsel_size(mut self, n: usize) -> ExecContext {
        self.morsel_size = n.max(1);
        self
    }

    pub fn with_threads(mut self, n: usize) -> ExecContext {
        self.threads = n.max(1);
        self
    }

    /// Enable or disable pipeline fusion (on by default).
    pub fn with_fusion(mut self, on: bool) -> ExecContext {
        self.fusion = on;
        self
    }

    /// Enable or disable columnar (vectorized) execution (on by default).
    pub fn with_columnar(mut self, on: bool) -> ExecContext {
        self.columnar = on;
        self
    }

    /// Request cooperative cancellation of every query sharing this context.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    pub(crate) fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }
}

/// A running query: pull batches, snapshot metrics at any point.
pub struct QueryStream<'a> {
    root: BoxedRowStream<'a>,
    metrics: Arc<OpMetrics>,
}

impl QueryStream<'_> {
    /// Pull the next (non-empty) batch, or `None` when exhausted.
    pub fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        self.root.next_batch()
    }

    /// Pull everything that remains into one vector.
    pub fn drain(&mut self) -> EngineResult<Vec<Row>> {
        let mut out = Vec::new();
        while let Some(batch) = self.next_batch()? {
            out.extend(batch);
        }
        Ok(out)
    }

    /// Snapshot the per-operator metrics tree (valid mid-stream too).
    pub fn metrics(&self) -> ExecMetrics {
        self.metrics.snapshot()
    }
}

/// Compile a plan into a pull-based [`QueryStream`] over the catalog.
pub fn execute_streaming<'a>(
    plan: &'a Plan,
    cat: &'a Catalog,
    ctx: &ExecContext,
) -> EngineResult<QueryStream<'a>> {
    let (root, metrics) = stream::compile(plan, cat, ctx)?;
    Ok(QueryStream { root, metrics })
}

/// Execute a plan against a catalog, returning the result rows.
///
/// Compatibility wrapper over [`execute_streaming`]: drains the stream
/// under a default [`ExecContext`].
pub fn execute(plan: &Plan, cat: &Catalog) -> EngineResult<Vec<Row>> {
    execute_streaming(plan, cat, &ExecContext::default())?.drain()
}

/// Optimize the plan (see [`crate::optimizer`]) and execute it.
pub fn execute_optimized(plan: &Plan, cat: &Catalog) -> EngineResult<Vec<Row>> {
    let optimized = optimizer::optimize(plan.clone(), cat)?;
    let mut qs = execute_streaming(&optimized, cat, &ExecContext::default())?;
    qs.drain()
}

/// Execute and return both the rows and the plan-shaped metrics tree.
pub fn execute_with_metrics(
    plan: &Plan,
    cat: &Catalog,
    ctx: &ExecContext,
) -> EngineResult<(Vec<Row>, ExecMetrics)> {
    let mut qs = execute_streaming(plan, cat, ctx)?;
    let rows = qs.drain()?;
    Ok((rows, qs.metrics()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggCall, AggFunc};
    use crate::error::EngineError;
    use crate::expr::{Expr, ScalarFunc};
    use crate::plan::{JoinKind, PlanKind, SortKey};
    use erbium_storage::{Column, DataType, Table, TableSchema, Value};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        let mut dept = Table::new(TableSchema::new(
            "dept",
            vec![Column::not_null("id", DataType::Int), Column::new("name", DataType::Text)],
            vec![0],
        ));
        dept.insert(vec![Value::Int(1), Value::str("cs")]).unwrap();
        dept.insert(vec![Value::Int(2), Value::str("math")]).unwrap();
        dept.insert(vec![Value::Int(3), Value::str("bio")]).unwrap();
        c.create_table(dept).unwrap();

        let mut emp = Table::new(TableSchema::new(
            "emp",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("dept_id", DataType::Int),
                Column::new("salary", DataType::Int),
                Column::new("skills", DataType::Text.array_of()),
            ],
            vec![0],
        ));
        emp.insert(vec![Value::Int(10), Value::Int(1), Value::Int(100), vec!["a", "b"].into()])
            .unwrap();
        emp.insert(vec![Value::Int(11), Value::Int(1), Value::Int(200), vec!["b"].into()]).unwrap();
        emp.insert(vec![Value::Int(12), Value::Int(2), Value::Int(150), Value::Array(vec![])])
            .unwrap();
        emp.insert(vec![Value::Int(13), Value::Null, Value::Int(50), Value::Null]).unwrap();
        c.create_table(emp).unwrap();
        c
    }

    #[test]
    fn scan_and_filter() {
        let c = cat();
        let p = Plan::scan(&c, "emp")
            .unwrap()
            .filter(Expr::binary(crate::expr::BinOp::Gt, Expr::col(2), Expr::lit(120i64)));
        let rows = execute(&p, &c).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn inner_join_skips_null_keys() {
        let c = cat();
        let emp = Plan::scan(&c, "emp").unwrap();
        let dept = Plan::scan(&c, "dept").unwrap();
        let j = emp.join(dept, JoinKind::Inner, vec![Expr::col(1)], vec![Expr::col(0)]);
        let rows = execute(&j, &c).unwrap();
        assert_eq!(rows.len(), 3, "emp 13 has NULL dept_id and must not match");
    }

    #[test]
    fn left_join_null_extends() {
        let c = cat();
        let emp = Plan::scan(&c, "emp").unwrap();
        let dept = Plan::scan(&c, "dept").unwrap();
        let j = emp.join(dept, JoinKind::Left, vec![Expr::col(1)], vec![Expr::col(0)]);
        let rows = execute(&j, &c).unwrap();
        assert_eq!(rows.len(), 4);
        let unmatched = rows.iter().find(|r| r[0] == Value::Int(13)).unwrap();
        assert_eq!(unmatched[4], Value::Null);
        assert_eq!(unmatched[5], Value::Null);
    }

    #[test]
    fn semi_join_emits_left_once() {
        let c = cat();
        let dept = Plan::scan(&c, "dept").unwrap();
        let emp = Plan::scan(&c, "emp").unwrap();
        let j = dept.join(emp, JoinKind::Semi, vec![Expr::col(0)], vec![Expr::col(1)]);
        let rows = execute(&j, &c).unwrap();
        // cs has two employees but appears once; bio has none.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2, "semi join keeps left arity");
    }

    #[test]
    fn aggregate_group_by() {
        let c = cat();
        let emp = Plan::scan(&c, "emp").unwrap();
        let agg = emp.aggregate(
            vec![(Expr::col(1), "dept_id".into())],
            vec![
                (AggCall::new(AggFunc::Sum, Expr::col(2)), "total".into()),
                (AggCall::count_star(), "n".into()),
            ],
        );
        let mut rows = execute(&agg, &c).unwrap();
        rows.sort();
        assert_eq!(rows.len(), 3); // dept 1, 2, NULL
        let cs = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(cs[1], Value::Int(300));
        assert_eq!(cs[2], Value::Int(2));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let c = cat();
        let p = Plan::scan(&c, "emp")
            .unwrap()
            .filter(Expr::eq(Expr::col(0), Expr::lit(-1i64)))
            .aggregate(vec![], vec![(AggCall::count_star(), "n".into())]);
        let rows = execute(&p, &c).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn unnest_expands_and_drops_empty() {
        let c = cat();
        let p = Plan::scan(&c, "emp").unwrap().unnest(3).unwrap();
        let rows = execute(&p, &c).unwrap();
        // emp 10 -> 2 rows, emp 11 -> 1 row, emp 12 empty -> 0, emp 13 null -> 0.
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| matches!(r[3], Value::Str(_))));
    }

    #[test]
    fn nest_via_array_agg_struct_pack() {
        // SELECT dept_id, NEST(id, salary) — lowered to array_agg(struct_pack).
        let c = cat();
        let p = Plan::scan(&c, "emp").unwrap().aggregate(
            vec![(Expr::col(1), "dept_id".into())],
            vec![(
                AggCall::new(
                    AggFunc::ArrayAgg,
                    Expr::func(ScalarFunc::StructPack, vec![Expr::col(0), Expr::col(2)]),
                ),
                "emps".into(),
            )],
        );
        let rows = execute(&p, &c).unwrap();
        let cs = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        match &cs[1] {
            Value::Array(vs) => {
                assert_eq!(vs.len(), 2);
                assert!(vs.contains(&Value::Struct(vec![Value::Int(10), Value::Int(100)])));
            }
            other => panic!("expected array, got {other}"),
        }
    }

    #[test]
    fn sort_limit_distinct() {
        let c = cat();
        let p = Plan::scan(&c, "emp")
            .unwrap()
            .project_columns(&[1])
            .distinct()
            .sort(vec![SortKey { expr: Expr::col(0), desc: false }])
            .limit(2);
        let rows = execute(&p, &c).unwrap();
        // NULL sorts first, then 1.
        assert_eq!(rows, vec![vec![Value::Null], vec![Value::Int(1)]]);
    }

    #[test]
    fn union_all_concatenates() {
        let c = cat();
        let a = Plan::scan(&c, "dept").unwrap();
        let b = Plan::scan(&c, "dept").unwrap();
        let u = Plan::union(vec![a, b]).unwrap();
        assert_eq!(execute(&u, &c).unwrap().len(), 6);
    }

    #[test]
    fn index_lookup_uses_pk() {
        let c = cat();
        let p = Plan {
            kind: PlanKind::IndexLookup {
                table: "emp".into(),
                columns: vec![0],
                keys: vec![Value::Int(11), Value::Int(12)],
                residual: vec![],
            },
            fields: Plan::scan(&c, "emp").unwrap().fields,
        };
        let rows = execute(&p, &c).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn values_plan() {
        let c = Catalog::new();
        let p = Plan::values(
            vec![crate::plan::Field::new("x", DataType::Int)],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        assert_eq!(execute(&p, &c).unwrap().len(), 2);
    }

    // ---- streaming-specific behaviour --------------------------------------

    #[test]
    fn batches_respect_batch_size_and_cover_scan() {
        let c = cat();
        let p = Plan::scan(&c, "emp").unwrap();
        let ctx = ExecContext::new().with_batch_size(2).with_morsel_size(2);
        let mut qs = execute_streaming(&p, &c, &ctx).unwrap();
        let mut sizes = Vec::new();
        let mut total = 0;
        while let Some(b) = qs.next_batch().unwrap() {
            assert!(!b.is_empty(), "streams never emit empty batches");
            sizes.push(b.len());
            total += b.len();
        }
        assert_eq!(total, 4);
        assert!(sizes.iter().all(|&s| s <= 2), "{sizes:?}");
    }

    #[test]
    fn metrics_tree_mirrors_plan_shape() {
        let c = cat();
        let p = Plan::scan(&c, "emp")
            .unwrap()
            .filter(Expr::binary(crate::expr::BinOp::Gt, Expr::col(2), Expr::lit(120i64)))
            .project_columns(&[0]);
        let (rows, m) = execute_with_metrics(&p, &c, &ExecContext::default()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(m.name, "Project");
        assert_eq!(m.rows_out, 2);
        let filter = &m.children[0];
        assert_eq!(filter.name, "Filter");
        assert_eq!(filter.rows_out, 2);
        let scan = &filter.children[0];
        assert!(scan.name.starts_with("Scan emp"), "{}", scan.name);
        assert_eq!(scan.rows_in, 4, "scan examined every live row");
        assert_eq!(scan.rows_out, 4, "filter is a separate node here");
        assert_eq!(m.rows_in, 2, "project consumed what filter emitted");
    }

    #[test]
    fn limit_terminates_scan_early() {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "big",
            vec![Column::not_null("id", DataType::Int)],
            vec![0],
        ));
        for i in 0..1000i64 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(t).unwrap();
        let p = Plan::scan(&c, "big").unwrap().limit(3);
        // Threads pinned: one wave examines at most threads x morsel rows,
        // so the examined-row bound below depends on the thread count.
        let ctx = ExecContext::new().with_batch_size(8).with_morsel_size(8).with_threads(2);
        let (rows, m) = execute_with_metrics(&p, &c, &ctx).unwrap();
        assert_eq!(rows.len(), 3);
        let scan = m.find("Scan big").unwrap();
        assert!(
            scan.rows_out <= 3 + 2 * 8,
            "limit must stop pulling: scan emitted {} rows",
            scan.rows_out
        );
        assert!(scan.rows_in <= 16, "scan examined {} rows", scan.rows_in);
    }

    #[test]
    fn cancellation_surfaces_as_error() {
        let c = cat();
        let p = Plan::scan(&c, "emp").unwrap();
        let ctx = ExecContext::new();
        let mut qs = execute_streaming(&p, &c, &ctx).unwrap();
        ctx.cancel();
        assert_eq!(qs.next_batch(), Err(EngineError::Cancelled));
    }

    /// A panic inside a morsel worker must surface the panic payload, not a
    /// generic "morsel worker panicked" with no diagnosis. `i64::MIN.abs()`
    /// panics with "attempt to negate with overflow" in debug builds only,
    /// so the test is debug-gated; the profile-independent panic plumbing is
    /// covered by `pool::tests::panics_propagate_payload_message`.
    #[cfg(debug_assertions)]
    #[test]
    fn morsel_worker_panic_carries_payload_message() {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "edge",
            vec![Column::not_null("x", DataType::Int)],
            vec![0],
        ));
        for i in 0..8i64 {
            t.insert(vec![Value::Int(if i == 6 { i64::MIN } else { i })]).unwrap();
        }
        c.create_table(t).unwrap();
        // abs(x) >= 0 is fused into the scan's morsel workers; the i64::MIN
        // row makes one worker panic mid-wave.
        let p = Plan::scan(&c, "edge").unwrap().filter(Expr::binary(
            crate::expr::BinOp::Ge,
            Expr::func(ScalarFunc::Abs, vec![Expr::col(0)]),
            Expr::lit(0i64),
        ));
        let ctx = ExecContext::new().with_threads(4).with_morsel_size(2);
        let err = execute_streaming(&p, &c, &ctx).unwrap().drain().unwrap_err();
        let EngineError::Eval(msg) = err else { panic!("expected Eval error, got {err:?}") };
        assert!(msg.contains("panicked"), "not a panic report: {msg}");
        assert!(
            msg.contains("overflow"),
            "panic payload must be preserved for diagnosis, got: {msg}"
        );
    }

    #[test]
    fn fused_chain_reports_parallelism_in_metrics() {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "nums",
            vec![Column::not_null("x", DataType::Int)],
            vec![0],
        ));
        for i in 0..64i64 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(t).unwrap();
        let p = Plan::scan(&c, "nums")
            .unwrap()
            .filter(Expr::binary(crate::expr::BinOp::Lt, Expr::col(0), Expr::lit(32i64)))
            .project(vec![
                (Expr::binary(crate::expr::BinOp::Add, Expr::col(0), Expr::lit(1i64)), "y".into()),
            ]);
        let ctx = ExecContext::new().with_threads(4).with_morsel_size(8);
        let (rows, m) = execute_with_metrics(&p, &c, &ctx).unwrap();
        assert_eq!(rows.len(), 32);
        assert_eq!(rows[0], vec![Value::Int(1)]);
        // Plan shape is preserved: Project -> Filter -> Scan, but the whole
        // chain executed inside the scan's morsel workers.
        assert_eq!(m.name, "Project");
        assert!(m.fused, "top of a fused chain is marked fused\n{}", m.render());
        let filter = &m.children[0];
        assert!(filter.fused, "inner fused node marked\n{}", m.render());
        assert_eq!(filter.rows_out, 32);
        let scan = &filter.children[0];
        assert_eq!(scan.rows_in, 64);
        assert!(scan.waves > 0, "scan should have run pool waves\n{}", m.render());
        // At least the submitting thread participates in every wave; on a
        // multi-core machine pool workers join it (peak is recorded).
        assert!(scan.workers >= 1, "expected participant count\n{}", m.render());
        // With fusion disabled the same plan yields identical rows.
        let plain =
            execute_streaming(&p, &c, &ctx.clone().with_fusion(false)).unwrap().drain().unwrap();
        assert_eq!(plain, rows);
    }

    #[test]
    fn parallel_scan_and_join_match_single_threaded() {
        let mut c = Catalog::new();
        let mut l = Table::new(TableSchema::new(
            "l",
            vec![Column::not_null("id", DataType::Int), Column::new("k", DataType::Int)],
            vec![0],
        ));
        let mut r = Table::new(TableSchema::new(
            "r",
            vec![Column::not_null("id", DataType::Int), Column::new("k", DataType::Int)],
            vec![0],
        ));
        for i in 0..500i64 {
            l.insert(vec![Value::Int(i), Value::Int(i % 17)]).unwrap();
            r.insert(vec![Value::Int(i), Value::Int(i % 13)]).unwrap();
        }
        c.create_table(l).unwrap();
        c.create_table(r).unwrap();
        let plan = Plan::scan(&c, "l")
            .unwrap()
            .filter(Expr::binary(crate::expr::BinOp::Lt, Expr::col(1), Expr::lit(9i64)))
            .join(
                Plan::scan(&c, "r").unwrap(),
                JoinKind::Inner,
                vec![Expr::col(1)],
                vec![Expr::col(1)],
            );
        let seq = execute_streaming(&plan, &c, &ExecContext::new().with_threads(1))
            .unwrap()
            .drain()
            .unwrap();
        let par = execute_streaming(
            &plan,
            &c,
            &ExecContext::new().with_threads(4).with_morsel_size(64),
        )
        .unwrap()
        .drain()
        .unwrap();
        assert_eq!(seq, par, "morsel order keeps parallel output deterministic");
    }
}
