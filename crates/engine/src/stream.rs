//! Streaming (pull-based) operator implementations.
//!
//! Every [`crate::plan::PlanKind`] compiles to a [`RowStream`]: a cursor
//! that yields small batches of rows on demand. Operators pull from their
//! children, so pipeline-friendly nodes (filter, project, join probe,
//! unnest, limit, union) never materialize their input, and `Limit` stops
//! pulling as soon as it is satisfied. Pipeline breakers (sort, aggregate,
//! distinct's seen-set, the join build side) buffer exactly the state their
//! semantics require and nothing more.
//!
//! Leaf scans are **morsel-driven**: the slot space of a table is split
//! into contiguous ranges, and with [`crate::exec::ExecContext::threads`]
//! `> 1` each pull processes one *wave* of morsels on scoped worker threads
//! (`std::thread::scope`; borrowed tables cross into workers without any
//! `'static` bound). Morsel outputs are re-assembled in morsel order, so
//! parallel execution is deterministic and bit-identical to
//! single-threaded execution. The hash-join build side is parallelized the
//! same way: per-worker partial tables over contiguous chunks are merged in
//! chunk order, preserving within-key probe order.
//!
//! Every compiled operator is wrapped in a metering shim that feeds the
//! [`crate::metrics::ExecMetrics`] tree and honours cooperative
//! cancellation.

use crate::agg::{Accumulator, AggCall};
use crate::error::{EngineError, EngineResult};
use crate::exec::ExecContext;
use crate::expr::Expr;
use crate::metrics::OpMetrics;
use crate::plan::{FactorizedSide, JoinKind, Plan, PlanKind, SortKey};
use erbium_storage::{Catalog, Row, RowId, Table, Value};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A pull-based cursor over row batches.
///
/// `Ok(Some(batch))` carries a non-empty batch; `Ok(None)` means the stream
/// is exhausted (and stays exhausted). Batch sizes are *approximately*
/// [`crate::exec::ExecContext::batch_size`]: operators may emit smaller
/// batches, and expanding operators (join, unnest) may emit larger ones.
pub trait RowStream {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>>;
}

/// An owned, borrowing stream (operators borrow the plan and catalog).
pub type BoxedRowStream<'a> = Box<dyn RowStream + 'a>;

// ---- compilation -----------------------------------------------------------

/// Compile a plan node into a metered operator stream plus its metrics node.
pub(crate) fn compile<'a>(
    plan: &'a Plan,
    cat: &'a Catalog,
    ctx: &ExecContext,
) -> EngineResult<(BoxedRowStream<'a>, Arc<OpMetrics>)> {
    let (inner, metrics): (BoxedRowStream<'a>, Arc<OpMetrics>) = match &plan.kind {
        PlanKind::Scan { table, filters } => {
            let t = cat.table(table)?;
            let m = OpMetrics::new(format!("Scan {table}"), vec![]);
            (table_scan_stream(t, filters, Arc::clone(&m), ctx), m)
        }
        PlanKind::IndexLookup { table, columns, keys, residual } => {
            let t = cat.table(table)?;
            let m = OpMetrics::new(format!("IndexLookup {table}"), vec![]);
            (
                Box::new(IndexLookupStream {
                    t,
                    table_name: table,
                    columns,
                    keys,
                    residual,
                    next_key: 0,
                    batch: ctx.batch_size,
                    metrics: Arc::clone(&m),
                }),
                m,
            )
        }
        PlanKind::IndexRange { table, column, lo, hi, residual } => {
            let t = cat.table(table)?;
            let idx = t
                .indexes()
                .iter()
                .find(|i| i.columns == [*column])
                .ok_or_else(|| EngineError::Plan(format!("no index on #{column} of '{table}'")))?;
            use std::ops::Bound;
            let lo_b = match lo {
                None => Bound::Unbounded,
                Some((v, true)) => Bound::Included(v),
                Some((v, false)) => Bound::Excluded(v),
            };
            let hi_b = match hi {
                None => Bound::Unbounded,
                Some((v, true)) => Bound::Included(v),
                Some((v, false)) => Bound::Excluded(v),
            };
            let rids = idx.lookup_range(lo_b, hi_b).ok_or_else(|| {
                EngineError::Plan(format!("index on #{column} of '{table}' is not ordered"))
            })?;
            let m = OpMetrics::new(format!("IndexRange {table}"), vec![]);
            (
                Box::new(IndexRangeStream {
                    t,
                    rids,
                    pos: 0,
                    residual,
                    batch: ctx.batch_size,
                    metrics: Arc::clone(&m),
                }),
                m,
            )
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let ft = cat.factorized(table)?;
            let m = OpMetrics::new(format!("FactorizedScan {table} {side:?}"), vec![]);
            let stream: BoxedRowStream<'a> = match side {
                FactorizedSide::Left => table_scan_stream(ft.left(), filters, Arc::clone(&m), ctx),
                FactorizedSide::Right => table_scan_stream(ft.right(), filters, Arc::clone(&m), ctx),
                FactorizedSide::Join => {
                    let lm = Arc::clone(&m);
                    let total = ft.left().slot_count();
                    let work = move |range: Range<usize>| -> EngineResult<Vec<Row>> {
                        let mut out = Vec::new();
                        let mut examined = 0u64;
                        'pairs: for row in ft.iter_join_slots(range) {
                            examined += 1;
                            for f in filters {
                                if !f.eval_predicate(&row)? {
                                    continue 'pairs;
                                }
                            }
                            out.push(row);
                        }
                        lm.add_rows_in(examined);
                        Ok(out)
                    };
                    Box::new(MorselStream::new(Box::new(work), total, ctx))
                }
            };
            (stream, m)
        }
        PlanKind::FactorizedCount { table } => {
            let ft = cat.factorized(table)?;
            let m = OpMetrics::new(format!("FactorizedCount {table}"), vec![]);
            m.add_rows_in(1);
            (
                Box::new(OnceStream { rows: Some(vec![vec![Value::Int(ft.count_join() as i64)]]) }),
                m,
            )
        }
        PlanKind::Filter { input, predicate } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Filter", vec![cm]);
            (Box::new(FilterStream { input: child, predicate }), m)
        }
        PlanKind::Project { input, exprs } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Project", vec![cm]);
            (Box::new(ProjectStream { input: child, exprs }), m)
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => {
            if left_keys.len() != right_keys.len() {
                return Err(EngineError::Plan("join key arity mismatch".into()));
            }
            let (l, lm) = compile(left, cat, ctx)?;
            let (r, rm) = compile(right, cat, ctx)?;
            let m = OpMetrics::new(format!("Join {kind:?}"), vec![lm, rm]);
            (
                Box::new(JoinStream {
                    left: l,
                    right: Some(r),
                    kind: *kind,
                    left_keys,
                    right_keys,
                    right_arity: right.fields.len(),
                    threads: ctx.threads,
                    build: None,
                }),
                m,
            )
        }
        PlanKind::Aggregate { input, group, aggs } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Aggregate", vec![cm]);
            (
                Box::new(AggregateStream {
                    input: child,
                    group,
                    aggs,
                    batch: ctx.batch_size,
                    out: None,
                }),
                m,
            )
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new(format!("Unnest #{column}"), vec![cm]);
            (
                Box::new(UnnestStream { input: child, column: *column, keep_empty: *keep_empty }),
                m,
            )
        }
        PlanKind::Sort { input, keys } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Sort", vec![cm]);
            (Box::new(SortStream { input: child, keys, batch: ctx.batch_size, out: None }), m)
        }
        PlanKind::Limit { input, limit } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new(format!("Limit {limit}"), vec![cm]);
            (Box::new(LimitStream { input: child, remaining: *limit }), m)
        }
        PlanKind::Distinct { input } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Distinct", vec![cm]);
            (Box::new(DistinctStream { input: child, seen: FxHashSet::default() }), m)
        }
        PlanKind::Union { inputs } => {
            let mut children = Vec::with_capacity(inputs.len());
            let mut cms = Vec::with_capacity(inputs.len());
            for p in inputs {
                let (c, cm) = compile(p, cat, ctx)?;
                children.push(c);
                cms.push(cm);
            }
            let m = OpMetrics::new("UnionAll", cms);
            (Box::new(UnionStream { children, idx: 0 }), m)
        }
        PlanKind::Values { rows } => {
            let m = OpMetrics::new("Values", vec![]);
            m.add_rows_in(rows.len() as u64);
            (Box::new(ValuesStream { rows, cursor: 0, batch: ctx.batch_size }), m)
        }
    };
    Ok((
        Box::new(MeterStream {
            inner,
            metrics: Arc::clone(&metrics),
            cancel: ctx.cancel_flag(),
        }),
        metrics,
    ))
}

// ---- metering shim ---------------------------------------------------------

struct MeterStream<'a> {
    inner: BoxedRowStream<'a>,
    metrics: Arc<OpMetrics>,
    cancel: Arc<AtomicBool>,
}

impl RowStream for MeterStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(EngineError::Cancelled);
        }
        let start = Instant::now();
        let out = self.inner.next_batch();
        self.metrics.add_elapsed_ns(start.elapsed().as_nanos() as u64);
        if let Ok(Some(batch)) = &out {
            self.metrics.record_batch(batch.len() as u64);
        }
        out
    }
}

// ---- morsel-driven leaf scans ----------------------------------------------

type MorselWork<'a> = Box<dyn Fn(Range<usize>) -> EngineResult<Vec<Row>> + Sync + 'a>;

/// Leaf stream over a slot space `0..total`, processed in contiguous
/// morsels. With `threads > 1` each pull runs one wave of up to `threads`
/// morsels on scoped worker threads; outputs are buffered in morsel order,
/// so results are deterministic regardless of thread count. The stream is
/// lazy between waves: a `Limit` upstream that stops pulling stops the scan.
struct MorselStream<'a> {
    work: MorselWork<'a>,
    total: usize,
    next: usize,
    threads: usize,
    morsel: usize,
    batch: usize,
    cancel: Arc<AtomicBool>,
    buffer: VecDeque<Vec<Row>>,
}

impl<'a> MorselStream<'a> {
    fn new(work: MorselWork<'a>, total: usize, ctx: &ExecContext) -> MorselStream<'a> {
        MorselStream {
            work,
            total,
            next: 0,
            threads: ctx.threads.max(1),
            morsel: ctx.morsel_size.max(1),
            batch: ctx.batch_size.max(1),
            cancel: ctx.cancel_flag(),
            buffer: VecDeque::new(),
        }
    }
}

impl RowStream for MorselStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            if let Some(b) = self.buffer.pop_front() {
                debug_assert!(!b.is_empty());
                return Ok(Some(b));
            }
            if self.next >= self.total {
                return Ok(None);
            }
            if self.cancel.load(Ordering::Relaxed) {
                return Err(EngineError::Cancelled);
            }
            // One wave: up to `threads` contiguous morsels.
            let mut ranges: Vec<Range<usize>> = Vec::new();
            while ranges.len() < self.threads && self.next < self.total {
                let end = (self.next + self.morsel).min(self.total);
                ranges.push(self.next..end);
                self.next = end;
            }
            let outputs: Vec<Vec<Row>> = if self.threads <= 1 || ranges.len() <= 1 {
                let mut outs = Vec::with_capacity(ranges.len());
                for r in ranges {
                    outs.push((self.work)(r)?);
                }
                outs
            } else {
                run_wave(&self.work, ranges)?
            };
            for rows in outputs {
                push_chunked(&mut self.buffer, rows, self.batch);
            }
        }
    }
}

/// Run one wave of morsels on scoped threads; results come back in morsel
/// (= submission) order.
fn run_wave(work: &MorselWork<'_>, ranges: Vec<Range<usize>>) -> EngineResult<Vec<Vec<Row>>> {
    let results: Vec<EngineResult<Vec<Row>>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(move || (work)(r))).collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(EngineError::Eval("morsel worker panicked".into())))
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Split `rows` into batches of at most `batch` rows (dropping nothing,
/// never queueing an empty batch).
fn push_chunked(buf: &mut VecDeque<Vec<Row>>, mut rows: Vec<Row>, batch: usize) {
    while rows.len() > batch {
        let rest = rows.split_off(batch);
        buf.push_back(std::mem::replace(&mut rows, rest));
    }
    if !rows.is_empty() {
        buf.push_back(rows);
    }
}

/// Morsel scan over one table: examine rows in the slot range, apply the
/// pushed-down filters against borrowed rows, clone only survivors.
fn table_scan_stream<'a>(
    t: &'a Table,
    filters: &'a [Expr],
    metrics: Arc<OpMetrics>,
    ctx: &ExecContext,
) -> BoxedRowStream<'a> {
    let total = t.slot_count();
    let work = move |range: Range<usize>| -> EngineResult<Vec<Row>> {
        let mut out = Vec::new();
        let mut examined = 0u64;
        'rows: for (_, row) in t.scan_slots(range) {
            examined += 1;
            for f in filters {
                if !f.eval_predicate(row)? {
                    continue 'rows;
                }
            }
            out.push(row.clone());
        }
        metrics.add_rows_in(examined);
        Ok(out)
    };
    Box::new(MorselStream::new(Box::new(work), total, ctx))
}

// ---- index leaves ----------------------------------------------------------

struct IndexLookupStream<'a> {
    t: &'a Table,
    table_name: &'a str,
    columns: &'a [usize],
    keys: &'a [Value],
    residual: &'a [Expr],
    next_key: usize,
    batch: usize,
    metrics: Arc<OpMetrics>,
}

impl RowStream for IndexLookupStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        let mut out = Vec::new();
        while self.next_key < self.keys.len() && out.len() < self.batch {
            let key = &self.keys[self.next_key];
            self.next_key += 1;
            let matches = self.t.index_lookup(self.columns, key).ok_or_else(|| {
                EngineError::Plan(format!(
                    "no index on {:?} of '{}'",
                    self.columns, self.table_name
                ))
            })?;
            self.metrics.add_rows_in(matches.len() as u64);
            'rows: for (_, row) in matches {
                for f in self.residual {
                    if !f.eval_predicate(row)? {
                        continue 'rows;
                    }
                }
                out.push(row.clone());
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }
}

struct IndexRangeStream<'a> {
    t: &'a Table,
    rids: Vec<RowId>,
    pos: usize,
    residual: &'a [Expr],
    batch: usize,
    metrics: Arc<OpMetrics>,
}

impl RowStream for IndexRangeStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        let mut out = Vec::new();
        'rids: while self.pos < self.rids.len() && out.len() < self.batch {
            let rid = self.rids[self.pos];
            self.pos += 1;
            let Some(row) = self.t.get(rid) else { continue };
            self.metrics.add_rows_in(1);
            for f in self.residual {
                if !f.eval_predicate(row)? {
                    continue 'rids;
                }
            }
            out.push(row.clone());
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }
}

// ---- simple leaves ---------------------------------------------------------

struct OnceStream {
    rows: Option<Vec<Row>>,
}

impl RowStream for OnceStream {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        Ok(self.rows.take().filter(|r| !r.is_empty()))
    }
}

struct ValuesStream<'a> {
    rows: &'a [Row],
    cursor: usize,
    batch: usize,
}

impl RowStream for ValuesStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.cursor >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch.max(1)).min(self.rows.len());
        let out = self.rows[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(Some(out))
    }
}

// ---- pipelined operators ---------------------------------------------------

struct FilterStream<'a> {
    input: BoxedRowStream<'a>,
    predicate: &'a Expr,
}

impl RowStream for FilterStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else { return Ok(None) };
            let mut out = Vec::with_capacity(batch.len());
            for row in batch {
                if self.predicate.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

struct ProjectStream<'a> {
    input: BoxedRowStream<'a>,
    exprs: &'a [Expr],
}

impl RowStream for ProjectStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        let Some(batch) = self.input.next_batch()? else { return Ok(None) };
        let mut out = Vec::with_capacity(batch.len());
        for row in batch {
            let mut new_row = Vec::with_capacity(self.exprs.len());
            for e in self.exprs {
                new_row.push(e.eval(&row)?);
            }
            out.push(new_row);
        }
        Ok(Some(out))
    }
}

struct UnnestStream<'a> {
    input: BoxedRowStream<'a>,
    column: usize,
    keep_empty: bool,
}

impl RowStream for UnnestStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else { return Ok(None) };
            let mut out = Vec::with_capacity(batch.len());
            for mut row in batch {
                match &row[self.column] {
                    Value::Null => {
                        if self.keep_empty {
                            out.push(row);
                        }
                    }
                    Value::Array(_) => {
                        let Value::Array(vs) =
                            std::mem::replace(&mut row[self.column], Value::Null)
                        else {
                            unreachable!("just matched Array")
                        };
                        if vs.is_empty() {
                            if self.keep_empty {
                                // Column already replaced with NULL.
                                out.push(row);
                            }
                            continue;
                        }
                        let last = vs.len() - 1;
                        let mut it = vs.into_iter();
                        for _ in 0..last {
                            let v = it.next().expect("length checked");
                            let mut new_row = row.clone();
                            new_row[self.column] = v;
                            out.push(new_row);
                        }
                        // Move the original row for the final element: no clone.
                        row[self.column] = it.next().expect("length checked");
                        out.push(row);
                    }
                    other => {
                        return Err(EngineError::Eval(format!(
                            "unnest over non-array value {other}"
                        )))
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

struct LimitStream<'a> {
    input: BoxedRowStream<'a>,
    remaining: usize,
}

impl RowStream for LimitStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.remaining == 0 {
            // Early termination: never pull the child again.
            return Ok(None);
        }
        match self.input.next_batch()? {
            None => {
                self.remaining = 0;
                Ok(None)
            }
            Some(mut batch) => {
                if batch.len() > self.remaining {
                    batch.truncate(self.remaining);
                }
                self.remaining -= batch.len();
                Ok(Some(batch))
            }
        }
    }
}

struct DistinctStream<'a> {
    input: BoxedRowStream<'a>,
    seen: FxHashSet<Row>,
}

impl RowStream for DistinctStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else { return Ok(None) };
            let mut out = Vec::new();
            for row in batch {
                // Clone only first-seen rows; duplicates are dropped without
                // the per-row clone the materializing executor paid.
                if !self.seen.contains(&row) {
                    self.seen.insert(row.clone());
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

struct UnionStream<'a> {
    children: Vec<BoxedRowStream<'a>>,
    idx: usize,
}

impl RowStream for UnionStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        while self.idx < self.children.len() {
            match self.children[self.idx].next_batch()? {
                Some(b) if !b.is_empty() => return Ok(Some(b)),
                Some(_) => continue,
                None => self.idx += 1,
            }
        }
        Ok(None)
    }
}

// ---- hash join -------------------------------------------------------------

struct JoinStream<'a> {
    left: BoxedRowStream<'a>,
    right: Option<BoxedRowStream<'a>>,
    kind: JoinKind,
    left_keys: &'a [Expr],
    right_keys: &'a [Expr],
    right_arity: usize,
    threads: usize,
    build: Option<JoinBuild>,
}

/// Build-side hash table keyed either by a bare [`Value`] (single join key
/// — the overwhelmingly common case for FK joins produced by the mapping
/// layer) or by a composed `Vec<Value>` for multi-key joins. The
/// single-key form avoids one heap allocation per build row *and* per
/// probe row.
enum KeyMap {
    Single(FxHashMap<Value, Vec<usize>>),
    Multi(FxHashMap<Vec<Value>, Vec<usize>>),
}

impl KeyMap {
    fn for_keys(keys: &[Expr]) -> KeyMap {
        if keys.len() == 1 {
            KeyMap::Single(FxHashMap::default())
        } else {
            KeyMap::Multi(FxHashMap::default())
        }
    }

    /// Merge `part` into `self` (both sides must come from the same key
    /// list, so the variants always agree).
    fn merge(&mut self, part: KeyMap) {
        match (self, part) {
            (KeyMap::Single(m), KeyMap::Single(p)) => {
                for (k, mut v) in p {
                    m.entry(k).or_default().append(&mut v);
                }
            }
            (KeyMap::Multi(m), KeyMap::Multi(p)) => {
                for (k, mut v) in p {
                    m.entry(k).or_default().append(&mut v);
                }
            }
            _ => unreachable!("partial key maps built from one key list"),
        }
    }
}

struct JoinBuild {
    rows: Vec<Row>,
    table: KeyMap,
}

impl JoinBuild {
    /// Evaluate the probe keys over `row` and look up the matching build
    /// rows. NULL keys never join.
    fn probe(&self, keys: &[Expr], row: &[Value]) -> EngineResult<Option<&Vec<usize>>> {
        match (&self.table, keys) {
            (KeyMap::Single(m), [e]) => {
                let v = e.eval(row)?;
                Ok(if v.is_null() { None } else { m.get(&v) })
            }
            (KeyMap::Multi(m), keys) => {
                let mut key = Vec::with_capacity(keys.len());
                for e in keys {
                    let v = e.eval(row)?;
                    if v.is_null() {
                        return Ok(None);
                    }
                    key.push(v);
                }
                Ok(m.get(&key))
            }
            (KeyMap::Single(_), _) => {
                Err(EngineError::Plan("join key arity mismatch".into()))
            }
        }
    }
}

impl JoinStream<'_> {
    /// Drain the build (right) side and hash it. With `threads > 1` the key
    /// evaluation + insertion runs on scoped workers over contiguous chunks
    /// whose partial tables are merged in chunk order — per-key row indexes
    /// stay ascending, so probe output order matches sequential execution.
    fn build_side(&mut self) -> EngineResult<()> {
        if self.build.is_some() {
            return Ok(());
        }
        let mut right = self.right.take().expect("build side taken once");
        let mut rows: Vec<Row> = Vec::new();
        while let Some(b) = right.next_batch()? {
            rows.extend(b);
        }
        let table = if self.threads > 1 && rows.len() >= 2 {
            parallel_hash_build(&rows, self.right_keys, self.threads)?
        } else {
            hash_build_range(&rows, self.right_keys, 0, rows.len())?
        };
        self.build = Some(JoinBuild { rows, table });
        Ok(())
    }
}

fn hash_build_range(rows: &[Row], keys: &[Expr], lo: usize, hi: usize) -> EngineResult<KeyMap> {
    if let [e] = keys {
        // Single-key fast path: no per-row Vec allocation.
        let mut table: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
        for (i, row) in rows[lo..hi].iter().enumerate() {
            let v = e.eval(row)?;
            if v.is_null() {
                continue; // NULL keys never join
            }
            table.entry(v).or_default().push(lo + i);
        }
        return Ok(KeyMap::Single(table));
    }
    let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    'build: for (i, row) in rows[lo..hi].iter().enumerate() {
        let mut key = Vec::with_capacity(keys.len());
        for e in keys {
            let v = e.eval(row)?;
            if v.is_null() {
                continue 'build; // NULL keys never join
            }
            key.push(v);
        }
        table.entry(key).or_default().push(lo + i);
    }
    Ok(KeyMap::Multi(table))
}

fn parallel_hash_build(rows: &[Row], keys: &[Expr], threads: usize) -> EngineResult<KeyMap> {
    let chunk = rows.len().div_ceil(threads).max(1);
    let parts: Vec<EngineResult<KeyMap>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let lo = (w * chunk).min(rows.len());
                let hi = ((w + 1) * chunk).min(rows.len());
                s.spawn(move || hash_build_range(rows, keys, lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(EngineError::Eval("join build worker panicked".into()))
                })
            })
            .collect()
    });
    let mut merged = KeyMap::for_keys(keys);
    for part in parts {
        merged.merge(part?);
    }
    Ok(merged)
}

impl RowStream for JoinStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        self.build_side()?;
        loop {
            let Some(batch) = self.left.next_batch()? else { return Ok(None) };
            let build = self.build.as_ref().expect("built above");
            let mut out = Vec::new();
            for lrow in batch {
                let matches = build.probe(self.left_keys, &lrow)?;
                match self.kind {
                    JoinKind::Inner => {
                        if let Some(idxs) = matches {
                            for &i in idxs {
                                let mut row =
                                    Vec::with_capacity(lrow.len() + self.right_arity);
                                row.extend_from_slice(&lrow);
                                row.extend_from_slice(&build.rows[i]);
                                out.push(row);
                            }
                        }
                    }
                    JoinKind::Left => match matches {
                        Some(idxs) if !idxs.is_empty() => {
                            for &i in idxs {
                                let mut row =
                                    Vec::with_capacity(lrow.len() + self.right_arity);
                                row.extend_from_slice(&lrow);
                                row.extend_from_slice(&build.rows[i]);
                                out.push(row);
                            }
                        }
                        _ => {
                            let mut row = Vec::with_capacity(lrow.len() + self.right_arity);
                            row.extend_from_slice(&lrow);
                            row.extend(std::iter::repeat_n(Value::Null, self.right_arity));
                            out.push(row);
                        }
                    },
                    JoinKind::Semi => {
                        if matches.is_some_and(|m| !m.is_empty()) {
                            // Left rows are owned: emit by move, no clone.
                            out.push(lrow);
                        }
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

// ---- pipeline breakers -----------------------------------------------------

struct AggregateStream<'a> {
    input: BoxedRowStream<'a>,
    group: &'a [Expr],
    aggs: &'a [AggCall],
    batch: usize,
    out: Option<VecDeque<Vec<Row>>>,
}

impl AggregateStream<'_> {
    /// Consume the input batch-by-batch, feeding accumulators directly —
    /// the input is never materialized as a whole.
    fn run(&mut self) -> EngineResult<VecDeque<Vec<Row>>> {
        let rows = if self.group.is_empty() {
            // Global aggregate: always exactly one output row.
            let mut accs: Vec<Accumulator> =
                self.aggs.iter().map(|a| a.accumulator()).collect();
            while let Some(batch) = self.input.next_batch()? {
                for row in &batch {
                    for (acc, call) in accs.iter_mut().zip(self.aggs) {
                        acc.update(call.arg.eval(row)?)?;
                    }
                }
            }
            vec![accs.into_iter().map(Accumulator::finish).collect()]
        } else if let [g] = self.group {
            // Single-key group-by fast path: key directly on `Value`, no
            // per-row `Vec<Value>` allocation. First-seen order preserved.
            let mut groups: FxHashMap<Value, usize> = FxHashMap::default();
            let mut states: Vec<(Value, Vec<Accumulator>)> = Vec::new();
            while let Some(batch) = self.input.next_batch()? {
                for row in &batch {
                    let key = g.eval(row)?;
                    let slot = match groups.get(&key) {
                        Some(&s) => s,
                        None => {
                            let s = states.len();
                            groups.insert(key.clone(), s);
                            states
                                .push((key, self.aggs.iter().map(|a| a.accumulator()).collect()));
                            s
                        }
                    };
                    let (_, accs) = &mut states[slot];
                    for (acc, call) in accs.iter_mut().zip(self.aggs) {
                        acc.update(call.arg.eval(row)?)?;
                    }
                }
            }
            let mut rows = Vec::with_capacity(states.len());
            for (key, accs) in states {
                let mut row = Vec::with_capacity(1 + accs.len());
                row.push(key);
                row.extend(accs.into_iter().map(Accumulator::finish));
                rows.push(row);
            }
            rows
        } else {
            // Group-by: preserve first-seen group order for determinism.
            let mut groups: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
            let mut states: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
            while let Some(batch) = self.input.next_batch()? {
                for row in &batch {
                    let mut key = Vec::with_capacity(self.group.len());
                    for e in self.group {
                        key.push(e.eval(row)?);
                    }
                    let slot = match groups.get(&key) {
                        Some(&s) => s,
                        None => {
                            let s = states.len();
                            groups.insert(key.clone(), s);
                            states
                                .push((key, self.aggs.iter().map(|a| a.accumulator()).collect()));
                            s
                        }
                    };
                    let (_, accs) = &mut states[slot];
                    for (acc, call) in accs.iter_mut().zip(self.aggs) {
                        acc.update(call.arg.eval(row)?)?;
                    }
                }
            }
            let mut rows = Vec::with_capacity(states.len());
            for (key, accs) in states {
                let mut row = key;
                row.extend(accs.into_iter().map(Accumulator::finish));
                rows.push(row);
            }
            rows
        };
        let mut out = VecDeque::new();
        push_chunked(&mut out, rows, self.batch);
        Ok(out)
    }
}

impl RowStream for AggregateStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.out.is_none() {
            let out = self.run()?;
            self.out = Some(out);
        }
        Ok(self.out.as_mut().expect("just filled").pop_front())
    }
}

struct SortStream<'a> {
    input: BoxedRowStream<'a>,
    keys: &'a [SortKey],
    batch: usize,
    out: Option<VecDeque<Vec<Row>>>,
}

impl SortStream<'_> {
    fn run(&mut self) -> EngineResult<VecDeque<Vec<Row>>> {
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
        while let Some(batch) = self.input.next_batch()? {
            for row in batch {
                let mut k = Vec::with_capacity(self.keys.len());
                for sk in self.keys {
                    k.push(sk.expr.eval(&row)?);
                }
                keyed.push((k, row));
            }
        }
        let keys = self.keys;
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, sk) in keys.iter().enumerate() {
                let ord = a[i].cmp(&b[i]);
                let ord = if sk.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
        let mut out = VecDeque::new();
        push_chunked(&mut out, rows, self.batch);
        Ok(out)
    }
}

impl RowStream for SortStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.out.is_none() {
            let out = self.run()?;
            self.out = Some(out);
        }
        Ok(self.out.as_mut().expect("just filled").pop_front())
    }
}
