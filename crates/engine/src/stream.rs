//! Streaming (pull-based) operator implementations.
//!
//! Every [`crate::plan::PlanKind`] compiles to a [`RowStream`]: a cursor
//! that yields small batches of rows on demand. Operators pull from their
//! children, so pipeline-friendly nodes (filter, project, join probe,
//! unnest, limit, union) never materialize their input, and `Limit` stops
//! pulling as soon as it is satisfied. Pipeline breakers (sort, distinct's
//! seen-set, the join build side) buffer exactly the state their semantics
//! require and nothing more.
//!
//! ## Morsel parallelism on the persistent worker pool
//!
//! With [`crate::exec::ExecContext::threads`] `> 1`, parallel work runs as
//! *waves* of jobs on the shared, long-lived [`crate::pool::WorkerPool`] —
//! no thread is ever spawned per pull (the pool is the engine's only
//! thread-spawn site). Four operator families engage the pool:
//!
//! * **leaf scans** — the slot space is split into contiguous morsels;
//!   each pull runs one wave of up to `threads` morsels, reassembled in
//!   morsel order;
//! * **fused pipelines** — `Filter`/`Project` chains sitting directly
//!   above a leaf execute *inside* the scan's morsel jobs instead of as
//!   serial post-passes (disable with `ExecContext::with_fusion(false)`);
//! * **hash joins** — the build side is hashed in parallel over contiguous
//!   chunks merged in chunk order, and the probe side is morsel-partitioned
//!   against the shared read-only build table, outputs concatenated in
//!   chunk order;
//! * **aggregation** — input rows are folded through fixed-size chunks
//!   ([`AGG_CHUNK`]) whose partial hash tables merge into the global state
//!   in chunk order.
//!
//! ## Columnar (vectorized) execution
//!
//! With [`crate::exec::ExecContext::columnar`] (on by default), leaf table
//! scans run over the table's typed column vectors instead of cloning
//! row-shaped slots: each morsel builds a *selection vector* of live slot
//! ids, applies the vectorizable prefix of the pushed-down filters (and of
//! the fused Filter/Project chain) as tight per-column kernels compiled by
//! [`crate::vplan`], row-evaluates any residual predicates against
//! borrowed rows in the original order, and only then materializes the
//! surviving rows — restricted to the scan's pruned projection — via a
//! column-at-a-time gather ([`crate::vector`]). Single-key hash-join
//! builds and single-key aggregates over a bare scan skip row streams
//! entirely and run the same selection + gather pass against the column
//! vectors. Everything else falls back to the row-batch operators; the
//! split is observable via the `engine_columnar_batches_total` /
//! `engine_fallback_row_batches_total` counters and the `[columnar]`
//! marker on metric nodes. Columnar execution is bit-identical to the row
//! path at every configuration: the kernels replicate `Value` comparison
//! semantics (including NULL and cross-type ordering) exactly, and
//! selection order is slot order, the same order the row path visits.
//!
//! ## Determinism
//!
//! Parallel execution is **bit-identical** to single-threaded execution:
//! every parallel decomposition above is a pure function of the input row
//! order (never of the thread count or scheduling), and every merge happens
//! in submission order. Aggregation chunk boundaries in particular depend
//! only on the global input row index, so even float accumulation applies
//! the exact same reduction tree at every `threads`/`batch_size`/
//! `morsel_size` setting.
//!
//! Every compiled operator is wrapped in a metering shim that feeds the
//! [`crate::metrics::ExecMetrics`] tree and honours cooperative
//! cancellation; pool-engaged operators additionally record waves and the
//! number of distinct worker threads used.

use crate::agg::{Accumulator, AggCall};
use crate::error::{EngineError, EngineResult};
use crate::exec::ExecContext;
use crate::expr::Expr;
use crate::metrics::OpMetrics;
use crate::plan::{FactorizedSide, JoinKind, Plan, PlanKind, SortKey};
use crate::pool::WorkerPool;
use crate::vector;
use crate::vplan::{self, VecPred};
use erbium_storage::{Catalog, ColumnSlice, FactorizedTable, Row, RowId, Table, Value};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Batches produced by columnar (vectorized) kernels: selection-vector
/// scan morsels, columnar join builds, columnar aggregate passes.
fn m_columnar_batches() -> &'static erbium_obs::Counter {
    static H: OnceLock<Arc<erbium_obs::Counter>> = OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "engine_columnar_batches_total",
            "batches produced by columnar (vectorized) kernels",
        )
    })
}

/// Batches a kernel produced on the row path *while columnar execution
/// was enabled* — the observable fallback: factorized-join enumeration
/// morsels and stream-drained join builds.
fn m_fallback_row_batches() -> &'static erbium_obs::Counter {
    static H: OnceLock<Arc<erbium_obs::Counter>> = OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "engine_fallback_row_batches_total",
            "row-path batches produced while columnar execution was enabled",
        )
    })
}

/// Cells (row x column values) materialized by columnar kernels. With
/// projection pruning this grows by `rows x pruned_arity`, not
/// `rows x table_arity` — the direct evidence that untouched columns are
/// never materialized.
fn m_columnar_cells() -> &'static erbium_obs::Counter {
    static H: OnceLock<Arc<erbium_obs::Counter>> = OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "engine_columnar_cells_total",
            "cells materialized by columnar kernels (rows x columns gathered)",
        )
    })
}

/// A pull-based cursor over row batches.
///
/// `Ok(Some(batch))` carries a non-empty batch; `Ok(None)` means the stream
/// is exhausted (and stays exhausted). Batch sizes are *approximately*
/// [`crate::exec::ExecContext::batch_size`]: operators may emit smaller
/// batches, and expanding operators (join, unnest) may emit larger ones.
pub trait RowStream {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>>;
}

/// An owned, borrowing stream (operators borrow the plan and catalog).
pub type BoxedRowStream<'a> = Box<dyn RowStream + 'a>;

// ---- compilation -----------------------------------------------------------

/// Compile a plan node into a metered operator stream plus its metrics node.
pub(crate) fn compile<'a>(
    plan: &'a Plan,
    cat: &'a Catalog,
    ctx: &ExecContext,
) -> EngineResult<(BoxedRowStream<'a>, Arc<OpMetrics>)> {
    if let Some((inner, metrics)) = compile_fused(plan, cat, ctx)? {
        return Ok((
            Box::new(MeterStream {
                inner,
                metrics: Arc::clone(&metrics),
                cancel: ctx.cancel_flag(),
            }),
            metrics,
        ));
    }
    let (inner, metrics): (BoxedRowStream<'a>, Arc<OpMetrics>) = match &plan.kind {
        PlanKind::Scan { table, filters, projection } => {
            let t = cat.table(table)?;
            let m = OpMetrics::new(format!("Scan {table}"), vec![]);
            (table_scan_stream(t, filters, projection.as_deref(), Arc::clone(&m), Vec::new(), ctx), m)
        }
        PlanKind::IndexLookup { table, columns, keys, residual } => {
            let t = cat.table(table)?;
            let m = OpMetrics::new(format!("IndexLookup {table}"), vec![]);
            (
                Box::new(IndexLookupStream {
                    t,
                    table_name: table,
                    columns,
                    keys,
                    residual,
                    next_key: 0,
                    batch: ctx.batch_size,
                    metrics: Arc::clone(&m),
                }),
                m,
            )
        }
        PlanKind::IndexRange { table, column, lo, hi, residual } => {
            let t = cat.table(table)?;
            let idx = t
                .indexes()
                .iter()
                .find(|i| i.columns == [*column])
                .ok_or_else(|| EngineError::Plan(format!("no index on #{column} of '{table}'")))?;
            use std::ops::Bound;
            let lo_b = match lo {
                None => Bound::Unbounded,
                Some((v, true)) => Bound::Included(v),
                Some((v, false)) => Bound::Excluded(v),
            };
            let hi_b = match hi {
                None => Bound::Unbounded,
                Some((v, true)) => Bound::Included(v),
                Some((v, false)) => Bound::Excluded(v),
            };
            let rids = idx.lookup_range(lo_b, hi_b).ok_or_else(|| {
                EngineError::Plan(format!("index on #{column} of '{table}' is not ordered"))
            })?;
            let m = OpMetrics::new(format!("IndexRange {table}"), vec![]);
            (
                Box::new(IndexRangeStream {
                    t,
                    rids,
                    pos: 0,
                    residual,
                    batch: ctx.batch_size,
                    metrics: Arc::clone(&m),
                }),
                m,
            )
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let ft = cat.factorized(table)?;
            let m = OpMetrics::new(format!("FactorizedScan {table} {side:?}"), vec![]);
            let stream: BoxedRowStream<'a> = match side {
                FactorizedSide::Left => {
                    table_scan_stream(ft.left(), filters, None, Arc::clone(&m), Vec::new(), ctx)
                }
                FactorizedSide::Right => {
                    table_scan_stream(ft.right(), filters, None, Arc::clone(&m), Vec::new(), ctx)
                }
                FactorizedSide::Join => {
                    factorized_join_stream(ft, filters, Arc::clone(&m), Vec::new(), ctx)
                }
            };
            (stream, m)
        }
        PlanKind::FactorizedCount { table } => {
            let ft = cat.factorized(table)?;
            let m = OpMetrics::new(format!("FactorizedCount {table}"), vec![]);
            m.add_rows_in(1);
            (
                Box::new(OnceStream { rows: Some(vec![vec![Value::Int(ft.count_join() as i64)]]) }),
                m,
            )
        }
        PlanKind::Filter { input, predicate } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Filter", vec![cm]);
            (Box::new(FilterStream { input: child, predicate }), m)
        }
        PlanKind::Project { input, exprs } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Project", vec![cm]);
            (Box::new(ProjectStream { input: child, exprs }), m)
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => {
            if left_keys.len() != right_keys.len() {
                return Err(EngineError::Plan("join key arity mismatch".into()));
            }
            let (l, lm) = compile(left, cat, ctx)?;
            // Single-key columnar build fast path: when the build side is a
            // bare scan keyed by one column with a typed vector, hash it
            // straight off the column vectors instead of compiling and
            // draining a row stream.
            let columnar_build =
                if ctx.columnar { columnar_build_source(right, right_keys, cat) } else { None };
            let track_fallback = ctx.columnar && columnar_build.is_none();
            let (src, rm) = match columnar_build {
                Some((src, rm)) => (src, rm),
                None => {
                    let (r, rm) = compile(right, cat, ctx)?;
                    (BuildSource::Stream(r), rm)
                }
            };
            let m = OpMetrics::new(format!("Join {kind:?}"), vec![lm, rm]);
            (
                Box::new(JoinStream {
                    left: l,
                    right: src,
                    kind: *kind,
                    left_keys,
                    right_keys,
                    right_arity: right.fields.len(),
                    threads: ctx.threads.max(1),
                    metrics: Arc::clone(&m),
                    track_fallback,
                    build: None,
                }),
                m,
            )
        }
        PlanKind::Aggregate { input, group, aggs } => {
            if let Some(pair) = columnar_agg_stream(input, group, aggs, cat, ctx)? {
                pair
            } else {
                let (child, cm) = compile(input, cat, ctx)?;
                let m = OpMetrics::new("Aggregate", vec![cm]);
                (
                    Box::new(AggregateStream {
                        input: child,
                        group,
                        aggs,
                        batch: ctx.batch_size,
                        threads: ctx.threads.max(1),
                        metrics: Arc::clone(&m),
                        out: None,
                    }),
                    m,
                )
            }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new(format!("Unnest #{column}"), vec![cm]);
            (
                Box::new(UnnestStream { input: child, column: *column, keep_empty: *keep_empty }),
                m,
            )
        }
        PlanKind::Sort { input, keys } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Sort", vec![cm]);
            (Box::new(SortStream { input: child, keys, batch: ctx.batch_size, out: None }), m)
        }
        PlanKind::Limit { input, limit } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new(format!("Limit {limit}"), vec![cm]);
            (Box::new(LimitStream { input: child, remaining: *limit }), m)
        }
        PlanKind::Distinct { input } => {
            let (child, cm) = compile(input, cat, ctx)?;
            let m = OpMetrics::new("Distinct", vec![cm]);
            (Box::new(DistinctStream { input: child, seen: FxHashSet::default() }), m)
        }
        PlanKind::Union { inputs } => {
            let mut children = Vec::with_capacity(inputs.len());
            let mut cms = Vec::with_capacity(inputs.len());
            for p in inputs {
                let (c, cm) = compile(p, cat, ctx)?;
                children.push(c);
                cms.push(cm);
            }
            let m = OpMetrics::new("UnionAll", cms);
            (Box::new(UnionStream { children, idx: 0 }), m)
        }
        PlanKind::Values { rows } => {
            let m = OpMetrics::new("Values", vec![]);
            m.add_rows_in(rows.len() as u64);
            (Box::new(ValuesStream { rows, cursor: 0, batch: ctx.batch_size }), m)
        }
    };
    Ok((
        Box::new(MeterStream {
            inner,
            metrics: Arc::clone(&metrics),
            cancel: ctx.cancel_flag(),
        }),
        metrics,
    ))
}

// ---- pipeline fusion -------------------------------------------------------

/// One operator fused into a leaf's morsel jobs.
enum FusedOp<'a> {
    Filter(&'a Expr),
    Project(&'a [Expr]),
}

/// A fused operator plus its metrics node. The chain's *top* operator is
/// metered by the enclosing [`MeterStream`] and carries `metrics: None`
/// here; interior operators record their own rows/batches from inside the
/// morsel job (one "batch" per morsel).
struct FusedStep<'a> {
    op: FusedOp<'a>,
    metrics: Option<Arc<OpMetrics>>,
}

/// Run the fused operator chain over one morsel's rows, in place.
fn apply_fused(steps: &[FusedStep<'_>], rows: &mut Vec<Row>) -> EngineResult<()> {
    for step in steps {
        match step.op {
            FusedOp::Filter(pred) => {
                // Stable in-place compaction: survivors keep their order,
                // dropped rows are truncated away.
                let mut kept = 0;
                for i in 0..rows.len() {
                    if pred.eval_predicate(&rows[i])? {
                        rows.swap(kept, i);
                        kept += 1;
                    }
                }
                rows.truncate(kept);
            }
            FusedOp::Project(exprs) => {
                for row in rows.iter_mut() {
                    let mut new_row = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        new_row.push(e.eval(row)?);
                    }
                    *row = new_row;
                }
            }
        }
        if let Some(m) = &step.metrics {
            m.record_batch(rows.len() as u64);
        }
    }
    Ok(())
}

/// Try to compile `plan` as a fused leaf pipeline: a chain of
/// `Filter`/`Project` nodes sitting directly above a morsel-driven leaf
/// (`Scan` or `FactorizedScan`) executes inside the leaf's morsel jobs
/// instead of as serial post-passes. The metrics tree keeps one node per
/// plan operator (same shape as unfused execution) with each node marked
/// `[fused]`.
fn compile_fused<'a>(
    plan: &'a Plan,
    cat: &'a Catalog,
    ctx: &ExecContext,
) -> EngineResult<Option<(BoxedRowStream<'a>, Arc<OpMetrics>)>> {
    if !ctx.fusion {
        return Ok(None);
    }
    // Collect the Filter/Project chain (top-down) above the leaf.
    let mut chain: Vec<&'a Plan> = Vec::new();
    let mut base = plan;
    while let PlanKind::Filter { input, .. } | PlanKind::Project { input, .. } = &base.kind {
        chain.push(base);
        base = input;
    }
    if chain.is_empty() {
        return Ok(None);
    }
    // The base must be a morsel-driven leaf.
    enum Leaf<'a> {
        Table(&'a Table, &'a [Expr], Option<&'a [usize]>, String),
        FactJoin(&'a FactorizedTable, &'a [Expr], String),
    }
    let leaf = match &base.kind {
        PlanKind::Scan { table, filters, projection } => {
            Leaf::Table(cat.table(table)?, filters, projection.as_deref(), format!("Scan {table}"))
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let ft = cat.factorized(table)?;
            let label = format!("FactorizedScan {table} {side:?}");
            match side {
                FactorizedSide::Left => Leaf::Table(ft.left(), filters, None, label),
                FactorizedSide::Right => Leaf::Table(ft.right(), filters, None, label),
                FactorizedSide::Join => Leaf::FactJoin(ft, filters, label),
            }
        }
        _ => return Ok(None),
    };
    let label = match &leaf {
        Leaf::Table(_, _, _, l) | Leaf::FactJoin(_, _, l) => l.clone(),
    };
    // Build the plan-shaped metrics chain bottom-up plus the fused steps.
    let scan_m = OpMetrics::new(label, vec![]);
    scan_m.mark_fused();
    let mut steps: Vec<FusedStep<'a>> = Vec::with_capacity(chain.len());
    let mut top_m = Arc::clone(&scan_m);
    for node in chain.iter().rev() {
        let (op, name) = match &node.kind {
            PlanKind::Filter { predicate, .. } => (FusedOp::Filter(predicate), "Filter"),
            PlanKind::Project { exprs, .. } => (FusedOp::Project(exprs), "Project"),
            _ => unreachable!("chain holds only Filter/Project nodes"),
        };
        let m = OpMetrics::new(name, vec![top_m]);
        m.mark_fused();
        steps.push(FusedStep { op, metrics: Some(Arc::clone(&m)) });
        top_m = m;
    }
    // The chain's top node is metered by the enclosing MeterStream.
    steps.last_mut().expect("chain is non-empty").metrics = None;
    let stream: BoxedRowStream<'a> = match leaf {
        Leaf::Table(t, filters, proj, _) => table_scan_stream(t, filters, proj, scan_m, steps, ctx),
        Leaf::FactJoin(ft, filters, _) => factorized_join_stream(ft, filters, scan_m, steps, ctx),
    };
    Ok(Some((stream, top_m)))
}

// ---- metering shim ---------------------------------------------------------

struct MeterStream<'a> {
    inner: BoxedRowStream<'a>,
    metrics: Arc<OpMetrics>,
    cancel: Arc<AtomicBool>,
}

impl RowStream for MeterStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(EngineError::Cancelled);
        }
        let start = Instant::now();
        let out = self.inner.next_batch();
        self.metrics.add_elapsed_ns(start.elapsed().as_nanos() as u64);
        if let Ok(Some(batch)) = &out {
            self.metrics.record_batch(batch.len() as u64);
        }
        out
    }
}

// ---- morsel-driven leaf scans ----------------------------------------------

/// A morsel job: process the slot range, appending output rows to `out`
/// (a reusable per-worker buffer that arrives cleared, with its previous
/// wave's capacity intact).
type MorselWork<'a> = Box<dyn Fn(Range<usize>, &mut Vec<Row>) -> EngineResult<()> + Sync + 'a>;

/// Leaf stream over a slot space `0..total`, processed in contiguous
/// morsels. With `threads > 1` each pull runs one wave of up to `threads`
/// morsels on the shared [`WorkerPool`]; outputs are buffered in morsel
/// order, so results are deterministic regardless of thread count. The
/// stream is lazy between waves: a `Limit` upstream that stops pulling
/// stops the scan.
struct MorselStream<'a> {
    work: MorselWork<'a>,
    total: usize,
    next: usize,
    threads: usize,
    morsel: usize,
    batch: usize,
    cancel: Arc<AtomicBool>,
    buffer: VecDeque<Vec<Row>>,
    /// Per-worker output buffers, reused (capacity and all) across waves
    /// instead of allocating a fresh `Vec<Row>` per morsel per pull.
    scratch: Vec<Vec<Row>>,
    /// Node that records pool waves / workers used.
    metrics: Arc<OpMetrics>,
}

impl<'a> MorselStream<'a> {
    fn new(
        work: MorselWork<'a>,
        total: usize,
        ctx: &ExecContext,
        metrics: Arc<OpMetrics>,
    ) -> MorselStream<'a> {
        MorselStream {
            work,
            total,
            next: 0,
            threads: ctx.threads.max(1),
            morsel: ctx.morsel_size.max(1),
            batch: ctx.batch_size.max(1),
            cancel: ctx.cancel_flag(),
            buffer: VecDeque::new(),
            scratch: Vec::new(),
            metrics,
        }
    }
}

impl RowStream for MorselStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            if let Some(b) = self.buffer.pop_front() {
                debug_assert!(!b.is_empty());
                return Ok(Some(b));
            }
            if self.next >= self.total {
                return Ok(None);
            }
            if self.cancel.load(Ordering::Relaxed) {
                return Err(EngineError::Cancelled);
            }
            // One wave: up to `threads` contiguous morsels.
            let mut ranges: Vec<Range<usize>> = Vec::new();
            while ranges.len() < self.threads && self.next < self.total {
                let end = (self.next + self.morsel).min(self.total);
                ranges.push(self.next..end);
                self.next = end;
            }
            let mut bufs = std::mem::take(&mut self.scratch);
            if bufs.len() < ranges.len() {
                bufs.resize_with(ranges.len(), Vec::new);
            }
            for b in &mut bufs {
                b.clear();
            }
            if self.threads <= 1 || ranges.len() <= 1 {
                for (r, buf) in ranges.into_iter().zip(&mut bufs) {
                    (self.work)(r, buf)?;
                }
            } else {
                let work = &self.work;
                let tasks: Vec<_> = ranges
                    .into_iter()
                    .zip(bufs.iter_mut())
                    .map(|(r, buf)| move || work(r, buf))
                    .collect();
                let (results, workers) = WorkerPool::global().run_scoped(tasks);
                self.metrics.record_wave(workers as u64);
                for res in results {
                    res.map_err(|m| {
                        EngineError::Eval(format!("morsel worker panicked: {m}"))
                    })??;
                }
            }
            for buf in &mut bufs {
                drain_chunked(&mut self.buffer, buf, self.batch);
            }
            self.scratch = bufs;
        }
    }
}

/// Move rows out of `buf` into `queue` in batches of at most `batch`
/// (dropping nothing, never queueing an empty batch), preserving order.
///
/// Allocation behaviour: when the whole buffer fits one batch — the
/// common case, since morsels are sized near the batch target — the
/// buffer's allocation is handed to the queue wholesale (zero per-row
/// moves, zero copies); the scratch slot then starts the next wave empty
/// and regrows once, which costs the same single allocation the old
/// per-chunk `collect` paid but skips the row-by-row copy. Larger buffers
/// are split into exact-capacity chunks (`Drain` is an
/// `ExactSizeIterator`, so each chunk allocates exactly once) and `buf`
/// keeps its capacity for the next wave.
fn drain_chunked(queue: &mut VecDeque<Vec<Row>>, buf: &mut Vec<Row>, batch: usize) {
    if buf.is_empty() {
        return;
    }
    if buf.len() <= batch {
        queue.push_back(std::mem::take(buf));
        return;
    }
    let mut it = buf.drain(..);
    loop {
        let n = it.len().min(batch);
        if n == 0 {
            break;
        }
        let mut chunk = Vec::with_capacity(n);
        chunk.extend(it.by_ref().take(n));
        queue.push_back(chunk);
    }
}

/// Split owned `rows` into at most `batch`-sized batches on a queue.
fn push_chunked(buf: &mut VecDeque<Vec<Row>>, mut rows: Vec<Row>, batch: usize) {
    while rows.len() > batch {
        let rest = rows.split_off(batch);
        buf.push_back(std::mem::replace(&mut rows, rest));
    }
    if !rows.is_empty() {
        buf.push_back(rows);
    }
}

/// Morsel scan over one table: examine rows in the slot range, apply the
/// pushed-down filters against borrowed rows, clone only survivors
/// (restricted to the pruned `projection` when one is set), then run any
/// fused operator chain over the morsel's survivors in place.
///
/// With [`ExecContext::columnar`] the scan dispatches to
/// [`columnar_scan_stream`] instead: same morsel structure, same output,
/// but filters run as vector kernels over a selection of slot ids and
/// rows materialize late, column at a time.
fn table_scan_stream<'a>(
    t: &'a Table,
    filters: &'a [Expr],
    projection: Option<&'a [usize]>,
    scan_m: Arc<OpMetrics>,
    steps: Vec<FusedStep<'a>>,
    ctx: &ExecContext,
) -> BoxedRowStream<'a> {
    if ctx.columnar {
        return columnar_scan_stream(t, filters, projection, scan_m, steps, ctx);
    }
    let total = t.slot_count();
    let wave_m = Arc::clone(&scan_m);
    let work = move |range: Range<usize>, out: &mut Vec<Row>| -> EngineResult<()> {
        let mut examined = 0u64;
        // Pin the morsel's pages once: rows borrow from the pin, and a
        // bounded buffer pool serves evicted pages transiently instead of
        // growing the resident set past its frame budget.
        let pin = t.pin_slots(range);
        'rows: for (_, row) in pin.iter() {
            examined += 1;
            for f in filters {
                if !f.eval_predicate(row)? {
                    continue 'rows;
                }
            }
            out.push(match projection {
                Some(cols) => cols.iter().map(|&c| row[c].clone()).collect(),
                None => row.clone(),
            });
        }
        scan_m.add_rows_in(examined);
        if !steps.is_empty() {
            // Fused pipeline: record the scan's own emission here (the
            // enclosing meter only sees the chain's top operator).
            scan_m.record_batch(out.len() as u64);
            apply_fused(&steps, out)?;
        }
        Ok(())
    };
    Box::new(MorselStream::new(Box::new(work), total, ctx, wave_m))
}

// ---- columnar (vectorized) kernels -----------------------------------------

/// One fused step compiled onto the columnar path: either a vector
/// predicate narrowing the selection, or a pure column remap (a
/// `Project` of bare column references, folded into the gather mapping).
enum VOp {
    Filter(VecPred),
    Remap,
}

/// A compiled columnar step plus the plan node's metrics (mirrors
/// [`FusedStep`]: `None` for the chain's top node, which the enclosing
/// meter records).
struct VStep {
    op: VOp,
    metrics: Option<Arc<OpMetrics>>,
}

/// Row-evaluate residual (non-vectorizable) predicates over the selected
/// slots, compacting `sel` in place in selection order — the same
/// left-to-right, row-at-a-time order the row path uses, so error
/// behaviour is identical.
fn apply_residual(
    t: &Table,
    residual: &[Expr],
    sel: &mut Vec<usize>,
) -> EngineResult<()> {
    if residual.is_empty() {
        return Ok(());
    }
    let mut kept = 0;
    'slots: for i in 0..sel.len() {
        let s = sel[i];
        let row = t.get(RowId(s as u64)).expect("selected slot is live");
        for f in residual {
            if !f.eval_predicate(row)? {
                continue 'slots;
            }
        }
        sel[kept] = s;
        kept += 1;
    }
    sel.truncate(kept);
    Ok(())
}

/// Columnar morsel scan: build a selection vector of live slots, narrow it
/// with compiled vector predicates (scan filters first, then the
/// vectorizable prefix of the fused chain), row-evaluate residuals, and
/// late-materialize survivors column-at-a-time through the pruned
/// projection. Bit-identical to the row path: selection order is slot
/// order, predicates replicate `Value` semantics, and any fused suffix
/// that could not vectorize runs via [`apply_fused`] on the gathered rows
/// exactly as it would on cloned rows.
fn columnar_scan_stream<'a>(
    t: &'a Table,
    filters: &'a [Expr],
    projection: Option<&'a [usize]>,
    scan_m: Arc<OpMetrics>,
    steps: Vec<FusedStep<'a>>,
    ctx: &ExecContext,
) -> BoxedRowStream<'a> {
    scan_m.mark_columnar();
    let total = t.slot_count();
    let wave_m = Arc::clone(&scan_m);
    let fused = !steps.is_empty();
    // Scan filters live in the table's own column space.
    let identity: Vec<usize> = (0..t.schema().arity()).collect();
    let (preds, residual) = vplan::split_filters(filters, t, &identity);
    // `mapping[out_col]` = table column feeding output column `out_col`.
    let mut mapping: Vec<usize> = match projection {
        Some(p) => p.to_vec(),
        None => identity,
    };
    // Compile the maximal vectorizable prefix of the fused chain; the
    // remainder runs row-shaped on the gathered output (`tail`).
    let mut vsteps: Vec<VStep> = Vec::new();
    let mut tail: Vec<FusedStep<'a>> = Vec::new();
    let mut it = steps.into_iter();
    for step in it.by_ref() {
        let compiled = match &step.op {
            FusedOp::Filter(pred) => vplan::compile_pred(pred, t, &mapping).map(VOp::Filter),
            FusedOp::Project(exprs) => vplan::compose_projection(exprs, &mapping).map(|m| {
                mapping = m;
                VOp::Remap
            }),
        };
        match compiled {
            Some(op) => {
                if let Some(m) = &step.metrics {
                    m.mark_columnar();
                }
                vsteps.push(VStep { op, metrics: step.metrics });
            }
            None => {
                tail.push(step);
                break;
            }
        }
    }
    tail.extend(it);
    let work = move |range: Range<usize>, out: &mut Vec<Row>| -> EngineResult<()> {
        let mut sel: Vec<usize> = Vec::new();
        vector::live_selection(t.live_slots(), range, &mut sel);
        scan_m.add_rows_in(sel.len() as u64);
        for p in &preds {
            vector::apply_pred(p, t, &mut sel);
        }
        apply_residual(t, residual, &mut sel)?;
        if fused {
            // Fused pipeline: record the scan's own emission here (the
            // enclosing meter only sees the chain's top operator).
            scan_m.record_batch(sel.len() as u64);
        }
        for v in &vsteps {
            if let VOp::Filter(p) = &v.op {
                vector::apply_pred(p, t, &mut sel);
            }
            if let Some(m) = &v.metrics {
                m.record_batch(sel.len() as u64);
            }
        }
        vector::gather_rows(t, &mapping, &sel, out);
        m_columnar_cells().add((sel.len() * mapping.len()) as u64);
        m_columnar_batches().inc();
        if !tail.is_empty() {
            apply_fused(&tail, out)?;
        }
        Ok(())
    };
    Box::new(MorselStream::new(Box::new(work), total, ctx, wave_m))
}

/// Morsel scan enumerating the stored join of a factorized structure.
fn factorized_join_stream<'a>(
    ft: &'a FactorizedTable,
    filters: &'a [Expr],
    scan_m: Arc<OpMetrics>,
    steps: Vec<FusedStep<'a>>,
    ctx: &ExecContext,
) -> BoxedRowStream<'a> {
    let total = ft.left().slot_count();
    let wave_m = Arc::clone(&scan_m);
    // Factorized join enumeration synthesizes rows pair-by-pair; it has no
    // columnar form, so under columnar mode its morsels count as fallback.
    let track_fallback = ctx.columnar;
    // One CSR build (or cache hit) per stream; every morsel then expands
    // neighbours from the shared flat arrays instead of per-slot Vecs.
    let csr = ft.csr_forward();
    let work = move |range: Range<usize>, out: &mut Vec<Row>| -> EngineResult<()> {
        let mut examined = 0u64;
        'pairs: for row in ft.iter_join_slots_csr(&csr, range) {
            examined += 1;
            for f in filters {
                if !f.eval_predicate(&row)? {
                    continue 'pairs;
                }
            }
            out.push(row);
        }
        scan_m.add_rows_in(examined);
        if track_fallback {
            m_fallback_row_batches().inc();
        }
        if !steps.is_empty() {
            scan_m.record_batch(out.len() as u64);
            apply_fused(&steps, out)?;
        }
        Ok(())
    };
    Box::new(MorselStream::new(Box::new(work), total, ctx, wave_m))
}

// ---- index leaves ----------------------------------------------------------

struct IndexLookupStream<'a> {
    t: &'a Table,
    table_name: &'a str,
    columns: &'a [usize],
    keys: &'a [Value],
    residual: &'a [Expr],
    next_key: usize,
    batch: usize,
    metrics: Arc<OpMetrics>,
}

impl RowStream for IndexLookupStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        let mut out = Vec::new();
        while self.next_key < self.keys.len() && out.len() < self.batch {
            let key = &self.keys[self.next_key];
            self.next_key += 1;
            let matches = self.t.index_lookup(self.columns, key).ok_or_else(|| {
                EngineError::Plan(format!(
                    "no index on {:?} of '{}'",
                    self.columns, self.table_name
                ))
            })?;
            self.metrics.add_rows_in(matches.len() as u64);
            'rows: for (_, row) in matches {
                for f in self.residual {
                    if !f.eval_predicate(row)? {
                        continue 'rows;
                    }
                }
                out.push(row.clone());
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }
}

struct IndexRangeStream<'a> {
    t: &'a Table,
    rids: Vec<RowId>,
    pos: usize,
    residual: &'a [Expr],
    batch: usize,
    metrics: Arc<OpMetrics>,
}

impl RowStream for IndexRangeStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        let mut out = Vec::new();
        'rids: while self.pos < self.rids.len() && out.len() < self.batch {
            let rid = self.rids[self.pos];
            self.pos += 1;
            let Some(row) = self.t.get(rid) else { continue };
            self.metrics.add_rows_in(1);
            for f in self.residual {
                if !f.eval_predicate(row)? {
                    continue 'rids;
                }
            }
            out.push(row.clone());
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }
}

// ---- simple leaves ---------------------------------------------------------

struct OnceStream {
    rows: Option<Vec<Row>>,
}

impl RowStream for OnceStream {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        Ok(self.rows.take().filter(|r| !r.is_empty()))
    }
}

struct ValuesStream<'a> {
    rows: &'a [Row],
    cursor: usize,
    batch: usize,
}

impl RowStream for ValuesStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.cursor >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch.max(1)).min(self.rows.len());
        let out = self.rows[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(Some(out))
    }
}

// ---- pipelined operators ---------------------------------------------------

struct FilterStream<'a> {
    input: BoxedRowStream<'a>,
    predicate: &'a Expr,
}

impl RowStream for FilterStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else { return Ok(None) };
            let mut out = Vec::with_capacity(batch.len());
            for row in batch {
                if self.predicate.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

struct ProjectStream<'a> {
    input: BoxedRowStream<'a>,
    exprs: &'a [Expr],
}

impl RowStream for ProjectStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        let Some(batch) = self.input.next_batch()? else { return Ok(None) };
        let mut out = Vec::with_capacity(batch.len());
        for row in batch {
            let mut new_row = Vec::with_capacity(self.exprs.len());
            for e in self.exprs {
                new_row.push(e.eval(&row)?);
            }
            out.push(new_row);
        }
        Ok(Some(out))
    }
}

struct UnnestStream<'a> {
    input: BoxedRowStream<'a>,
    column: usize,
    keep_empty: bool,
}

impl RowStream for UnnestStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else { return Ok(None) };
            let mut out = Vec::with_capacity(batch.len());
            for mut row in batch {
                match &row[self.column] {
                    Value::Null => {
                        if self.keep_empty {
                            out.push(row);
                        }
                    }
                    Value::Array(_) => {
                        let Value::Array(vs) =
                            std::mem::replace(&mut row[self.column], Value::Null)
                        else {
                            unreachable!("just matched Array")
                        };
                        if vs.is_empty() {
                            if self.keep_empty {
                                // Column already replaced with NULL.
                                out.push(row);
                            }
                            continue;
                        }
                        let last = vs.len() - 1;
                        let mut it = vs.into_iter();
                        for _ in 0..last {
                            let v = it.next().expect("length checked");
                            let mut new_row = row.clone();
                            new_row[self.column] = v;
                            out.push(new_row);
                        }
                        // Move the original row for the final element: no clone.
                        row[self.column] = it.next().expect("length checked");
                        out.push(row);
                    }
                    other => {
                        return Err(EngineError::Eval(format!(
                            "unnest over non-array value {other}"
                        )))
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

struct LimitStream<'a> {
    input: BoxedRowStream<'a>,
    remaining: usize,
}

impl RowStream for LimitStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.remaining == 0 {
            // Early termination: never pull the child again.
            return Ok(None);
        }
        match self.input.next_batch()? {
            None => {
                self.remaining = 0;
                Ok(None)
            }
            Some(mut batch) => {
                if batch.len() > self.remaining {
                    batch.truncate(self.remaining);
                }
                self.remaining -= batch.len();
                Ok(Some(batch))
            }
        }
    }
}

struct DistinctStream<'a> {
    input: BoxedRowStream<'a>,
    seen: FxHashSet<Row>,
}

impl RowStream for DistinctStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        loop {
            let Some(batch) = self.input.next_batch()? else { return Ok(None) };
            let mut out = Vec::new();
            for row in batch {
                // Clone only first-seen rows; duplicates are dropped without
                // the per-row clone the materializing executor paid.
                if !self.seen.contains(&row) {
                    self.seen.insert(row.clone());
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

struct UnionStream<'a> {
    children: Vec<BoxedRowStream<'a>>,
    idx: usize,
}

impl RowStream for UnionStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        while self.idx < self.children.len() {
            match self.children[self.idx].next_batch()? {
                Some(b) if !b.is_empty() => return Ok(Some(b)),
                Some(_) => continue,
                None => self.idx += 1,
            }
        }
        Ok(None)
    }
}

// ---- hash join -------------------------------------------------------------

/// Minimum probe-chunk size (rows) before the probe side fans out to the
/// pool; smaller batches probe inline to keep small queries cheap.
const PROBE_FANOUT_MIN: usize = 16;

/// Where the join's build (right) side comes from.
enum BuildSource<'a> {
    /// Compiled row stream, drained and hashed row by row.
    Stream(BoxedRowStream<'a>),
    /// Single-key columnar fast path: a bare scan hashed straight off the
    /// table's column vectors — the build rows are selected and gathered
    /// without ever compiling a row stream. `mapping` is the scan's
    /// (possibly pruned) projection; `key_col` is the *table* column the
    /// single join key resolves to.
    Columnar {
        t: &'a Table,
        filters: &'a [Expr],
        mapping: Vec<usize>,
        key_col: usize,
        metrics: Arc<OpMetrics>,
    },
    /// Build already consumed.
    Done,
}

struct JoinStream<'a> {
    left: BoxedRowStream<'a>,
    right: BuildSource<'a>,
    kind: JoinKind,
    left_keys: &'a [Expr],
    right_keys: &'a [Expr],
    right_arity: usize,
    threads: usize,
    metrics: Arc<OpMetrics>,
    /// Count drained build batches toward the fallback counter (columnar
    /// mode is on but this build side could not take the columnar path).
    track_fallback: bool,
    build: Option<JoinBuild>,
}

/// Probe the build-side plan for columnar-build eligibility: a bare
/// `Scan` whose single join key is a column reference with a typed
/// column vector. Returns the build source plus a `Scan` metrics node
/// standing in for the uncompiled right child.
fn columnar_build_source<'a>(
    right: &'a Plan,
    right_keys: &'a [Expr],
    cat: &'a Catalog,
) -> Option<(BuildSource<'a>, Arc<OpMetrics>)> {
    let PlanKind::Scan { table, filters, projection } = &right.kind else { return None };
    let [Expr::Col(k)] = right_keys else { return None };
    let t = cat.table(table).ok()?;
    let mapping: Vec<usize> = match projection {
        Some(p) => p.clone(),
        None => (0..right.fields.len()).collect(),
    };
    let key_col = *mapping.get(*k)?;
    t.column_slice(key_col)?;
    let m = OpMetrics::new(format!("Scan {table}"), vec![]);
    m.mark_columnar();
    Some((BuildSource::Columnar { t, filters, mapping, key_col, metrics: Arc::clone(&m) }, m))
}

/// Build-side hash table keyed either by a bare [`Value`] (single join key
/// — the overwhelmingly common case for FK joins produced by the mapping
/// layer) or by a composed `Vec<Value>` for multi-key joins. The
/// single-key form avoids one heap allocation per build row *and* per
/// probe row.
enum KeyMap {
    Single(FxHashMap<Value, Vec<usize>>),
    Multi(FxHashMap<Vec<Value>, Vec<usize>>),
}

impl KeyMap {
    fn for_keys(keys: &[Expr]) -> KeyMap {
        if keys.len() == 1 {
            KeyMap::Single(FxHashMap::default())
        } else {
            KeyMap::Multi(FxHashMap::default())
        }
    }

    /// Merge `part` into `self` (both sides must come from the same key
    /// list, so the variants always agree).
    fn merge(&mut self, part: KeyMap) {
        match (self, part) {
            (KeyMap::Single(m), KeyMap::Single(p)) => {
                for (k, mut v) in p {
                    m.entry(k).or_default().append(&mut v);
                }
            }
            (KeyMap::Multi(m), KeyMap::Multi(p)) => {
                for (k, mut v) in p {
                    m.entry(k).or_default().append(&mut v);
                }
            }
            _ => unreachable!("partial key maps built from one key list"),
        }
    }
}

struct JoinBuild {
    rows: Vec<Row>,
    table: KeyMap,
}

impl JoinBuild {
    /// Evaluate the probe keys over `row` and look up the matching build
    /// rows. NULL keys never join.
    fn probe(&self, keys: &[Expr], row: &[Value]) -> EngineResult<Option<&Vec<usize>>> {
        match (&self.table, keys) {
            (KeyMap::Single(m), [e]) => {
                let v = e.eval(row)?;
                Ok(if v.is_null() { None } else { m.get(&v) })
            }
            (KeyMap::Multi(m), keys) => {
                let mut key = Vec::with_capacity(keys.len());
                for e in keys {
                    let v = e.eval(row)?;
                    if v.is_null() {
                        return Ok(None);
                    }
                    key.push(v);
                }
                Ok(m.get(&key))
            }
            (KeyMap::Single(_), _) => {
                Err(EngineError::Plan("join key arity mismatch".into()))
            }
        }
    }
}

impl JoinStream<'_> {
    /// Drain the build (right) side and hash it. With `threads > 1` the key
    /// evaluation + insertion runs on pool workers over contiguous chunks
    /// whose partial tables are merged in chunk order — per-key row indexes
    /// stay ascending, so probe output order matches sequential execution.
    fn build_side(&mut self) -> EngineResult<()> {
        if self.build.is_some() {
            return Ok(());
        }
        match std::mem::replace(&mut self.right, BuildSource::Done) {
            BuildSource::Done => unreachable!("build side taken once"),
            BuildSource::Stream(mut right) => {
                let mut rows: Vec<Row> = Vec::new();
                while let Some(b) = right.next_batch()? {
                    if self.track_fallback {
                        m_fallback_row_batches().inc();
                    }
                    rows.extend(b);
                }
                let table = if self.threads > 1 && rows.len() >= 2 {
                    parallel_hash_build(&rows, self.right_keys, self.threads, &self.metrics)?
                } else {
                    hash_build_range(&rows, self.right_keys, 0, rows.len())?
                };
                self.build = Some(JoinBuild { rows, table });
            }
            BuildSource::Columnar { t, filters, mapping, key_col, metrics } => {
                // Select build rows in slot order — exactly the order the
                // row path would have drained them — then hash the key
                // column without materializing it into the rows twice.
                let identity: Vec<usize> = (0..t.schema().arity()).collect();
                let (preds, residual) = vplan::split_filters(filters, t, &identity);
                let mut sel: Vec<usize> = Vec::new();
                vector::live_selection(t.live_slots(), 0..t.slot_count(), &mut sel);
                metrics.add_rows_in(sel.len() as u64);
                for p in &preds {
                    vector::apply_pred(p, t, &mut sel);
                }
                apply_residual(t, residual, &mut sel)?;
                let mut rows: Vec<Row> = Vec::with_capacity(sel.len());
                vector::gather_rows(t, &mapping, &sel, &mut rows);
                let mut table: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
                for (i, &s) in sel.iter().enumerate() {
                    // NULL keys never join: key_at returns None for them,
                    // matching the row path's skip.
                    if let Some(v) = vector::key_at(t, key_col, s) {
                        table.entry(v).or_default().push(i);
                    }
                }
                metrics.record_batch(rows.len() as u64);
                m_columnar_cells().add((rows.len() * mapping.len()) as u64);
                m_columnar_batches().inc();
                self.build = Some(JoinBuild { rows, table: KeyMap::Single(table) });
            }
        }
        Ok(())
    }
}

fn hash_build_range(rows: &[Row], keys: &[Expr], lo: usize, hi: usize) -> EngineResult<KeyMap> {
    if let [e] = keys {
        // Single-key fast path: no per-row Vec allocation.
        let mut table: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
        for (i, row) in rows[lo..hi].iter().enumerate() {
            let v = e.eval(row)?;
            if v.is_null() {
                continue; // NULL keys never join
            }
            table.entry(v).or_default().push(lo + i);
        }
        return Ok(KeyMap::Single(table));
    }
    let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    'build: for (i, row) in rows[lo..hi].iter().enumerate() {
        let mut key = Vec::with_capacity(keys.len());
        for e in keys {
            let v = e.eval(row)?;
            if v.is_null() {
                continue 'build; // NULL keys never join
            }
            key.push(v);
        }
        table.entry(key).or_default().push(lo + i);
    }
    Ok(KeyMap::Multi(table))
}

fn parallel_hash_build(
    rows: &[Row],
    keys: &[Expr],
    threads: usize,
    metrics: &OpMetrics,
) -> EngineResult<KeyMap> {
    let chunk = rows.len().div_ceil(threads).max(1);
    let mut tasks = Vec::with_capacity(threads);
    let mut lo = 0;
    while lo < rows.len() {
        let hi = (lo + chunk).min(rows.len());
        tasks.push(move || hash_build_range(rows, keys, lo, hi));
        lo = hi;
    }
    let (results, workers) = WorkerPool::global().run_scoped(tasks);
    metrics.record_wave(workers as u64);
    let mut merged = KeyMap::for_keys(keys);
    for part in results {
        let part = part
            .map_err(|m| EngineError::Eval(format!("join build worker panicked: {m}")))??;
        merged.merge(part);
    }
    Ok(merged)
}

/// Probe one chunk of owned left rows against the shared build table.
/// Pure function of the chunk's row order, so chunk outputs concatenated
/// in chunk order are identical to a sequential probe of the whole batch.
fn probe_batch(
    build: &JoinBuild,
    kind: JoinKind,
    left_keys: &[Expr],
    right_arity: usize,
    batch: Vec<Row>,
) -> EngineResult<Vec<Row>> {
    let mut out = Vec::new();
    for lrow in batch {
        let matches = build.probe(left_keys, &lrow)?;
        match kind {
            JoinKind::Inner => {
                if let Some(idxs) = matches {
                    for &i in idxs {
                        let mut row = Vec::with_capacity(lrow.len() + right_arity);
                        row.extend_from_slice(&lrow);
                        row.extend_from_slice(&build.rows[i]);
                        out.push(row);
                    }
                }
            }
            JoinKind::Left => match matches {
                Some(idxs) if !idxs.is_empty() => {
                    for &i in idxs {
                        let mut row = Vec::with_capacity(lrow.len() + right_arity);
                        row.extend_from_slice(&lrow);
                        row.extend_from_slice(&build.rows[i]);
                        out.push(row);
                    }
                }
                _ => {
                    let mut row = Vec::with_capacity(lrow.len() + right_arity);
                    row.extend_from_slice(&lrow);
                    row.extend(std::iter::repeat_n(Value::Null, right_arity));
                    out.push(row);
                }
            },
            JoinKind::Semi => {
                if matches.is_some_and(|m| !m.is_empty()) {
                    // Left rows are owned: emit by move, no clone.
                    out.push(lrow);
                }
            }
        }
    }
    Ok(out)
}

/// Split owned `rows` into up to `parts` contiguous chunks of at least
/// `min_chunk` rows, preserving order.
fn split_owned(mut rows: Vec<Row>, parts: usize, min_chunk: usize) -> Vec<Vec<Row>> {
    let per = rows.len().div_ceil(parts.max(1)).max(min_chunk).max(1);
    let mut out = Vec::with_capacity(parts);
    while rows.len() > per {
        let tail = rows.split_off(per);
        out.push(std::mem::replace(&mut rows, tail));
    }
    out.push(rows);
    out
}

impl RowStream for JoinStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        self.build_side()?;
        loop {
            let Some(batch) = self.left.next_batch()? else { return Ok(None) };
            let build = self.build.as_ref().expect("built above");
            let out = if self.threads > 1 && batch.len() >= 2 * PROBE_FANOUT_MIN {
                // Morsel-partition the probe batch across the pool; chunk
                // outputs concatenate in chunk order (deterministic).
                let parts = split_owned(batch, self.threads, PROBE_FANOUT_MIN);
                let (kind, keys, arity) = (self.kind, self.left_keys, self.right_arity);
                let tasks: Vec<_> = parts
                    .into_iter()
                    .map(|chunk| move || probe_batch(build, kind, keys, arity, chunk))
                    .collect();
                let (results, workers) = WorkerPool::global().run_scoped(tasks);
                self.metrics.record_wave(workers as u64);
                let mut out = Vec::new();
                for r in results {
                    out.extend(r.map_err(|m| {
                        EngineError::Eval(format!("join probe worker panicked: {m}"))
                    })??);
                }
                out
            } else {
                probe_batch(build, self.kind, self.left_keys, self.right_arity, batch)?
            };
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
    }
}

// ---- pipeline breakers -----------------------------------------------------

/// Fixed partial-aggregation chunk size (rows). Chunk boundaries are a
/// pure function of the global input row index — independent of batch
/// size, morsel size, and thread count — so the partial-merge tree (and
/// with it any float rounding) is identical across every configuration,
/// including fully sequential execution.
const AGG_CHUNK: usize = 1024;

struct AggregateStream<'a> {
    input: BoxedRowStream<'a>,
    group: &'a [Expr],
    aggs: &'a [AggCall],
    batch: usize,
    threads: usize,
    metrics: Arc<OpMetrics>,
    out: Option<VecDeque<Vec<Row>>>,
}

/// Partial (or global) aggregation state: one hash table of group keys to
/// accumulator rows, preserving first-seen group order. `Single` is the
/// single-key fast path (keys directly on `Value`, no per-row `Vec`
/// allocation).
enum GroupedAcc {
    /// Global aggregate (no GROUP BY): exactly one accumulator row.
    Global(Vec<Accumulator>),
    Single { map: FxHashMap<Value, usize>, states: Vec<(Value, Vec<Accumulator>)> },
    Multi { map: FxHashMap<Vec<Value>, usize>, states: Vec<(Vec<Value>, Vec<Accumulator>)> },
}

impl GroupedAcc {
    fn new(group: &[Expr], aggs: &[AggCall]) -> GroupedAcc {
        match group.len() {
            0 => GroupedAcc::Global(aggs.iter().map(|a| a.accumulator()).collect()),
            1 => GroupedAcc::Single { map: FxHashMap::default(), states: Vec::new() },
            _ => GroupedAcc::Multi { map: FxHashMap::default(), states: Vec::new() },
        }
    }

    fn update(&mut self, group: &[Expr], aggs: &[AggCall], row: &Row) -> EngineResult<()> {
        match self {
            GroupedAcc::Global(accs) => {
                for (acc, call) in accs.iter_mut().zip(aggs) {
                    acc.update(call.arg.eval(row)?)?;
                }
            }
            GroupedAcc::Single { map, states } => {
                let [g] = group else { unreachable!("Single requires one group key") };
                let key = g.eval(row)?;
                let slot = match map.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = states.len();
                        map.insert(key.clone(), s);
                        states.push((key, aggs.iter().map(|a| a.accumulator()).collect()));
                        s
                    }
                };
                let (_, accs) = &mut states[slot];
                for (acc, call) in accs.iter_mut().zip(aggs) {
                    acc.update(call.arg.eval(row)?)?;
                }
            }
            GroupedAcc::Multi { map, states } => {
                let mut key = Vec::with_capacity(group.len());
                for e in group {
                    key.push(e.eval(row)?);
                }
                let slot = match map.get(&key) {
                    Some(&s) => s,
                    None => {
                        let s = states.len();
                        map.insert(key.clone(), s);
                        states.push((key, aggs.iter().map(|a| a.accumulator()).collect()));
                        s
                    }
                };
                let (_, accs) = &mut states[slot];
                for (acc, call) in accs.iter_mut().zip(aggs) {
                    acc.update(call.arg.eval(row)?)?;
                }
            }
        }
        Ok(())
    }

    /// Merge a later partial into `self`. Groups first seen in `other`
    /// append in `other`'s order, so absorbing partials in chunk order
    /// reproduces the global first-seen group order (and `ARRAY_AGG`
    /// element order) of sequential execution exactly.
    fn absorb(&mut self, other: GroupedAcc) -> EngineResult<()> {
        match (self, other) {
            (GroupedAcc::Global(a), GroupedAcc::Global(b)) => {
                for (acc, part) in a.iter_mut().zip(b) {
                    acc.merge(part)?;
                }
            }
            (GroupedAcc::Single { map, states }, GroupedAcc::Single { states: ostates, .. }) => {
                for (key, accs) in ostates {
                    match map.get(&key) {
                        Some(&s) => {
                            for (acc, part) in states[s].1.iter_mut().zip(accs) {
                                acc.merge(part)?;
                            }
                        }
                        None => {
                            map.insert(key.clone(), states.len());
                            states.push((key, accs));
                        }
                    }
                }
            }
            (GroupedAcc::Multi { map, states }, GroupedAcc::Multi { states: ostates, .. }) => {
                for (key, accs) in ostates {
                    match map.get(&key) {
                        Some(&s) => {
                            for (acc, part) in states[s].1.iter_mut().zip(accs) {
                                acc.merge(part)?;
                            }
                        }
                        None => {
                            map.insert(key.clone(), states.len());
                            states.push((key, accs));
                        }
                    }
                }
            }
            _ => return Err(EngineError::Eval("aggregate partial shape mismatch".into())),
        }
        Ok(())
    }

    /// Finalize into output rows (first-seen group order).
    fn finish(self) -> Vec<Row> {
        match self {
            GroupedAcc::Global(accs) => {
                vec![accs.into_iter().map(Accumulator::finish).collect()]
            }
            GroupedAcc::Single { states, .. } => {
                let mut rows = Vec::with_capacity(states.len());
                for (key, accs) in states {
                    let mut row = Vec::with_capacity(1 + accs.len());
                    row.push(key);
                    row.extend(accs.into_iter().map(Accumulator::finish));
                    rows.push(row);
                }
                rows
            }
            GroupedAcc::Multi { states, .. } => {
                let mut rows = Vec::with_capacity(states.len());
                for (key, accs) in states {
                    let mut row = key;
                    row.extend(accs.into_iter().map(Accumulator::finish));
                    rows.push(row);
                }
                rows
            }
        }
    }
}

impl AggregateStream<'_> {
    /// Consume the input batch-by-batch, folding fixed-size row chunks
    /// into partial hash tables that merge into the global state in chunk
    /// order. With `threads > 1`, waves of complete chunks aggregate in
    /// parallel on the pool; the chunk boundaries and merge order — and
    /// therefore the result, bit for bit — are the same either way.
    fn run(&mut self) -> EngineResult<VecDeque<Vec<Row>>> {
        let mut global = GroupedAcc::new(self.group, self.aggs);
        let mut pending: Vec<Row> = Vec::new();
        loop {
            let batch = self.input.next_batch()?;
            let done = batch.is_none();
            if let Some(b) = batch {
                pending.extend(b);
            }
            // Fold once `threads` complete chunks are buffered (one wave's
            // worth), or everything that remains at end of input.
            let ready = if done {
                pending.len()
            } else {
                let full = pending.len() / AGG_CHUNK;
                if full < self.threads { 0 } else { full * AGG_CHUNK }
            };
            if ready > 0 {
                let rest = pending.split_off(ready);
                let take = std::mem::replace(&mut pending, rest);
                self.fold_chunks(&mut global, &take)?;
            }
            if done {
                break;
            }
        }
        let rows = global.finish();
        let mut out = VecDeque::new();
        push_chunked(&mut out, rows, self.batch);
        Ok(out)
    }

    /// Aggregate `rows` in [`AGG_CHUNK`]-sized chunks and absorb the
    /// partials into `global` in chunk order.
    fn fold_chunks(&self, global: &mut GroupedAcc, rows: &[Row]) -> EngineResult<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let (group, aggs) = (self.group, self.aggs);
        let build = |chunk: &[Row]| -> EngineResult<GroupedAcc> {
            let mut partial = GroupedAcc::new(group, aggs);
            for row in chunk {
                partial.update(group, aggs, row)?;
            }
            Ok(partial)
        };
        let chunks: Vec<&[Row]> = rows.chunks(AGG_CHUNK).collect();
        let partials: Vec<GroupedAcc> = if self.threads > 1 && chunks.len() > 1 {
            let build = &build;
            let tasks: Vec<_> = chunks
                .iter()
                .map(|c| {
                    let c: &[Row] = c;
                    move || build(c)
                })
                .collect();
            let (results, workers) = WorkerPool::global().run_scoped(tasks);
            self.metrics.record_wave(workers as u64);
            let mut parts = Vec::with_capacity(results.len());
            for r in results {
                parts.push(r.map_err(|m| {
                    EngineError::Eval(format!("aggregate worker panicked: {m}"))
                })??);
            }
            parts
        } else {
            let mut parts = Vec::with_capacity(chunks.len());
            for c in chunks {
                parts.push(build(c)?);
            }
            parts
        };
        for p in partials {
            global.absorb(p)?;
        }
        Ok(())
    }
}

impl RowStream for AggregateStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.out.is_none() {
            let out = self.run()?;
            self.out = Some(out);
        }
        Ok(self.out.as_mut().expect("just filled").pop_front())
    }
}

/// Columnar aggregate over a bare scan: when an `Aggregate` sits directly
/// on a `Scan` (at most one group key — the single-key fast path; larger
/// group lists fall back to the row operator) and columnar execution is
/// on, skip the row stream entirely. The scan's selection + filters run
/// once over the column vectors, and the aggregate folds
/// [`AGG_CHUNK`]-sized chunks of the selection, reading only the columns
/// the group/agg expressions actually touch — unreferenced columns are
/// never materialized at all. Chunk boundaries are the same pure function
/// of the post-filter row index as the row path's, and partials absorb in
/// chunk order, so results (floats included) are bit-identical.
fn columnar_agg_stream<'a>(
    input: &'a Plan,
    group: &'a [Expr],
    aggs: &'a [AggCall],
    cat: &'a Catalog,
    ctx: &ExecContext,
) -> EngineResult<Option<(BoxedRowStream<'a>, Arc<OpMetrics>)>> {
    if !ctx.columnar || group.len() > 1 {
        return Ok(None);
    }
    let PlanKind::Scan { table, filters, projection } = &input.kind else { return Ok(None) };
    let t = cat.table(table)?;
    let mapping: Vec<usize> = match projection {
        Some(p) => p.clone(),
        None => (0..input.fields.len()).collect(),
    };
    let scan_m = OpMetrics::new(format!("Scan {table}"), vec![]);
    scan_m.mark_columnar();
    let m = OpMetrics::new("Aggregate", vec![Arc::clone(&scan_m)]);
    m.mark_columnar();
    let stream: BoxedRowStream<'a> = Box::new(ColumnarAggStream {
        t,
        filters,
        mapping,
        group,
        aggs,
        batch: ctx.batch_size,
        threads: ctx.threads.max(1),
        metrics: Arc::clone(&m),
        scan_m,
        cancel: ctx.cancel_flag(),
        out: None,
    });
    Ok(Some((stream, m)))
}

struct ColumnarAggStream<'a> {
    t: &'a Table,
    filters: &'a [Expr],
    /// Scan output column -> table column (the scan's pruned projection).
    mapping: Vec<usize>,
    group: &'a [Expr],
    aggs: &'a [AggCall],
    batch: usize,
    threads: usize,
    metrics: Arc<OpMetrics>,
    scan_m: Arc<OpMetrics>,
    cancel: Arc<AtomicBool>,
    out: Option<VecDeque<Vec<Row>>>,
}

impl ColumnarAggStream<'_> {
    fn run(&self) -> EngineResult<VecDeque<Vec<Row>>> {
        let t = self.t;
        let identity: Vec<usize> = (0..t.schema().arity()).collect();
        let (preds, residual) = vplan::split_filters(self.filters, t, &identity);
        let mut sel: Vec<usize> = Vec::new();
        vector::live_selection(t.live_slots(), 0..t.slot_count(), &mut sel);
        self.scan_m.add_rows_in(sel.len() as u64);
        for p in &preds {
            vector::apply_pred(p, t, &mut sel);
        }
        apply_residual(t, residual, &mut sel)?;
        self.scan_m.record_batch(sel.len() as u64);
        // Columns the group/agg expressions actually read, in the scan's
        // output space — everything else is never materialized.
        let mut needed: Vec<usize> = self
            .group
            .iter()
            .chain(self.aggs.iter().map(|a| &a.arg))
            .flat_map(|e| e.columns())
            .collect();
        needed.sort_unstable();
        needed.dedup();
        let readers: Vec<(usize, Option<ColumnSlice<'_>>, usize)> = needed
            .iter()
            .map(|&oc| (oc, t.column_slice(self.mapping[oc]), self.mapping[oc]))
            .collect();
        let (group, aggs) = (self.group, self.aggs);
        let arity = self.mapping.len();
        let build = |chunk: &[usize]| -> EngineResult<GroupedAcc> {
            let mut partial = GroupedAcc::new(group, aggs);
            // One reusable scratch row per chunk; only the referenced
            // cells are ever written (the accumulators read owned copies,
            // so carrying stale cells between rows is impossible for the
            // referenced set, and unreferenced cells are never read).
            let mut scratch: Row = vec![Value::Null; arity];
            for &s in chunk {
                for (oc, slice, tc) in &readers {
                    scratch[*oc] = match slice {
                        Some(sl) => sl.value_at(s),
                        None => t.get(RowId(s as u64)).expect("selected slot is live")[*tc].clone(),
                    };
                }
                partial.update(group, aggs, &scratch)?;
            }
            Ok(partial)
        };
        let mut global = GroupedAcc::new(group, aggs);
        let chunks: Vec<&[usize]> = sel.chunks(AGG_CHUNK).collect();
        if self.threads > 1 && chunks.len() > 1 {
            let build = &build;
            let tasks: Vec<_> = chunks
                .iter()
                .map(|c| {
                    let c: &[usize] = c;
                    move || build(c)
                })
                .collect();
            let (results, workers) = WorkerPool::global().run_scoped(tasks);
            self.metrics.record_wave(workers as u64);
            for r in results {
                let part = r
                    .map_err(|m| EngineError::Eval(format!("aggregate worker panicked: {m}")))??;
                global.absorb(part)?;
            }
        } else {
            for c in chunks {
                if self.cancel.load(Ordering::Relaxed) {
                    return Err(EngineError::Cancelled);
                }
                global.absorb(build(c)?)?;
            }
        }
        m_columnar_cells().add((sel.len() * needed.len()) as u64);
        m_columnar_batches().inc();
        let rows = global.finish();
        let mut out = VecDeque::new();
        push_chunked(&mut out, rows, self.batch);
        Ok(out)
    }
}

impl RowStream for ColumnarAggStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.out.is_none() {
            let out = self.run()?;
            self.out = Some(out);
        }
        Ok(self.out.as_mut().expect("just filled").pop_front())
    }
}

struct SortStream<'a> {
    input: BoxedRowStream<'a>,
    keys: &'a [SortKey],
    batch: usize,
    out: Option<VecDeque<Vec<Row>>>,
}

impl SortStream<'_> {
    fn run(&mut self) -> EngineResult<VecDeque<Vec<Row>>> {
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
        while let Some(batch) = self.input.next_batch()? {
            for row in batch {
                let mut k = Vec::with_capacity(self.keys.len());
                for sk in self.keys {
                    k.push(sk.expr.eval(&row)?);
                }
                keyed.push((k, row));
            }
        }
        let keys = self.keys;
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, sk) in keys.iter().enumerate() {
                let ord = a[i].cmp(&b[i]);
                let ord = if sk.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let rows: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();
        let mut out = VecDeque::new();
        push_chunked(&mut out, rows, self.batch);
        Ok(out)
    }
}

impl RowStream for SortStream<'_> {
    fn next_batch(&mut self) -> EngineResult<Option<Vec<Row>>> {
        if self.out.is_none() {
            let out = self.run()?;
            self.out = Some(out);
        }
        Ok(self.out.as_mut().expect("just filled").pop_front())
    }
}
