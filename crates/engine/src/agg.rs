//! Aggregate functions and accumulators.
//!
//! `ARRAY_AGG` over a `struct_pack(...)` expression is how ERQL's `NEST(...)`
//! hierarchical-output clause is executed (the paper borrows DataFusion's
//! syntax for constructing nested outputs in the SELECT clause and argues it
//! "should be supported natively so that the queries can be optimized
//! properly").

use crate::error::{EngineError, EngineResult};
use crate::expr::Expr;
use erbium_storage::Value;
use rustc_hash::FxHashSet;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows, ignores the argument.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    /// Collect non-NULL values into an array (insertion order).
    ArrayAgg,
}

/// One aggregate call: the function plus its argument expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// Argument; ignored by `CountStar`.
    pub arg: Expr,
}

impl AggCall {
    pub fn new(func: AggFunc, arg: Expr) -> AggCall {
        AggCall { func, arg }
    }

    pub fn count_star() -> AggCall {
        AggCall { func: AggFunc::CountStar, arg: Expr::Lit(Value::Int(1)) }
    }

    pub fn accumulator(&self) -> Accumulator {
        Accumulator::new(self.func)
    }
}

/// Mutable aggregation state for one group and one aggregate call.
#[derive(Debug, Clone)]
pub enum Accumulator {
    Count(u64),
    CountDistinct(FxHashSet<Value>),
    Sum { sum: f64, any: bool, all_int: bool },
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
    ArrayAgg(Vec<Value>),
    CountStar(u64),
}

impl Accumulator {
    pub fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::CountStar => Accumulator::CountStar(0),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::CountDistinct => Accumulator::CountDistinct(FxHashSet::default()),
            AggFunc::Sum => Accumulator::Sum { sum: 0.0, any: false, all_int: true },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::ArrayAgg => Accumulator::ArrayAgg(Vec::new()),
        }
    }

    /// Fold one input value into the state.
    pub fn update(&mut self, v: Value) -> EngineResult<()> {
        match self {
            Accumulator::CountStar(n) => *n += 1,
            Accumulator::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::CountDistinct(set) => {
                if !v.is_null() {
                    set.insert(v);
                }
            }
            Accumulator::Sum { sum, any, all_int } => {
                if !v.is_null() {
                    let x = v.as_float().ok_or_else(|| {
                        EngineError::Eval(format!("SUM over non-numeric value {v}"))
                    })?;
                    *sum += x;
                    *any = true;
                    if !matches!(v, Value::Int(_)) {
                        *all_int = false;
                    }
                }
            }
            Accumulator::Avg { sum, n } => {
                if !v.is_null() {
                    let x = v.as_float().ok_or_else(|| {
                        EngineError::Eval(format!("AVG over non-numeric value {v}"))
                    })?;
                    *sum += x;
                    *n += 1;
                }
            }
            Accumulator::Min(m) => {
                if !v.is_null() && m.as_ref().map(|m| v < *m).unwrap_or(true) {
                    *m = Some(v);
                }
            }
            Accumulator::Max(m) => {
                if !v.is_null() && m.as_ref().map(|m| v > *m).unwrap_or(true) {
                    *m = Some(v);
                }
            }
            Accumulator::ArrayAgg(vs) => {
                if !v.is_null() {
                    vs.push(v);
                }
            }
        }
        Ok(())
    }

    /// Absorb a partial accumulator of the same kind (parallel partial
    /// aggregation). The merge is order-sensitive for `ArrayAgg` and for
    /// float `Sum`/`Avg`, so callers must absorb partials in a fixed,
    /// config-independent order (the executor merges per-chunk partials in
    /// ascending chunk order) to keep results bit-identical to the
    /// sequential fold.
    pub fn merge(&mut self, other: Accumulator) -> EngineResult<()> {
        match (self, other) {
            (Accumulator::CountStar(n), Accumulator::CountStar(m)) => *n += m,
            (Accumulator::Count(n), Accumulator::Count(m)) => *n += m,
            (Accumulator::CountDistinct(set), Accumulator::CountDistinct(other)) => {
                set.extend(other);
            }
            (
                Accumulator::Sum { sum, any, all_int },
                Accumulator::Sum { sum: s2, any: a2, all_int: i2 },
            ) => {
                *sum += s2;
                *any |= a2;
                *all_int &= i2;
            }
            (Accumulator::Avg { sum, n }, Accumulator::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Accumulator::Min(m), Accumulator::Min(o)) => {
                if let Some(v) = o {
                    if m.as_ref().map(|m| v < *m).unwrap_or(true) {
                        *m = Some(v);
                    }
                }
            }
            (Accumulator::Max(m), Accumulator::Max(o)) => {
                if let Some(v) = o {
                    if m.as_ref().map(|m| v > *m).unwrap_or(true) {
                        *m = Some(v);
                    }
                }
            }
            (Accumulator::ArrayAgg(vs), Accumulator::ArrayAgg(o)) => vs.extend(o),
            _ => {
                return Err(EngineError::Eval(
                    "cannot merge accumulators of different kinds".into(),
                ))
            }
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::CountStar(n) | Accumulator::Count(n) => Value::Int(n as i64),
            Accumulator::CountDistinct(set) => Value::Int(set.len() as i64),
            Accumulator::Sum { sum, any, all_int } => {
                if !any {
                    Value::Null
                } else if all_int {
                    Value::Int(sum as i64)
                } else {
                    Value::Float(sum)
                }
            }
            Accumulator::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Accumulator::Min(m) | Accumulator::Max(m) => m.unwrap_or(Value::Null),
            Accumulator::ArrayAgg(vs) => Value::Array(vs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, values: Vec<Value>) -> Value {
        let mut acc = Accumulator::new(func);
        for v in values {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_ignores_nulls_count_star_does_not() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(AggFunc::Count, vals.clone()), Value::Int(2));
        assert_eq!(run(AggFunc::CountStar, vals), Value::Int(3));
    }

    #[test]
    fn sum_int_preserves_intness() {
        assert_eq!(run(AggFunc::Sum, vec![Value::Int(1), Value::Int(2)]), Value::Int(3));
        assert_eq!(
            run(AggFunc::Sum, vec![Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
        assert_eq!(run(AggFunc::Sum, vec![Value::Null]), Value::Null);
    }

    #[test]
    fn avg_min_max() {
        let vals = vec![Value::Int(2), Value::Int(4), Value::Null];
        assert_eq!(run(AggFunc::Avg, vals.clone()), Value::Float(3.0));
        assert_eq!(run(AggFunc::Min, vals.clone()), Value::Int(2));
        assert_eq!(run(AggFunc::Max, vals), Value::Int(4));
        assert_eq!(run(AggFunc::Avg, vec![]), Value::Null);
    }

    #[test]
    fn count_distinct() {
        let vals = vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Null];
        assert_eq!(run(AggFunc::CountDistinct, vals), Value::Int(2));
    }

    #[test]
    fn array_agg_preserves_order_skips_nulls() {
        let vals = vec![Value::Int(3), Value::Null, Value::Int(1)];
        assert_eq!(run(AggFunc::ArrayAgg, vals), Value::Array(vec![Value::Int(3), Value::Int(1)]));
    }

    #[test]
    fn sum_over_text_is_error() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(acc.update(Value::str("x")).is_err());
    }

    /// Splitting any input sequence at a chunk boundary and merging the two
    /// partials in order must reproduce the sequential fold exactly —
    /// including Int-ness of SUM and ARRAY_AGG element order.
    #[test]
    fn merge_equals_sequential_fold() {
        let funcs = [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::CountDistinct,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::ArrayAgg,
        ];
        let vals = vec![
            Value::Int(3),
            Value::Null,
            Value::Float(0.25),
            Value::Int(3),
            Value::Float(-1.5),
            Value::Int(7),
        ];
        for func in funcs {
            for split in 0..=vals.len() {
                let sequential = run(func, vals.clone());
                let mut left = Accumulator::new(func);
                for v in &vals[..split] {
                    left.update(v.clone()).unwrap();
                }
                let mut right = Accumulator::new(func);
                for v in &vals[split..] {
                    right.update(v.clone()).unwrap();
                }
                left.merge(right).unwrap();
                assert_eq!(left.finish(), sequential, "{func:?} split at {split}");
            }
        }
    }

    #[test]
    fn merge_kind_mismatch_is_error() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(acc.merge(Accumulator::new(AggFunc::Avg)).is_err());
    }
}
