//! Scalar expressions and their evaluation.
//!
//! Expressions follow SQL three-valued logic: comparisons and arithmetic
//! over NULL yield NULL; `AND`/`OR` use Kleene semantics; a filter keeps a
//! row only when its predicate evaluates to `TRUE` (not NULL).

use crate::error::{EngineError, EngineResult};
use erbium_storage::Value;
use rustc_hash::FxHashSet;
use std::fmt;
use std::sync::Arc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `array_contains(arr, elem)` → bool.
    ArrayContains,
    /// `array_intersect(a, b)` → array of elements present in both
    /// (order of first argument, deduplicated).
    ArrayIntersect,
    /// `array_len(arr)` → int.
    ArrayLen,
    /// `struct_pack(v1, ..., vn)` → struct. Used to lower `NEST(...)`.
    StructPack,
    /// `coalesce(a, b, ...)` → first non-NULL argument.
    Coalesce,
    /// `concat(a, b, ...)` → text.
    Concat,
    /// `abs(x)`.
    Abs,
    /// `lower(s)` / `upper(s)`.
    Lower,
    Upper,
}

/// A scalar expression tree evaluated against a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to an input column by position.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Positional `?` placeholder of a prepared template. Substituted with
    /// a literal by [`crate::plan::bind_params`] before execution; a
    /// `Param` reaching [`Expr::eval`] is an unbound-parameter error.
    Param(u16),
    Binary { op: BinOp, left: Box<Expr>, right: Box<Expr> },
    Unary { op: UnOp, expr: Box<Expr> },
    Func { func: ScalarFunc, args: Vec<Expr> },
    /// Struct field access by position (`expr.field`).
    Field { expr: Box<Expr>, index: usize },
    /// Set membership against a prebuilt hash set — the executor-friendly
    /// form of a large `IN (...)` list (e.g. the paper's 10,000-id fetch).
    InSet { expr: Box<Expr>, set: Arc<FxHashSet<Value>> },
    /// `expr IS NULL` (never NULL itself).
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Or, left, right)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Unary { op: UnOp::Not, expr: Box::new(e) }
    }

    pub fn func(func: ScalarFunc, args: Vec<Expr>) -> Expr {
        Expr::Func { func, args }
    }

    pub fn field(expr: Expr, index: usize) -> Expr {
        Expr::Field { expr: Box::new(expr), index }
    }

    pub fn in_set(expr: Expr, values: impl IntoIterator<Item = Value>) -> Expr {
        Expr::InSet { expr: Box::new(expr), set: Arc::new(values.into_iter().collect()) }
    }

    /// Conjunction of several predicates (`TRUE` when empty).
    pub fn conjunction(preds: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = preds.into_iter();
        match it.next() {
            None => Expr::Lit(Value::Bool(true)),
            Some(first) => it.fold(first, Expr::and),
        }
    }

    /// Split an expression into its top-level AND conjuncts.
    pub fn split_conjunction(self) -> Vec<Expr> {
        match self {
            Expr::Binary { op: BinOp::And, left, right } => {
                let mut out = left.split_conjunction();
                out.extend(right.split_conjunction());
                out
            }
            e => vec![e],
        }
    }

    /// All column indices referenced by this expression.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. }
            | Expr::Field { expr, .. }
            | Expr::InSet { expr, .. }
            | Expr::IsNull(expr)
            | Expr::IsNotNull(expr) => expr.collect_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Rewrite every column reference through `f` (e.g. to shift indices
    /// across a join or undo a projection).
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(f(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Param(n) => Expr::Param(*n),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            Expr::Unary { op, expr } => {
                Expr::Unary { op: *op, expr: Box::new(expr.map_columns(f)) }
            }
            Expr::Func { func, args } => {
                Expr::Func { func: *func, args: args.iter().map(|a| a.map_columns(f)).collect() }
            }
            Expr::Field { expr, index } => {
                Expr::Field { expr: Box::new(expr.map_columns(f)), index: *index }
            }
            Expr::InSet { expr, set } => {
                Expr::InSet { expr: Box::new(expr.map_columns(f)), set: Arc::clone(set) }
            }
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.map_columns(f))),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(e.map_columns(f))),
        }
    }

    /// Is this expression free of column references (a constant)?
    pub fn is_constant(&self) -> bool {
        self.columns().is_empty()
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> EngineResult<Value> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| EngineError::Plan(format!("column #{i} out of range ({})", row.len()))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Param(n) => Err(EngineError::Plan(format!(
                "unbound parameter ?{n} — bind_params must run before execution"
            ))),
            Expr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                // Short-circuit Kleene AND/OR.
                match op {
                    BinOp::And => {
                        if l == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval(row)?;
                        return eval_and(l, r);
                    }
                    BinOp::Or => {
                        if l == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval(row)?;
                        return eval_or(l, r);
                    }
                    _ => {}
                }
                let r = right.eval(row)?;
                eval_binary(*op, l, r)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match (op, v) {
                    (_, Value::Null) => Ok(Value::Null),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::Float(x)) => Ok(Value::Float(-x)),
                    (op, v) => Err(EngineError::Eval(format!("cannot apply {op:?} to {v}"))),
                }
            }
            Expr::Func { func, args } => {
                let vals: Vec<Value> =
                    args.iter().map(|a| a.eval(row)).collect::<EngineResult<_>>()?;
                eval_func(*func, vals)
            }
            Expr::Field { expr, index } => match expr.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Struct(vs) => vs.get(*index).cloned().ok_or_else(|| {
                    EngineError::Eval(format!("struct field #{index} out of range ({})", vs.len()))
                }),
                v => Err(EngineError::Eval(format!("field access on non-struct {v}"))),
            },
            Expr::InSet { expr, set } => match expr.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Bool(set.contains(&v))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            Expr::IsNotNull(e) => Ok(Value::Bool(!e.eval(row)?.is_null())),
        }
    }

    /// Evaluate as a filter predicate: `true` iff the result is `TRUE`.
    #[inline]
    pub fn eval_predicate(&self, row: &[Value]) -> EngineResult<bool> {
        Ok(self.eval(row)? == Value::Bool(true))
    }

    /// Static cost rank of evaluating this expression once.
    ///
    /// Used by the optimizer to order conjunctive filter lists so that the
    /// cheapest, most-likely-pruning predicates run first on every row
    /// (e.g. an integer comparison before an `array_contains` walk). The
    /// scale is unitless: literals/columns are near-free, comparisons are
    /// cheap, allocating or array-walking functions are expensive. Ties
    /// preserve the original (user/pushdown) order via stable sort.
    pub fn cost_rank(&self) -> u32 {
        match self {
            Expr::Lit(_) | Expr::Param(_) => 0,
            Expr::Col(_) => 1,
            Expr::IsNull(e) | Expr::IsNotNull(e) => 1 + e.cost_rank(),
            Expr::Field { expr, .. } => 1 + expr.cost_rank(),
            Expr::Unary { expr, .. } => 1 + expr.cost_rank(),
            Expr::Binary { left, right, .. } => 2 + left.cost_rank() + right.cost_rank(),
            // Hash-set probe: cheap, but hashes a (possibly deep) value.
            Expr::InSet { expr, .. } => 4 + expr.cost_rank(),
            Expr::Func { func, args } => {
                let base = match func {
                    ScalarFunc::Coalesce | ScalarFunc::ArrayLen => 2,
                    ScalarFunc::Abs | ScalarFunc::Lower | ScalarFunc::Upper => 4,
                    // Allocate a new string/struct per row.
                    ScalarFunc::Concat | ScalarFunc::StructPack => 8,
                    // Linear walk over an array value.
                    ScalarFunc::ArrayContains => 16,
                    // Pairwise intersection — by far the heaviest scalar.
                    ScalarFunc::ArrayIntersect => 64,
                };
                base + args.iter().map(Expr::cost_rank).sum::<u32>()
            }
        }
    }
}

fn eval_and(l: Value, r: Value) -> EngineResult<Value> {
    Ok(match (l, r) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn eval_or(l: Value, r: Value) -> EngineResult<Value> {
    Ok(match (l, r) {
        (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> EngineResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.cmp(&r);
        let b = match op {
            BinOp::Eq => ord.is_eq(),
            BinOp::Ne => !ord.is_eq(),
            BinOp::Lt => ord.is_lt(),
            BinOp::Le => ord.is_le(),
            BinOp::Gt => ord.is_gt(),
            BinOp::Ge => ord.is_ge(),
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    match op {
        BinOp::And => eval_and(l, r),
        BinOp::Or => eval_or(l, r),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => {
                    let a = *a;
                    let b = *b;
                    Ok(match op {
                        BinOp::Add => Value::Int(a.wrapping_add(b)),
                        BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                        BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(EngineError::Eval("division by zero".into()));
                            }
                            Value::Int(a / b)
                        }
                        BinOp::Mod => {
                            if b == 0 {
                                return Err(EngineError::Eval("modulo by zero".into()));
                            }
                            Value::Int(a % b)
                        }
                        _ => unreachable!(),
                    })
                }
                _ => {
                    let (a, b) = match (l.as_float(), r.as_float()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            // String concatenation via `+` is intentionally not
                            // supported; use concat().
                            return Err(EngineError::Eval(format!(
                                "arithmetic on non-numeric values {l} and {r}"
                            )));
                        }
                    };
                    Ok(match op {
                        BinOp::Add => Value::Float(a + b),
                        BinOp::Sub => Value::Float(a - b),
                        BinOp::Mul => Value::Float(a * b),
                        BinOp::Div => Value::Float(a / b),
                        BinOp::Mod => Value::Float(a % b),
                        _ => unreachable!(),
                    })
                }
            }
        }
        _ => unreachable!(),
    }
}

fn eval_func(func: ScalarFunc, mut vals: Vec<Value>) -> EngineResult<Value> {
    match func {
        ScalarFunc::ArrayContains => {
            let (arr, elem) = two(vals, "array_contains")?;
            match arr {
                Value::Null => Ok(Value::Null),
                Value::Array(vs) => Ok(Value::Bool(vs.contains(&elem))),
                v => Err(EngineError::Eval(format!("array_contains on non-array {v}"))),
            }
        }
        ScalarFunc::ArrayIntersect => {
            let (a, b) = two(vals, "array_intersect")?;
            match (a, b) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Array(a), Value::Array(b)) => {
                    let set: FxHashSet<&Value> = b.iter().collect();
                    let mut seen = FxHashSet::default();
                    let mut out = Vec::new();
                    for v in a {
                        if set.contains(&v) && seen.insert(v.clone()) {
                            out.push(v);
                        }
                    }
                    Ok(Value::Array(out))
                }
                (a, b) => Err(EngineError::Eval(format!("array_intersect on {a}, {b}"))),
            }
        }
        ScalarFunc::ArrayLen => {
            let v = one(vals, "array_len")?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Array(vs) => Ok(Value::Int(vs.len() as i64)),
                v => Err(EngineError::Eval(format!("array_len on non-array {v}"))),
            }
        }
        ScalarFunc::StructPack => Ok(Value::Struct(vals)),
        ScalarFunc::Coalesce => {
            Ok(vals.drain(..).find(|v| !v.is_null()).unwrap_or(Value::Null))
        }
        ScalarFunc::Concat => {
            let mut s = String::new();
            for v in &vals {
                match v {
                    Value::Null => return Ok(Value::Null),
                    Value::Str(x) => s.push_str(x),
                    other => s.push_str(&other.to_string()),
                }
            }
            Ok(Value::str(s))
        }
        ScalarFunc::Abs => {
            let v = one(vals, "abs")?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                v => Err(EngineError::Eval(format!("abs on non-numeric {v}"))),
            }
        }
        ScalarFunc::Lower | ScalarFunc::Upper => {
            let v = one(vals, "lower/upper")?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::str(if func == ScalarFunc::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                v => Err(EngineError::Eval(format!("lower/upper on non-text {v}"))),
            }
        }
    }
}

fn one(mut vals: Vec<Value>, name: &str) -> EngineResult<Value> {
    if vals.len() != 1 {
        return Err(EngineError::Eval(format!("{name} expects 1 argument, got {}", vals.len())));
    }
    Ok(vals.pop().expect("checked"))
}

fn two(mut vals: Vec<Value>, name: &str) -> EngineResult<(Value, Value)> {
    if vals.len() != 2 {
        return Err(EngineError::Eval(format!("{name} expects 2 arguments, got {}", vals.len())));
    }
    let b = vals.pop().expect("checked");
    let a = vals.pop().expect("checked");
    Ok((a, b))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Param(n) => write!(f, "?{n}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op:?} {right})"),
            Expr::Unary { op, expr } => write!(f, "({op:?} {expr})"),
            Expr::Func { func, args } => {
                write!(f, "{func:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Field { expr, index } => write!(f, "{expr}.{index}"),
            Expr::InSet { expr, set } => write!(f, "{expr} IN <set of {}>", set.len()),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::IsNotNull(e) => write!(f, "{e} IS NOT NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::binary(BinOp::Mul, Expr::col(0), Expr::lit(3i64));
        assert_eq!(e.eval(&[i(7)]).unwrap(), i(21));
        let c = Expr::binary(BinOp::Le, Expr::col(0), Expr::lit(5i64));
        assert_eq!(c.eval(&[i(5)]).unwrap(), Value::Bool(true));
        assert_eq!(c.eval(&[i(6)]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::binary(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let null = Expr::Lit(Value::Null);
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert_eq!(Expr::and(null.clone(), f.clone()).eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(Expr::and(null.clone(), t.clone()).eval(&[]).unwrap(), Value::Null);
        assert_eq!(Expr::or(null.clone(), t.clone()).eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(Expr::or(null.clone(), f.clone()).eval(&[]).unwrap(), Value::Null);
        let cmp = Expr::eq(null, Expr::lit(1i64));
        assert_eq!(cmp.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn predicate_true_only_on_true() {
        let p = Expr::eq(Expr::col(0), Expr::Lit(Value::Null));
        assert!(!p.eval_predicate(&[i(1)]).unwrap());
    }

    #[test]
    fn array_functions() {
        let arr = Value::Array(vec![i(1), i(2), i(3)]);
        let e = Expr::func(ScalarFunc::ArrayContains, vec![Expr::col(0), Expr::lit(2i64)]);
        assert_eq!(e.eval(std::slice::from_ref(&arr)).unwrap(), Value::Bool(true));

        let other = Value::Array(vec![i(3), i(4), i(3)]);
        let ix = Expr::func(ScalarFunc::ArrayIntersect, vec![Expr::col(0), Expr::col(1)]);
        assert_eq!(ix.eval(&[arr.clone(), other]).unwrap(), Value::Array(vec![i(3)]));

        let ln = Expr::func(ScalarFunc::ArrayLen, vec![Expr::col(0)]);
        assert_eq!(ln.eval(&[arr]).unwrap(), i(3));
    }

    #[test]
    fn struct_pack_and_field() {
        let pack = Expr::func(ScalarFunc::StructPack, vec![Expr::col(0), Expr::col(1)]);
        let v = pack.eval(&[i(1), Value::str("x")]).unwrap();
        assert_eq!(v, Value::Struct(vec![i(1), Value::str("x")]));
        let access = Expr::field(pack, 1);
        assert_eq!(access.eval(&[i(1), Value::str("x")]).unwrap(), Value::str("x"));
    }

    #[test]
    fn in_set_membership() {
        let e = Expr::in_set(Expr::col(0), (0..100).map(Value::Int));
        assert_eq!(e.eval(&[i(42)]).unwrap(), Value::Bool(true));
        assert_eq!(e.eval(&[i(200)]).unwrap(), Value::Bool(false));
        assert_eq!(e.eval(&[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn split_and_rebuild_conjunction() {
        let p = Expr::and(
            Expr::eq(Expr::col(0), Expr::lit(1i64)),
            Expr::and(Expr::eq(Expr::col(1), Expr::lit(2i64)), Expr::eq(Expr::col(2), Expr::lit(3i64))),
        );
        let parts = p.clone().split_conjunction();
        assert_eq!(parts.len(), 3);
        let back = Expr::conjunction(parts);
        assert_eq!(back.eval(&[i(1), i(2), i(3)]).unwrap(), Value::Bool(true));
        assert_eq!(back.eval(&[i(1), i(2), i(4)]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn map_columns_shifts_references() {
        let e = Expr::eq(Expr::col(0), Expr::col(2));
        let shifted = e.map_columns(&|i| i + 5);
        assert_eq!(shifted.columns(), vec![5, 7]);
    }

    #[test]
    fn coalesce_and_concat() {
        let c = Expr::func(ScalarFunc::Coalesce, vec![Expr::Lit(Value::Null), Expr::lit(7i64)]);
        assert_eq!(c.eval(&[]).unwrap(), i(7));
        let s = Expr::func(ScalarFunc::Concat, vec![Expr::lit("a"), Expr::lit("b")]);
        assert_eq!(s.eval(&[]).unwrap(), Value::str("ab"));
    }

    #[test]
    fn null_propagation_in_functions() {
        let ln = Expr::func(ScalarFunc::ArrayLen, vec![Expr::Lit(Value::Null)]);
        assert_eq!(ln.eval(&[]).unwrap(), Value::Null);
        let abs = Expr::func(ScalarFunc::Abs, vec![Expr::Lit(Value::Null)]);
        assert_eq!(abs.eval(&[]).unwrap(), Value::Null);
    }
}
