//! Vectorized kernels: selection-vector construction, predicate
//! application over typed column slices, and column-at-a-time row
//! materialization (gather).
//!
//! Invariant (enforced by a check.sh grep gate): this file contains no
//! per-row `Value` enum match. Kernels branch once per *column* on the
//! slice variant, then run a tight loop over primitive data —
//! `Value`-shaped decisions all happen at compile time in
//! [`crate::vplan`]. Constructing `Value`s during gather is fine; it is
//! the per-row enum dispatch the columnar path exists to eliminate.

use crate::vplan::VecPred;
use erbium_storage::{Bitmap, ColumnSlice, RowId, Table, Value};
use std::ops::Range;
use std::sync::Arc;

/// Append the live slots of `range` to `sel`, in ascending slot order.
pub(crate) fn live_selection(live: &Bitmap, range: Range<usize>, sel: &mut Vec<usize>) {
    for s in range {
        if live.get(s) {
            sel.push(s);
        }
    }
}

/// Filter `sel` in place by one compiled predicate, preserving order.
///
/// Every arm masks by the validity bitmap first: NULL never qualifies a
/// comparison (matching the row path, where NULL operands make the
/// predicate NULL, hence not TRUE).
pub(crate) fn apply_pred(pred: &VecPred, t: &Table, sel: &mut Vec<usize>) {
    match pred {
        VecPred::IntCmp { col, set, lit } => {
            let Some(ColumnSlice::Int { data, valid }) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| valid.get(s) && set.accepts(data[s].cmp(lit)));
        }
        VecPred::IntAsFloatCmp { col, set, lit } => {
            let Some(ColumnSlice::Int { data, valid }) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| valid.get(s) && set.accepts((data[s] as f64).total_cmp(lit)));
        }
        VecPred::FloatCmp { col, set, lit } => {
            let Some(ColumnSlice::Float { data, valid }) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| valid.get(s) && set.accepts(data[s].total_cmp(lit)));
        }
        VecPred::BoolCmp { col, set, lit } => {
            let Some(ColumnSlice::Bool { data, valid }) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| valid.get(s) && set.accepts(data[s].cmp(lit)));
        }
        VecPred::DictCmp { col, keep } => {
            let Some(ColumnSlice::Str { codes, valid, .. }) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| valid.get(s) && keep[codes[s] as usize]);
        }
        VecPred::Const { col, keep } => {
            let Some(slice) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| slice.is_valid(s) && *keep);
        }
        VecPred::IsNull { col } => {
            let Some(slice) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| !slice.is_valid(s));
        }
        VecPred::IsNotNull { col } => {
            let Some(slice) = t.column_slice(*col) else {
                sel.clear();
                return;
            };
            sel.retain(|&s| slice.is_valid(s));
        }
        VecPred::Nothing => sel.clear(),
    }
}

/// Materialize the selected slots as rows, one *column* at a time.
///
/// `mapping[out_col]` names the table column feeding output column
/// `out_col`. Scalar columns are rebuilt from their typed vectors;
/// columns without a typed slice (arrays/structs) fall back to cloning
/// from the row store. Rows are appended to `out`.
pub(crate) fn gather_rows(t: &Table, mapping: &[usize], sel: &[usize], out: &mut Vec<Vec<Value>>) {
    let base = out.len();
    out.extend(sel.iter().map(|_| Vec::with_capacity(mapping.len())));
    for &c in mapping {
        match t.column_slice(c) {
            Some(ColumnSlice::Int { data, valid }) => {
                for (k, &s) in sel.iter().enumerate() {
                    out[base + k].push(if valid.get(s) { Value::Int(data[s]) } else { Value::Null });
                }
            }
            Some(ColumnSlice::Float { data, valid }) => {
                for (k, &s) in sel.iter().enumerate() {
                    out[base + k]
                        .push(if valid.get(s) { Value::Float(data[s]) } else { Value::Null });
                }
            }
            Some(ColumnSlice::Bool { data, valid }) => {
                for (k, &s) in sel.iter().enumerate() {
                    out[base + k]
                        .push(if valid.get(s) { Value::Bool(data[s]) } else { Value::Null });
                }
            }
            Some(ColumnSlice::Str { codes, valid, dict }) => {
                for (k, &s) in sel.iter().enumerate() {
                    out[base + k].push(if valid.get(s) {
                        Value::Str(Arc::clone(dict.get(codes[s])))
                    } else {
                        Value::Null
                    });
                }
            }
            None => {
                for (k, &s) in sel.iter().enumerate() {
                    let row = t.get(RowId(s as u64)).expect("selected slot is live");
                    out[base + k].push(row[c].clone());
                }
            }
        }
    }
}

/// The join-build key at `slot` for a single-key columnar build:
/// `None` when the cell is NULL (NULL keys never join) or the column has
/// no typed slice.
pub(crate) fn key_at(t: &Table, col: usize, slot: usize) -> Option<Value> {
    let slice = t.column_slice(col)?;
    slice.is_valid(slot).then(|| slice.value_at(slot))
}
