//! Cardinality estimation over ANALYZE-gathered statistics.
//!
//! [`estimate`] walks a [`Plan`] bottom-up and predicts output rows per
//! node from the catalog's [`erbium_storage::CatalogStats`]: leaf scans
//! start from gathered row counts, predicates apply per-column selectivities
//! derived from NDV / min-max / null-fraction, equi-joins divide by the
//! larger key NDV, unnest multiplies by the gathered average array fan-out.
//!
//! The estimator is deliberately *total or nothing*: it returns `None` as
//! soon as any leaf table lacks gathered statistics, and the optimizer's
//! cost-based passes (build-side selection, join reordering, selectivity
//! filter ranking) disable themselves in that case — an un-ANALYZEd
//! database plans exactly as it did before this module existed.
//!
//! The same estimates annotate `EXPLAIN` output and
//! [`crate::metrics::ExecMetrics`] trees (`est=` column), which is what
//! makes estimate-vs-actual q-error visible per operator.

use crate::expr::{BinOp, Expr};
use crate::metrics::ExecMetrics;
use crate::plan::{FactorizedSide, JoinKind, Plan, PlanKind};
use erbium_storage::{Catalog, TableStats, Value};

/// Default array fan-out when a column was never analyzed as an array.
pub const DEFAULT_ARRAY_LEN: f64 = 3.0;
/// Selectivity assumed for predicates the estimator cannot decompose.
const DEFAULT_SEL: f64 = 0.25;
/// Default selectivity of one comparison when min/max are unusable.
const DEFAULT_RANGE_SEL: f64 = 0.3;
/// Default equality selectivity without NDV.
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Floor applied to every predicate selectivity so estimates never collapse
/// to an exact zero (which would make all downstream costs indistinguishable).
const SEL_FLOOR: f64 = 1e-4;

/// Derived statistics for one output column of a plan node. `None` entries
/// in [`Estimate::cols`] mean "nothing known" (computed expressions,
/// aggregate outputs, columns of un-analyzed origin).
#[derive(Debug, Clone)]
pub struct ColEst {
    /// Estimated distinct values.
    pub ndv: f64,
    /// Fraction of NULLs.
    pub null_frac: f64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Average element count for array columns (0 when not an array).
    pub avg_array_len: f64,
}

/// Cardinality estimate for one plan node.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Per-output-column statistics, where derivable.
    pub cols: Vec<Option<ColEst>>,
}

impl Estimate {
    fn unknown_cols(rows: f64, arity: usize) -> Estimate {
        Estimate { rows, cols: vec![None; arity] }
    }
}

/// Build per-column estimates from gathered [`TableStats`].
fn leaf_cols(stats: &TableStats) -> Vec<Option<ColEst>> {
    let rc = stats.row_count as f64;
    stats
        .columns
        .iter()
        .map(|c| {
            Some(ColEst {
                ndv: c.ndv as f64,
                null_frac: if rc > 0.0 { c.null_count as f64 / rc } else { 0.0 },
                min: c.min.clone(),
                max: c.max.clone(),
                avg_array_len: c.avg_array_len,
            })
        })
        .collect()
}

/// Leaf estimate for a named table (or factorized-stats key such as
/// `name#left`), from the stats registry.
pub fn table_estimate(cat: &Catalog, key: &str) -> Option<Estimate> {
    let stats = cat.table_stats(key)?;
    Some(Estimate { rows: stats.row_count as f64, cols: leaf_cols(stats) })
}

/// Estimate output rows of `plan` against gathered statistics. Returns
/// `None` when any leaf table referenced by the plan lacks statistics.
pub fn estimate(plan: &Plan, cat: &Catalog) -> Option<Estimate> {
    match &plan.kind {
        PlanKind::Scan { table, filters, .. } => {
            let mut est = table_estimate(cat, table)?;
            apply_filters(&mut est, filters);
            Some(est)
        }
        PlanKind::IndexLookup { table, columns, keys, residual } => {
            let base = table_estimate(cat, table)?;
            let mut sel = 1.0;
            for &c in columns {
                sel *= eq_sel(base.cols.get(c).and_then(|c| c.as_ref()));
            }
            let mut est = Estimate {
                rows: (base.rows * sel * keys.len() as f64).max(0.0),
                cols: base.cols,
            };
            apply_filters(&mut est, residual);
            Some(est)
        }
        PlanKind::IndexRange { table, column, lo, hi, residual } => {
            let base = table_estimate(cat, table)?;
            let ce = base.cols.get(*column).and_then(|c| c.as_ref());
            let sel =
                range_bounds_sel(ce, lo.as_ref().map(|(v, _)| v), hi.as_ref().map(|(v, _)| v));
            let mut est = Estimate { rows: base.rows * sel, cols: base.cols };
            apply_filters(&mut est, residual);
            Some(est)
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let key = match side {
                FactorizedSide::Left => format!("{table}#left"),
                FactorizedSide::Right => format!("{table}#right"),
                FactorizedSide::Join => table.clone(),
            };
            let mut est = table_estimate(cat, &key)?;
            apply_filters(&mut est, filters);
            Some(est)
        }
        PlanKind::FactorizedCount { .. } => Some(Estimate::unknown_cols(1.0, 1)),
        PlanKind::Filter { input, predicate } => {
            let mut est = estimate(input, cat)?;
            apply_filters(&mut est, std::slice::from_ref(predicate));
            Some(est)
        }
        PlanKind::Project { input, exprs } => {
            let est = estimate(input, cat)?;
            let cols = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(i) => est.cols.get(*i).cloned().flatten(),
                    _ => None,
                })
                .collect();
            Some(Estimate { rows: est.rows, cols })
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => {
            let l = estimate(left, cat)?;
            let r = estimate(right, cat)?;
            Some(join_estimate(&l, &r, *kind, left_keys, right_keys))
        }
        PlanKind::Aggregate { input, group, aggs } => {
            let est = estimate(input, cat)?;
            if group.is_empty() {
                return Some(Estimate::unknown_cols(1.0, aggs.len()));
            }
            // Groups ≈ product of group-key NDVs, capped by input rows.
            let mut groups = 1.0f64;
            for g in group {
                groups *= match g {
                    Expr::Col(i) => est
                        .cols
                        .get(*i)
                        .and_then(|c| c.as_ref())
                        .map(|c| c.ndv.max(1.0))
                        .unwrap_or(10.0),
                    _ => 10.0,
                };
            }
            let rows = groups.min(est.rows).max(est.rows.min(1.0));
            let mut cols: Vec<Option<ColEst>> = group
                .iter()
                .map(|g| match g {
                    Expr::Col(i) => est.cols.get(*i).cloned().flatten(),
                    _ => None,
                })
                .collect();
            cols.extend(std::iter::repeat_with(|| None).take(aggs.len()));
            Some(Estimate { rows, cols })
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            let est = estimate(input, cat)?;
            let fan = est
                .cols
                .get(*column)
                .and_then(|c| c.as_ref())
                .map(|c| if c.avg_array_len > 0.0 { c.avg_array_len } else { DEFAULT_ARRAY_LEN })
                .unwrap_or(DEFAULT_ARRAY_LEN);
            let fan = if *keep_empty { fan.max(1.0) } else { fan };
            let mut cols = est.cols.clone();
            if let Some(c) = cols.get_mut(*column) {
                *c = None; // element-level stats unknown
            }
            Some(Estimate { rows: est.rows * fan, cols })
        }
        PlanKind::Sort { input, .. } => estimate(input, cat),
        PlanKind::Limit { input, limit } => {
            let est = estimate(input, cat)?;
            Some(Estimate { rows: est.rows.min(*limit as f64), cols: est.cols })
        }
        PlanKind::Distinct { input } => {
            let est = estimate(input, cat)?;
            // Distinct over all columns: capped product of NDVs when every
            // column is known, otherwise pass the input estimate through.
            let ndvs: Option<f64> = est
                .cols
                .iter()
                .map(|c| c.as_ref().map(|c| c.ndv.max(1.0)))
                .try_fold(1.0f64, |acc, n| n.map(|n| acc * n));
            let rows = match ndvs {
                Some(n) => n.min(est.rows),
                None => est.rows,
            };
            Some(Estimate { rows, cols: est.cols })
        }
        PlanKind::Union { inputs } => {
            let mut rows = 0.0;
            for i in inputs {
                rows += estimate(i, cat)?.rows;
            }
            Some(Estimate::unknown_cols(rows, plan.fields.len()))
        }
        PlanKind::Values { rows } => {
            Some(Estimate::unknown_cols(rows.len() as f64, plan.fields.len()))
        }
    }
}

/// Combine two side estimates into a join estimate.
fn join_estimate(
    l: &Estimate,
    r: &Estimate,
    kind: JoinKind,
    left_keys: &[Expr],
    right_keys: &[Expr],
) -> Estimate {
    // Classic equi-join formula: |L ⋈ R| = |L|·|R| / Π max(ndv_l, ndv_r),
    // falling back to max(|L|, |R|) as the denominator for opaque keys.
    let mut denom = 1.0f64;
    let mut known = false;
    for (lk, rk) in left_keys.iter().zip(right_keys.iter()) {
        let ln = key_ndv(lk, l);
        let rn = key_ndv(rk, r);
        if let (Some(ln), Some(rn)) = (ln, rn) {
            denom *= ln.max(rn).max(1.0);
            known = true;
        }
    }
    if !known {
        denom = l.rows.max(r.rows).max(1.0);
    }
    let inner = (l.rows * r.rows / denom).max(0.0);
    let (rows, cols) = match kind {
        JoinKind::Inner => {
            let mut cols = l.cols.clone();
            cols.extend(r.cols.iter().cloned());
            (inner, cols)
        }
        JoinKind::Left => {
            let mut cols = l.cols.clone();
            cols.extend(r.cols.iter().cloned());
            (inner.max(l.rows), cols)
        }
        JoinKind::Semi => (inner.min(l.rows), l.cols.clone()),
    };
    Estimate { rows, cols }
}

fn key_ndv(key: &Expr, est: &Estimate) -> Option<f64> {
    match key {
        Expr::Col(i) => est.cols.get(*i).and_then(|c| c.as_ref()).map(|c| c.ndv),
        _ => None,
    }
}

/// Multiply a node estimate by the combined selectivity of `filters`.
fn apply_filters(est: &mut Estimate, filters: &[Expr]) {
    for f in filters {
        let sel = selectivity(f, est);
        est.rows *= sel;
    }
}

/// Estimated fraction of rows satisfying `pred`, given per-column stats.
/// Always in `[SEL_FLOOR, 1.0]`.
pub fn selectivity(pred: &Expr, est: &Estimate) -> f64 {
    raw_selectivity(pred, est).clamp(SEL_FLOOR, 1.0)
}

fn raw_selectivity(pred: &Expr, est: &Estimate) -> f64 {
    match pred {
        Expr::Lit(Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Expr::Binary { op: BinOp::And, left, right } => {
            raw_selectivity(left, est) * raw_selectivity(right, est)
        }
        Expr::Binary { op: BinOp::Or, left, right } => {
            let a = raw_selectivity(left, est);
            let b = raw_selectivity(right, est);
            (a + b - a * b).min(1.0)
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            comparison_selectivity(*op, left, right, est)
        }
        Expr::InSet { expr, set } => match &**expr {
            Expr::Col(i) => {
                let ce = est.cols.get(*i).and_then(|c| c.as_ref());
                match ce {
                    Some(c) if c.ndv > 0.0 => {
                        ((set.len() as f64 / c.ndv) * (1.0 - c.null_frac)).min(1.0)
                    }
                    _ => (set.len() as f64 * DEFAULT_EQ_SEL).min(1.0),
                }
            }
            _ => (set.len() as f64 * DEFAULT_EQ_SEL).min(1.0),
        },
        Expr::IsNull(e) => match &**e {
            Expr::Col(i) => est
                .cols
                .get(*i)
                .and_then(|c| c.as_ref())
                .map(|c| c.null_frac)
                .unwrap_or(DEFAULT_EQ_SEL),
            _ => DEFAULT_EQ_SEL,
        },
        Expr::IsNotNull(e) => match &**e {
            Expr::Col(i) => est
                .cols
                .get(*i)
                .and_then(|c| c.as_ref())
                .map(|c| 1.0 - c.null_frac)
                .unwrap_or(1.0 - DEFAULT_EQ_SEL),
            _ => 1.0 - DEFAULT_EQ_SEL,
        },
        Expr::Unary { op: crate::expr::UnOp::Not, expr } => 1.0 - raw_selectivity(expr, est),
        _ => DEFAULT_SEL,
    }
}

fn comparison_selectivity(op: BinOp, left: &Expr, right: &Expr, est: &Estimate) -> f64 {
    // Normalize to Col <op> Lit.
    let (col, lit, op) = match (left, right) {
        (Expr::Col(i), Expr::Lit(v)) => (*i, v, op),
        (Expr::Lit(v), Expr::Col(i)) => {
            let mirrored = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            (*i, v, mirrored)
        }
        // Col = Col (e.g. self-join residual): 1/max ndv.
        (Expr::Col(a), Expr::Col(b)) if op == BinOp::Eq => {
            let na = est.cols.get(*a).and_then(|c| c.as_ref()).map(|c| c.ndv.max(1.0));
            let nb = est.cols.get(*b).and_then(|c| c.as_ref()).map(|c| c.ndv.max(1.0));
            return match (na, nb) {
                (Some(na), Some(nb)) => 1.0 / na.max(nb),
                _ => DEFAULT_EQ_SEL,
            };
        }
        _ => {
            return if op == BinOp::Eq { DEFAULT_EQ_SEL } else { DEFAULT_RANGE_SEL };
        }
    };
    let ce = est.cols.get(col).and_then(|c| c.as_ref());
    match op {
        BinOp::Eq => eq_sel(ce),
        BinOp::Ne => 1.0 - eq_sel(ce),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(c) = ce else { return DEFAULT_RANGE_SEL };
            let (Some(lo), Some(hi), Some(v)) = (
                c.min.as_ref().and_then(Value::as_float),
                c.max.as_ref().and_then(Value::as_float),
                lit.as_float(),
            ) else {
                return DEFAULT_RANGE_SEL;
            };
            if hi <= lo {
                // Single-valued or empty column: degenerate range.
                return DEFAULT_RANGE_SEL;
            }
            // Uniform linear interpolation within [min, max].
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let frac = match op {
                BinOp::Lt | BinOp::Le => frac,
                _ => 1.0 - frac,
            };
            frac * (1.0 - c.null_frac)
        }
        _ => DEFAULT_SEL,
    }
}

fn eq_sel(ce: Option<&ColEst>) -> f64 {
    match ce {
        Some(c) if c.ndv > 0.0 => (1.0 - c.null_frac) / c.ndv,
        _ => DEFAULT_EQ_SEL,
    }
}

/// Selectivity of an (optionally half-open) `[lo, hi]` range over a column,
/// by linear interpolation inside the gathered min/max. Used for the
/// `IndexRange` plan node, whose bounds are literal [`Value`]s.
fn range_bounds_sel(ce: Option<&ColEst>, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
    let Some(c) = ce else { return DEFAULT_RANGE_SEL };
    let (Some(cmin), Some(cmax)) =
        (c.min.as_ref().and_then(Value::as_float), c.max.as_ref().and_then(Value::as_float))
    else {
        return DEFAULT_RANGE_SEL;
    };
    if cmax <= cmin {
        return DEFAULT_RANGE_SEL;
    }
    let width = cmax - cmin;
    let lo_frac = match lo.and_then(Value::as_float) {
        Some(v) => ((v - cmin) / width).clamp(0.0, 1.0),
        None => 0.0,
    };
    let hi_frac = match hi.and_then(Value::as_float) {
        Some(v) => ((v - cmin) / width).clamp(0.0, 1.0),
        None => 1.0,
    };
    ((hi_frac - lo_frac).max(0.0)) * (1.0 - c.null_frac)
}

// ---- explain / metrics annotation ------------------------------------------

/// Render `plan.explain()` with per-node `est=N` row estimates appended.
/// Falls back to the plain rendering when no statistics are gathered.
pub fn explain_with_estimates(plan: &Plan, cat: &Catalog) -> String {
    if cat.stats().is_empty() {
        return plan.explain();
    }
    plan.explain_annotated(&|node: &Plan| {
        estimate(node, cat).map(|e| format!("est={:.0}", e.rows))
    })
}

/// Attach per-operator row estimates to an executed [`ExecMetrics`] tree.
///
/// The metrics tree is plan-shaped (one node per plan operator, join
/// children ordered `[left, right]`), so the two trees are zipped
/// structurally. Nodes without a derivable estimate keep `est_rows: None`.
pub fn annotate_metrics(metrics: &mut ExecMetrics, plan: &Plan, cat: &Catalog) {
    if cat.stats().is_empty() {
        return;
    }
    zip_annotate(metrics, plan, cat);
}

fn zip_annotate(metrics: &mut ExecMetrics, plan: &Plan, cat: &Catalog) {
    metrics.est_rows = estimate(plan, cat).map(|e| e.rows);
    let children: Vec<&Plan> = match &plan.kind {
        PlanKind::Filter { input, .. }
        | PlanKind::Project { input, .. }
        | PlanKind::Aggregate { input, .. }
        | PlanKind::Unnest { input, .. }
        | PlanKind::Sort { input, .. }
        | PlanKind::Limit { input, .. }
        | PlanKind::Distinct { input } => vec![input],
        PlanKind::Join { left, right, .. } => vec![left, right],
        PlanKind::Union { inputs } => inputs.iter().collect(),
        _ => vec![],
    };
    for (m, p) in metrics.children.iter_mut().zip(children) {
        zip_annotate(m, p, cat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_storage::{Column, DataType, Table, TableSchema};

    fn analyzed_cat() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("v", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..1000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]).unwrap();
        }
        c.create_table(t).unwrap();
        let mut dim = Table::new(TableSchema::new(
            "dim",
            vec![Column::not_null("k", DataType::Int)],
            vec![0],
        ));
        for i in 0..10i64 {
            dim.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(dim).unwrap();
        c.analyze();
        c
    }

    #[test]
    fn no_stats_means_no_estimate() {
        let mut c = Catalog::new();
        c.create_table(Table::new(TableSchema::new(
            "t",
            vec![Column::not_null("id", DataType::Int)],
            vec![0],
        )))
        .unwrap();
        let p = Plan::scan(&c, "t").unwrap();
        assert!(estimate(&p, &c).is_none());
    }

    #[test]
    fn scan_estimate_is_row_count() {
        let c = analyzed_cat();
        let p = Plan::scan(&c, "t").unwrap();
        let e = estimate(&p, &c).unwrap();
        assert!((e.rows - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn eq_filter_uses_ndv() {
        let c = analyzed_cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::eq(Expr::col(1), Expr::lit(3i64)));
        let e = estimate(&p, &c).unwrap();
        // grp has 10 distinct values over 1000 rows → ~100.
        assert!((e.rows - 100.0).abs() < 1.0, "rows={}", e.rows);
    }

    #[test]
    fn range_filter_interpolates_min_max() {
        let c = analyzed_cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::binary(BinOp::Lt, Expr::col(2), Expr::lit(250i64)));
        let e = estimate(&p, &c).unwrap();
        // v uniform over [0, 999] → ~25%.
        assert!((e.rows - 250.0).abs() < 10.0, "rows={}", e.rows);
    }

    #[test]
    fn join_divides_by_key_ndv() {
        let c = analyzed_cat();
        let p = Plan::scan(&c, "t").unwrap().join(
            Plan::scan(&c, "dim").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(1)],
            vec![Expr::col(0)],
        );
        let e = estimate(&p, &c).unwrap();
        // 1000 × 10 / max(10, 10) = 1000.
        assert!((e.rows - 1000.0).abs() < 1.0, "rows={}", e.rows);
    }

    #[test]
    fn limit_caps_estimate() {
        let c = analyzed_cat();
        let p = Plan::scan(&c, "t").unwrap().limit(7);
        assert!((estimate(&p, &c).unwrap().rows - 7.0).abs() < 1e-9);
    }

    #[test]
    fn explain_with_estimates_annotates_nodes() {
        let c = analyzed_cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::eq(Expr::col(1), Expr::lit(3i64)));
        let text = explain_with_estimates(&p, &c);
        assert!(text.contains("est="), "{text}");
        // Without stats the rendering is byte-identical to plain explain().
        let bare = Catalog::new();
        let p2 = Plan {
            kind: PlanKind::Values { rows: vec![] },
            fields: vec![],
        };
        assert_eq!(explain_with_estimates(&p2, &bare), p2.explain());
    }

    // ---- edge cases ---------------------------------------------------

    #[test]
    fn empty_table_estimates_zero_without_nan() {
        // An ANALYZEd table with zero rows must yield rc=0 estimates, not
        // NaN from the 0/0 null-fraction division in `leaf_cols`.
        let mut c = Catalog::new();
        c.create_table(Table::new(TableSchema::new(
            "empty",
            vec![Column::not_null("id", DataType::Int), Column::new("v", DataType::Int)],
            vec![0],
        )))
        .unwrap();
        c.analyze();
        let p = Plan::scan(&c, "empty").unwrap();
        let e = estimate(&p, &c).unwrap();
        assert_eq!(e.rows, 0.0);
        for ce in e.cols.iter().flatten() {
            assert!(ce.null_frac.is_finite(), "null_frac must not be NaN on rc=0");
        }
        // Filters over the empty estimate stay at zero and finite.
        let pf = Plan::scan(&c, "empty")
            .unwrap()
            .filter(Expr::eq(Expr::col(1), Expr::lit(3i64)));
        let ef = estimate(&pf, &c).unwrap();
        assert!(ef.rows == 0.0 && ef.rows.is_finite(), "rows={}", ef.rows);
    }

    #[test]
    fn all_null_column_uses_null_fraction() {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "n",
            vec![Column::not_null("id", DataType::Int), Column::new("v", DataType::Int)],
            vec![0],
        ));
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        c.create_table(t).unwrap();
        c.analyze();
        let base = Plan::scan(&c, "n").unwrap();
        let e = estimate(&base, &c).unwrap();
        let ce = e.cols[1].as_ref().expect("stats for all-NULL column");
        assert!((ce.null_frac - 1.0).abs() < 1e-9, "null_frac={}", ce.null_frac);
        // IS NULL keeps everything; IS NOT NULL collapses to the floor.
        let is_null = base.clone().filter(Expr::IsNull(Box::new(Expr::col(1))));
        let en = estimate(&is_null, &c).unwrap();
        assert!((en.rows - 100.0).abs() < 1e-6, "rows={}", en.rows);
        let not_null =
            Plan::scan(&c, "n").unwrap().filter(Expr::IsNotNull(Box::new(Expr::col(1))));
        let enn = estimate(&not_null, &c).unwrap();
        assert!(enn.rows <= 100.0 * SEL_FLOOR + 1e-9, "rows={}", enn.rows);
        assert!(enn.rows.is_finite());
    }

    #[test]
    fn limit_zero_estimates_zero_rows() {
        let c = analyzed_cat();
        let p = Plan::scan(&c, "t").unwrap().limit(0);
        let e = estimate(&p, &c).unwrap();
        assert_eq!(e.rows, 0.0);
        let text = explain_with_estimates(&p, &c);
        assert!(text.contains("est=0"), "{text}");
    }

    #[test]
    fn q_error_handles_zero_actual_rows() {
        // est=50 but the operator emitted nothing: both sides are floored at
        // one row, so q-error is 50 — finite, renderable, no divide-by-zero.
        let m = ExecMetrics {
            name: "Scan(t)".into(),
            rows_out: 0,
            est_rows: Some(50.0),
            ..ExecMetrics::default()
        };
        assert_eq!(m.q_error(), Some(50.0));
        let text = m.render();
        assert!(text.contains("est=50 q=50.00"), "{text}");
        // est=0 and actual=0 floor to 1/1 → perfect score, not NaN.
        let z = ExecMetrics { est_rows: Some(0.0), ..ExecMetrics::default() };
        assert_eq!(z.q_error(), Some(1.0));
    }
}
