//! Logical/physical query plans.
//!
//! Plans are built by the mapping layer (which translates ERQL over the E/R
//! schema into operations over physical tables) and executed by
//! [`crate::exec`]. Every node carries its output [`Field`]s so upper layers
//! can resolve attribute names to column positions without a separate
//! binder pass.

use crate::agg::{AggCall, AggFunc};
use crate::error::{EngineError, EngineResult};
use crate::expr::{BinOp, Expr, ScalarFunc};
use erbium_storage::{Catalog, DataType, Row, Value};
use std::fmt::Write as _;

/// One output column of a plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field { name: name.into(), dtype }
    }
}

/// Join variants supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// Left outer: unmatched left rows are null-extended. The paper notes
    /// inheritance hierarchies "may result in a large number of left outer
    /// joins" when mapped onto a relational backend.
    Left,
    /// Left semi: left rows with at least one match, emitted once.
    Semi,
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub desc: bool,
}

/// Which part of a factorized structure to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorizedSide {
    Left,
    Right,
    /// Enumerate the stored join by following physical pointers.
    Join,
}

/// A plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub kind: PlanKind,
    pub fields: Vec<Field>,
}

/// Plan node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// Full scan with conjunctive pushed-down filters.
    ///
    /// `projection`, when set by the optimizer's pruning pass, lists the
    /// table columns (ascending) the scan materializes; the node's `fields`
    /// are the corresponding subset. `filters` always stay in the *original*
    /// table column space — they are evaluated during the scan, before
    /// projection, so filter-only columns are read but never materialized.
    Scan { table: String, filters: Vec<Expr>, projection: Option<Vec<usize>> },
    /// Point lookups through an index on `columns` for each key in `keys`,
    /// with residual filters applied to fetched rows.
    IndexLookup { table: String, columns: Vec<usize>, keys: Vec<Value>, residual: Vec<Expr> },
    /// Range scan through a BTree index on one column, with residual
    /// filters applied to fetched rows. Bounds are inclusive/exclusive per
    /// the flags; `None` means unbounded.
    IndexRange {
        table: String,
        column: usize,
        lo: Option<(Value, bool)>,
        hi: Option<(Value, bool)>,
        residual: Vec<Expr>,
    },
    /// Read a factorized structure.
    FactorizedScan { table: String, side: FactorizedSide, filters: Vec<Expr> },
    /// O(1) count of the stored join of a factorized structure
    /// (aggregate pushed fully through the join). Emits one row.
    FactorizedCount { table: String },
    Filter { input: Box<Plan>, predicate: Expr },
    Project { input: Box<Plan>, exprs: Vec<Expr> },
    Join { left: Box<Plan>, right: Box<Plan>, kind: JoinKind, left_keys: Vec<Expr>, right_keys: Vec<Expr> },
    Aggregate { input: Box<Plan>, group: Vec<Expr>, aggs: Vec<AggCall> },
    /// Replace array column `column` with its elements, one output row per
    /// element. Rows with NULL/empty arrays are dropped (SQL `unnest`)
    /// unless `keep_empty` is set, in which case one row with NULL in the
    /// column is emitted (outer-unnest, used for LEFT joins over folded
    /// weak entities).
    Unnest { input: Box<Plan>, column: usize, keep_empty: bool },
    Sort { input: Box<Plan>, keys: Vec<SortKey> },
    Limit { input: Box<Plan>, limit: usize },
    Distinct { input: Box<Plan> },
    /// UNION ALL of inputs with identical arity.
    Union { inputs: Vec<Plan> },
    /// Literal rows.
    Values { rows: Vec<Row> },
}

impl Plan {
    // ---- constructors -----------------------------------------------------

    /// Scan a catalog table.
    pub fn scan(cat: &Catalog, table: &str) -> EngineResult<Plan> {
        let t = cat.table(table)?;
        let fields = t
            .schema()
            .columns
            .iter()
            .map(|c| Field::new(c.name.clone(), c.dtype.clone()))
            .collect();
        Ok(Plan {
            kind: PlanKind::Scan { table: table.to_string(), filters: Vec::new(), projection: None },
            fields,
        })
    }

    /// Scan one side (or the stored join) of a factorized structure.
    pub fn factorized_scan(cat: &Catalog, table: &str, side: FactorizedSide) -> EngineResult<Plan> {
        let ft = cat.factorized(table)?;
        let mut fields: Vec<Field> = Vec::new();
        let push = |fields: &mut Vec<Field>, t: &erbium_storage::Table| {
            for c in &t.schema().columns {
                fields.push(Field::new(c.name.clone(), c.dtype.clone()));
            }
        };
        match side {
            FactorizedSide::Left => push(&mut fields, ft.left()),
            FactorizedSide::Right => push(&mut fields, ft.right()),
            FactorizedSide::Join => {
                push(&mut fields, ft.left());
                push(&mut fields, ft.right());
            }
        }
        Ok(Plan {
            kind: PlanKind::FactorizedScan { table: table.to_string(), side, filters: Vec::new() },
            fields,
        })
    }

    /// O(1) count over a factorized join.
    pub fn factorized_count(table: &str) -> Plan {
        Plan {
            kind: PlanKind::FactorizedCount { table: table.to_string() },
            fields: vec![Field::new("count", DataType::Int)],
        }
    }

    pub fn filter(self, predicate: Expr) -> Plan {
        let fields = self.fields.clone();
        Plan { kind: PlanKind::Filter { input: Box::new(self), predicate }, fields }
    }

    /// Project named expressions.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> Plan {
        let fields = exprs
            .iter()
            .map(|(e, n)| Field::new(n.clone(), infer_type(e, &self.fields)))
            .collect();
        Plan {
            kind: PlanKind::Project {
                input: Box::new(self),
                exprs: exprs.into_iter().map(|(e, _)| e).collect(),
            },
            fields,
        }
    }

    /// Keep a subset of columns by position.
    pub fn project_columns(self, cols: &[usize]) -> Plan {
        let exprs = cols
            .iter()
            .map(|&i| (Expr::Col(i), self.fields[i].name.clone()))
            .collect();
        self.project(exprs)
    }

    /// Hash join on key-expression equality.
    pub fn join(self, right: Plan, kind: JoinKind, left_keys: Vec<Expr>, right_keys: Vec<Expr>) -> Plan {
        let mut fields = self.fields.clone();
        match kind {
            JoinKind::Semi => {}
            JoinKind::Inner | JoinKind::Left => fields.extend(right.fields.iter().cloned()),
        }
        Plan {
            kind: PlanKind::Join {
                left: Box::new(self),
                right: Box::new(right),
                kind,
                left_keys,
                right_keys,
            },
            fields,
        }
    }

    /// Group-by aggregation. Output = group columns then aggregate columns.
    pub fn aggregate(self, group: Vec<(Expr, String)>, aggs: Vec<(AggCall, String)>) -> Plan {
        let mut fields: Vec<Field> = group
            .iter()
            .map(|(e, n)| Field::new(n.clone(), infer_type(e, &self.fields)))
            .collect();
        for (a, n) in &aggs {
            fields.push(Field::new(n.clone(), infer_agg_type(a, &self.fields)));
        }
        Plan {
            kind: PlanKind::Aggregate {
                input: Box::new(self),
                group: group.into_iter().map(|(e, _)| e).collect(),
                aggs: aggs.into_iter().map(|(a, _)| a).collect(),
            },
            fields,
        }
    }

    pub fn unnest(self, column: usize) -> EngineResult<Plan> {
        self.unnest_impl(column, false)
    }

    /// Outer unnest: empty/NULL arrays yield one row with NULL.
    pub fn unnest_outer(self, column: usize) -> EngineResult<Plan> {
        self.unnest_impl(column, true)
    }

    fn unnest_impl(self, column: usize, keep_empty: bool) -> EngineResult<Plan> {
        let mut fields = self.fields.clone();
        let f = fields
            .get_mut(column)
            .ok_or_else(|| EngineError::Plan(format!("unnest column #{column} out of range")))?;
        f.dtype = match &f.dtype {
            DataType::Array(e) => (**e).clone(),
            other => {
                return Err(EngineError::Plan(format!(
                    "unnest over non-array column '{}' of type {other}",
                    f.name
                )))
            }
        };
        Ok(Plan { kind: PlanKind::Unnest { input: Box::new(self), column, keep_empty }, fields })
    }

    pub fn sort(self, keys: Vec<SortKey>) -> Plan {
        let fields = self.fields.clone();
        Plan { kind: PlanKind::Sort { input: Box::new(self), keys }, fields }
    }

    pub fn limit(self, limit: usize) -> Plan {
        let fields = self.fields.clone();
        Plan { kind: PlanKind::Limit { input: Box::new(self), limit }, fields }
    }

    pub fn distinct(self) -> Plan {
        let fields = self.fields.clone();
        Plan { kind: PlanKind::Distinct { input: Box::new(self) }, fields }
    }

    /// UNION ALL. Inputs must have equal arity; field names/types are taken
    /// from the first input.
    pub fn union(inputs: Vec<Plan>) -> EngineResult<Plan> {
        let first = inputs.first().ok_or_else(|| EngineError::Plan("empty union".into()))?;
        let arity = first.fields.len();
        for p in &inputs {
            if p.fields.len() != arity {
                return Err(EngineError::Plan(format!(
                    "union arity mismatch: {} vs {arity}",
                    p.fields.len()
                )));
            }
        }
        let fields = first.fields.clone();
        Ok(Plan { kind: PlanKind::Union { inputs }, fields })
    }

    pub fn values(fields: Vec<Field>, rows: Vec<Row>) -> Plan {
        Plan { kind: PlanKind::Values { rows }, fields }
    }

    // ---- helpers ----------------------------------------------------------

    /// Position of an output column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Position of an output column by name, or a plan error.
    pub fn require_column(&self, name: &str) -> EngineResult<usize> {
        self.column(name).ok_or_else(|| {
            EngineError::Plan(format!(
                "column '{name}' not found in [{}]",
                self.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ")
            ))
        })
    }

    /// Multi-line indented plan rendering (EXPLAIN).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0, &|_| None);
        s
    }

    /// Like [`Plan::explain`], but appends `annot(node)` (when `Some`) to
    /// each node's line — used by the cost module to render per-node row
    /// estimates. With an always-`None` closure the output is byte-identical
    /// to `explain()`.
    pub fn explain_annotated(&self, annot: &dyn Fn(&Plan) -> Option<String>) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0, annot);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize, annot: &dyn Fn(&Plan) -> Option<String>) {
        let pad = "  ".repeat(depth);
        let suffix = annot(self).map(|a| format!(" [{a}]")).unwrap_or_default();
        match &self.kind {
            PlanKind::Scan { table, filters, projection } => {
                let _ = write!(out, "{pad}Scan {table}");
                if !filters.is_empty() {
                    let _ = write!(out, " filter=[{}]", join_exprs(filters));
                }
                if projection.is_some() {
                    let cols: Vec<&str> = self.fields.iter().map(|f| f.name.as_str()).collect();
                    let _ = write!(out, " [cols={}]", cols.join(","));
                }
                out.push_str(&suffix);
                out.push('\n');
            }
            PlanKind::IndexLookup { table, columns, keys, residual } => {
                let _ = write!(out, "{pad}IndexLookup {table} cols={columns:?} keys={}", keys.len());
                if !residual.is_empty() {
                    let _ = write!(out, " residual=[{}]", join_exprs(residual));
                }
                out.push_str(&suffix);
                out.push('\n');
            }
            PlanKind::IndexRange { table, column, lo, hi, residual } => {
                let fmt_bound = |b: &Option<(Value, bool)>| match b {
                    None => "∞".to_string(),
                    Some((v, true)) => format!("{v}="),
                    Some((v, false)) => format!("{v}"),
                };
                let _ = write!(
                    out,
                    "{pad}IndexRange {table} col=#{column} [{} .. {}]",
                    fmt_bound(lo),
                    fmt_bound(hi)
                );
                if !residual.is_empty() {
                    let _ = write!(out, " residual=[{}]", join_exprs(residual));
                }
                out.push_str(&suffix);
                out.push('\n');
            }
            PlanKind::FactorizedScan { table, side, filters } => {
                let _ = write!(out, "{pad}FactorizedScan {table} side={side:?}");
                if !filters.is_empty() {
                    let _ = write!(out, " filter=[{}]", join_exprs(filters));
                }
                out.push_str(&suffix);
                out.push('\n');
            }
            PlanKind::FactorizedCount { table } => {
                let _ = writeln!(out, "{pad}FactorizedCount {table}{suffix}");
            }
            PlanKind::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate}{suffix}");
                input.explain_into(out, depth + 1, annot);
            }
            PlanKind::Project { input, exprs } => {
                let _ = writeln!(out, "{pad}Project [{}]{suffix}", join_exprs(exprs));
                input.explain_into(out, depth + 1, annot);
            }
            PlanKind::Join { left, right, kind, left_keys, right_keys } => {
                let _ = writeln!(
                    out,
                    "{pad}Join {kind:?} on [{}] = [{}]{suffix}",
                    join_exprs(left_keys),
                    join_exprs(right_keys)
                );
                left.explain_into(out, depth + 1, annot);
                right.explain_into(out, depth + 1, annot);
            }
            PlanKind::Aggregate { input, group, aggs } => {
                let agg_names: Vec<String> =
                    aggs.iter().map(|a| format!("{:?}({})", a.func, a.arg)).collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate group=[{}] aggs=[{}]{suffix}",
                    join_exprs(group),
                    agg_names.join(", ")
                );
                input.explain_into(out, depth + 1, annot);
            }
            PlanKind::Unnest { input, column, keep_empty } => {
                let _ = writeln!(
                    out,
                    "{pad}Unnest #{column}{}{suffix}",
                    if *keep_empty { " (outer)" } else { "" }
                );
                input.explain_into(out, depth + 1, annot);
            }
            PlanKind::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort [{}]{suffix}", ks.join(", "));
                input.explain_into(out, depth + 1, annot);
            }
            PlanKind::Limit { input, limit } => {
                let _ = writeln!(out, "{pad}Limit {limit}{suffix}");
                input.explain_into(out, depth + 1, annot);
            }
            PlanKind::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct{suffix}");
                input.explain_into(out, depth + 1, annot);
            }
            PlanKind::Union { inputs } => {
                let _ = writeln!(out, "{pad}UnionAll ({}){suffix}", inputs.len());
                for i in inputs {
                    i.explain_into(out, depth + 1, annot);
                }
            }
            PlanKind::Values { rows } => {
                let _ = writeln!(out, "{pad}Values ({} rows){suffix}", rows.len());
            }
        }
    }
}

fn join_exprs(exprs: &[Expr]) -> String {
    exprs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
}

/// Best-effort static type of an expression over the given input fields.
pub fn infer_type(expr: &Expr, input: &[Field]) -> DataType {
    match expr {
        Expr::Col(i) => input.get(*i).map(|f| f.dtype.clone()).unwrap_or(DataType::Text),
        Expr::Lit(v) => v.data_type().unwrap_or(DataType::Text),
        // A parameter's type is unknown until bind time; Text is the same
        // "don't know" fallback the other arms use.
        Expr::Param(_) => DataType::Text,
        Expr::Binary { op, left, right } => {
            if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                DataType::Bool
            } else {
                match (infer_type(left, input), infer_type(right, input)) {
                    (DataType::Int, DataType::Int) => DataType::Int,
                    _ => DataType::Float,
                }
            }
        }
        Expr::Unary { op, expr } => match op {
            crate::expr::UnOp::Not => DataType::Bool,
            crate::expr::UnOp::Neg => infer_type(expr, input),
        },
        Expr::Func { func, args } => match func {
            ScalarFunc::ArrayContains => DataType::Bool,
            ScalarFunc::ArrayIntersect | ScalarFunc::Coalesce => {
                args.first().map(|a| infer_type(a, input)).unwrap_or(DataType::Text)
            }
            ScalarFunc::ArrayLen => DataType::Int,
            ScalarFunc::StructPack => DataType::Struct(
                args.iter()
                    .enumerate()
                    .map(|(i, a)| (format!("f{i}"), infer_type(a, input)))
                    .collect(),
            ),
            ScalarFunc::Concat | ScalarFunc::Lower | ScalarFunc::Upper => DataType::Text,
            ScalarFunc::Abs => args.first().map(|a| infer_type(a, input)).unwrap_or(DataType::Int),
        },
        Expr::Field { expr, index } => match infer_type(expr, input) {
            DataType::Struct(fields) => {
                fields.get(*index).map(|(_, t)| t.clone()).unwrap_or(DataType::Text)
            }
            _ => DataType::Text,
        },
        Expr::InSet { .. } | Expr::IsNull(_) | Expr::IsNotNull(_) => DataType::Bool,
    }
}

// ---- prepared-statement parameter binding ----------------------------------

/// Number of positional parameters a plan expects: one past the highest
/// `?n` placeholder anywhere in the plan (0 for a parameter-free plan).
pub fn param_count(plan: &Plan) -> usize {
    fn expr_max(e: &Expr, max: &mut Option<u16>) {
        match e {
            Expr::Param(n) => *max = Some(max.map_or(*n, |m| m.max(*n))),
            Expr::Col(_) | Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                expr_max(left, max);
                expr_max(right, max);
            }
            Expr::Unary { expr, .. }
            | Expr::Field { expr, .. }
            | Expr::InSet { expr, .. }
            | Expr::IsNull(expr)
            | Expr::IsNotNull(expr) => expr_max(expr, max),
            Expr::Func { args, .. } => {
                for a in args {
                    expr_max(a, max);
                }
            }
        }
    }
    let mut max = None;
    walk_exprs(plan, &mut |e| expr_max(e, &mut max));
    max.map(|m| m as usize + 1).unwrap_or(0)
}

/// Visit every expression in a plan tree (filters, predicates, projections,
/// join keys, sort keys, aggregate arguments — everywhere an [`Expr`] can
/// hide).
fn walk_exprs(plan: &Plan, f: &mut impl FnMut(&Expr)) {
    match &plan.kind {
        PlanKind::Scan { filters, .. } | PlanKind::FactorizedScan { filters, .. } => {
            filters.iter().for_each(&mut *f)
        }
        PlanKind::IndexLookup { residual, .. } => residual.iter().for_each(&mut *f),
        PlanKind::IndexRange { residual, .. } => residual.iter().for_each(&mut *f),
        PlanKind::FactorizedCount { .. } | PlanKind::Values { .. } => {}
        PlanKind::Filter { input, predicate } => {
            f(predicate);
            walk_exprs(input, f);
        }
        PlanKind::Project { input, exprs } => {
            exprs.iter().for_each(&mut *f);
            walk_exprs(input, f);
        }
        PlanKind::Join { left, right, left_keys, right_keys, .. } => {
            left_keys.iter().for_each(&mut *f);
            right_keys.iter().for_each(&mut *f);
            walk_exprs(left, f);
            walk_exprs(right, f);
        }
        PlanKind::Aggregate { input, group, aggs } => {
            group.iter().for_each(&mut *f);
            for a in aggs {
                f(&a.arg);
            }
            walk_exprs(input, f);
        }
        PlanKind::Unnest { input, .. }
        | PlanKind::Limit { input, .. }
        | PlanKind::Distinct { input } => walk_exprs(input, f),
        PlanKind::Sort { input, keys } => {
            for k in keys {
                f(&k.expr);
            }
            walk_exprs(input, f);
        }
        PlanKind::Union { inputs } => {
            for p in inputs {
                walk_exprs(p, f);
            }
        }
    }
}

/// Substitute every `?n` placeholder with `params[n]`, returning a bound
/// copy of the plan ready for execution. The template plan is untouched —
/// it stays in the plan cache and is re-bound per execute.
///
/// Errors if the plan references a parameter index `params` does not cover
/// or if surplus values are supplied (arity is part of the statement's
/// contract, and silently ignoring values hides caller bugs).
pub fn bind_params(plan: &Plan, params: &[Value]) -> EngineResult<Plan> {
    let expected = param_count(plan);
    if expected != params.len() {
        return Err(EngineError::Plan(format!(
            "statement expects {expected} parameter(s), got {}",
            params.len()
        )));
    }
    if expected == 0 {
        return Ok(plan.clone());
    }
    fn bind_expr(e: &Expr, params: &[Value]) -> Expr {
        match e {
            Expr::Param(n) => Expr::Lit(params[*n as usize].clone()),
            Expr::Col(_) | Expr::Lit(_) => e.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(bind_expr(left, params)),
                right: Box::new(bind_expr(right, params)),
            },
            Expr::Unary { op, expr } => {
                Expr::Unary { op: *op, expr: Box::new(bind_expr(expr, params)) }
            }
            Expr::Func { func, args } => Expr::Func {
                func: *func,
                args: args.iter().map(|a| bind_expr(a, params)).collect(),
            },
            Expr::Field { expr, index } => {
                Expr::Field { expr: Box::new(bind_expr(expr, params)), index: *index }
            }
            Expr::InSet { expr, set } => Expr::InSet {
                expr: Box::new(bind_expr(expr, params)),
                set: std::sync::Arc::clone(set),
            },
            Expr::IsNull(e) => Expr::IsNull(Box::new(bind_expr(e, params))),
            Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(bind_expr(e, params))),
        }
    }
    fn bind_plan(plan: &Plan, params: &[Value]) -> Plan {
        let bind_vec = |es: &[Expr]| es.iter().map(|e| bind_expr(e, params)).collect();
        let kind = match &plan.kind {
            PlanKind::Scan { table, filters, projection } => PlanKind::Scan {
                table: table.clone(),
                filters: bind_vec(filters),
                projection: projection.clone(),
            },
            PlanKind::IndexLookup { table, columns, keys, residual } => PlanKind::IndexLookup {
                table: table.clone(),
                columns: columns.clone(),
                keys: keys.clone(),
                residual: bind_vec(residual),
            },
            PlanKind::IndexRange { table, column, lo, hi, residual } => PlanKind::IndexRange {
                table: table.clone(),
                column: *column,
                lo: lo.clone(),
                hi: hi.clone(),
                residual: bind_vec(residual),
            },
            PlanKind::FactorizedScan { table, side, filters } => PlanKind::FactorizedScan {
                table: table.clone(),
                side: *side,
                filters: bind_vec(filters),
            },
            PlanKind::FactorizedCount { table } => {
                PlanKind::FactorizedCount { table: table.clone() }
            }
            PlanKind::Filter { input, predicate } => PlanKind::Filter {
                input: Box::new(bind_plan(input, params)),
                predicate: bind_expr(predicate, params),
            },
            PlanKind::Project { input, exprs } => PlanKind::Project {
                input: Box::new(bind_plan(input, params)),
                exprs: bind_vec(exprs),
            },
            PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
                left: Box::new(bind_plan(left, params)),
                right: Box::new(bind_plan(right, params)),
                kind: *kind,
                left_keys: bind_vec(left_keys),
                right_keys: bind_vec(right_keys),
            },
            PlanKind::Aggregate { input, group, aggs } => PlanKind::Aggregate {
                input: Box::new(bind_plan(input, params)),
                group: bind_vec(group),
                aggs: aggs
                    .iter()
                    .map(|a| AggCall { func: a.func, arg: bind_expr(&a.arg, params) })
                    .collect(),
            },
            PlanKind::Unnest { input, column, keep_empty } => PlanKind::Unnest {
                input: Box::new(bind_plan(input, params)),
                column: *column,
                keep_empty: *keep_empty,
            },
            PlanKind::Sort { input, keys } => PlanKind::Sort {
                input: Box::new(bind_plan(input, params)),
                keys: keys
                    .iter()
                    .map(|k| SortKey { expr: bind_expr(&k.expr, params), desc: k.desc })
                    .collect(),
            },
            PlanKind::Limit { input, limit } => {
                PlanKind::Limit { input: Box::new(bind_plan(input, params)), limit: *limit }
            }
            PlanKind::Distinct { input } => {
                PlanKind::Distinct { input: Box::new(bind_plan(input, params)) }
            }
            PlanKind::Union { inputs } => {
                PlanKind::Union { inputs: inputs.iter().map(|p| bind_plan(p, params)).collect() }
            }
            PlanKind::Values { rows } => PlanKind::Values { rows: rows.clone() },
        };
        Plan { kind, fields: plan.fields.clone() }
    }
    Ok(bind_plan(plan, params))
}

fn infer_agg_type(call: &AggCall, input: &[Field]) -> DataType {
    match call.func {
        AggFunc::Count | AggFunc::CountStar | AggFunc::CountDistinct => DataType::Int,
        AggFunc::Avg => DataType::Float,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => infer_type(&call.arg, input),
        AggFunc::ArrayAgg => DataType::Array(Box::new(infer_type(&call.arg, input))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_storage::{Column, Table, TableSchema};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(Table::new(TableSchema::new(
            "t",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("tags", DataType::Text.array_of()),
            ],
            vec![0],
        )))
        .unwrap();
        c
    }

    #[test]
    fn scan_fields_from_schema() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap();
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.fields[1].dtype, DataType::Text.array_of());
    }

    #[test]
    fn unnest_rewrites_field_type() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap().unnest(1).unwrap();
        assert_eq!(p.fields[1].dtype, DataType::Text);
    }

    #[test]
    fn unnest_non_array_rejected() {
        let c = cat();
        assert!(Plan::scan(&c, "t").unwrap().unnest(0).is_err());
    }

    #[test]
    fn join_concatenates_fields_semi_does_not() {
        let c = cat();
        let l = Plan::scan(&c, "t").unwrap();
        let r = Plan::scan(&c, "t").unwrap();
        let j = l.clone().join(r.clone(), JoinKind::Inner, vec![Expr::col(0)], vec![Expr::col(0)]);
        assert_eq!(j.fields.len(), 4);
        let s = l.join(r, JoinKind::Semi, vec![Expr::col(0)], vec![Expr::col(0)]);
        assert_eq!(s.fields.len(), 2);
    }

    #[test]
    fn union_arity_checked() {
        let c = cat();
        let a = Plan::scan(&c, "t").unwrap();
        let b = Plan::scan(&c, "t").unwrap().project_columns(&[0]);
        assert!(Plan::union(vec![a, b]).is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let c = cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::eq(Expr::col(0), Expr::lit(1i64)))
            .project_columns(&[0]);
        let text = p.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan t"));
    }

    #[test]
    fn infer_struct_pack_type() {
        let fields = vec![Field::new("a", DataType::Int), Field::new("b", DataType::Text)];
        let e = Expr::func(ScalarFunc::StructPack, vec![Expr::col(0), Expr::col(1)]);
        match infer_type(&e, &fields) {
            DataType::Struct(fs) => {
                assert_eq!(fs[0].1, DataType::Int);
                assert_eq!(fs[1].1, DataType::Text);
            }
            other => panic!("expected struct, got {other}"),
        }
    }
}
