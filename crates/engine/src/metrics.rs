//! Per-operator runtime metrics for the streaming executor.
//!
//! Every operator stream created by [`crate::exec::execute_streaming`]
//! carries a shared [`OpMetrics`] node. The nodes form a tree with the same
//! shape as the physical plan; counters are plain atomics so leaf scans can
//! update them from morsel worker threads without locking. A cheap
//! [`OpMetrics::snapshot`] turns the live tree into a plain [`ExecMetrics`]
//! value that can be returned to callers (`EXPLAIN ANALYZE`-style) at any
//! point — including mid-stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Live (atomic) metrics for one operator in a running query.
///
/// `rows_in` is only written by leaf operators (rows *examined* by a scan,
/// before filters); for interior operators the input cardinality is derived
/// at snapshot time as the sum of the children's `rows_out`, because a pull
/// executor's parent consumes exactly what its children emit.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Operator label, e.g. `"Scan emp"` or `"Join Inner"`.
    pub name: String,
    /// Rows examined by a leaf (scans count rows visited before filtering).
    pub rows_in: AtomicU64,
    /// Rows emitted by this operator.
    pub rows_out: AtomicU64,
    /// Batches emitted by this operator.
    pub batches: AtomicU64,
    /// Wall-clock nanoseconds spent inside `next_batch`, inclusive of
    /// children (each child reports its own inclusive time too).
    pub elapsed_ns: AtomicU64,
    /// Parallel waves executed by this operator (a wave is one batch of
    /// morsels/chunks dispatched to the worker pool together).
    pub waves: AtomicU64,
    /// Peak number of distinct workers observed participating in one wave
    /// (incl. the submitting thread). `0` for purely serial operators.
    pub workers: AtomicU64,
    /// `true` when this operator was fused into the morsel workers of the
    /// scan below it (pipeline fusion) instead of running as its own
    /// serial post-pass.
    pub fused: AtomicBool,
    /// `true` when this operator executed on the columnar (vectorized)
    /// path: selection-vector kernels over typed column slices instead of
    /// per-row `Value` evaluation over cloned rows.
    pub columnar: AtomicBool,
    /// Child operators, in plan order.
    pub children: Vec<Arc<OpMetrics>>,
}

impl OpMetrics {
    pub fn new(name: impl Into<String>, children: Vec<Arc<OpMetrics>>) -> Arc<OpMetrics> {
        Arc::new(OpMetrics { name: name.into(), children, ..OpMetrics::default() })
    }

    pub fn add_rows_in(&self, n: u64) {
        self.rows_in.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_batch(&self, rows: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.rows_out.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn add_elapsed_ns(&self, ns: u64) {
        self.elapsed_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one parallel wave that engaged `workers` distinct threads.
    pub fn record_wave(&self, workers: u64) {
        self.waves.fetch_add(1, Ordering::Relaxed);
        self.workers.fetch_max(workers, Ordering::Relaxed);
    }

    /// Mark this operator as pipeline-fused into the scan's morsel workers.
    pub fn mark_fused(&self) {
        self.fused.store(true, Ordering::Relaxed);
    }

    /// Mark this operator as having run on the columnar (vectorized) path.
    pub fn mark_columnar(&self) {
        self.columnar.store(true, Ordering::Relaxed);
    }

    /// Freeze the tree into a plain value.
    pub fn snapshot(&self) -> ExecMetrics {
        let children: Vec<ExecMetrics> = self.children.iter().map(|c| c.snapshot()).collect();
        let rows_in = if children.is_empty() {
            self.rows_in.load(Ordering::Relaxed)
        } else {
            children.iter().map(|c| c.rows_out).sum()
        };
        ExecMetrics {
            name: self.name.clone(),
            rows_in,
            rows_out: self.rows_out.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            elapsed_ns: self.elapsed_ns.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            fused: self.fused.load(Ordering::Relaxed),
            columnar: self.columnar.load(Ordering::Relaxed),
            est_rows: None,
            children,
        }
    }
}

/// A frozen, plan-shaped metrics tree (one node per operator).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecMetrics {
    pub name: String,
    /// Rows consumed: for leaves, rows examined by the scan; for interior
    /// nodes, the sum of children `rows_out`.
    pub rows_in: u64,
    pub rows_out: u64,
    pub batches: u64,
    /// Inclusive wall-clock time spent in this operator's `next_batch`.
    pub elapsed_ns: u64,
    /// Parallel waves executed (0 when the operator never used the pool).
    pub waves: u64,
    /// Peak distinct workers participating in one wave (0 = serial).
    pub workers: u64,
    /// Whether this operator was pipeline-fused into the scan's morsel
    /// workers rather than running as its own serial pass.
    pub fused: bool,
    /// Whether this operator ran on the columnar (vectorized) path.
    pub columnar: bool,
    /// Optimizer row estimate for this operator, attached after execution by
    /// [`crate::cost::annotate_metrics`] when statistics were gathered.
    /// `None` when no estimate was derivable (no ANALYZE, phantom tables).
    pub est_rows: Option<f64>,
    pub children: Vec<ExecMetrics>,
}

impl ExecMetrics {
    /// Depth-first search for the first node whose name starts with `prefix`.
    pub fn find(&self, prefix: &str) -> Option<&ExecMetrics> {
        if self.name.starts_with(prefix) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(prefix))
    }

    /// All leaf nodes (scans / values) in plan order.
    pub fn leaves(&self) -> Vec<&ExecMetrics> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a ExecMetrics>) {
        if self.children.is_empty() {
            out.push(self);
        } else {
            for c in &self.children {
                c.collect_leaves(out);
            }
        }
    }

    /// Multi-line indented rendering, mirroring `Plan::explain`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s, 0);
        s
    }

    /// Estimate-vs-actual q-error for this node: `max(est/actual,
    /// actual/est)` with both sides floored at one row. `None` when no
    /// estimate is attached.
    pub fn q_error(&self) -> Option<f64> {
        let est = self.est_rows?.max(1.0);
        let actual = (self.rows_out as f64).max(1.0);
        Some((est / actual).max(actual / est))
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        let _ = write!(
            out,
            "{pad}{} rows_in={} rows_out={} batches={} time={:.3}ms",
            self.name,
            self.rows_in,
            self.rows_out,
            self.batches,
            self.elapsed_ns as f64 / 1e6,
        );
        if self.workers > 0 {
            let _ = write!(out, " workers={} waves={}", self.workers, self.waves);
        }
        if self.fused {
            out.push_str(" [fused]");
        }
        if self.columnar {
            out.push_str(" [columnar]");
        }
        if let (Some(est), Some(q)) = (self.est_rows, self.q_error()) {
            let _ = write!(out, " est={est:.0} q={q:.2}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_interior_rows_in_from_children() {
        let leaf = OpMetrics::new("Scan t", vec![]);
        leaf.add_rows_in(100);
        leaf.record_batch(40);
        let root = OpMetrics::new("Filter", vec![Arc::clone(&leaf)]);
        root.record_batch(7);
        let snap = root.snapshot();
        assert_eq!(snap.rows_in, 40, "interior input = child output");
        assert_eq!(snap.rows_out, 7);
        assert_eq!(snap.children[0].rows_in, 100, "leaf input = rows examined");
        assert_eq!(snap.find("Scan").unwrap().rows_out, 40);
        assert_eq!(snap.leaves().len(), 1);
        assert!(snap.render().contains("Filter"));
    }

    #[test]
    fn waves_track_peak_workers_and_render() {
        let leaf = OpMetrics::new("Scan t", vec![]);
        leaf.record_wave(3);
        leaf.record_wave(2);
        let filt = OpMetrics::new("Filter", vec![Arc::clone(&leaf)]);
        filt.mark_fused();
        let snap = filt.snapshot();
        assert_eq!(snap.children[0].waves, 2);
        assert_eq!(snap.children[0].workers, 3, "workers is the per-wave peak");
        assert!(snap.fused);
        assert!(!snap.children[0].fused);
        let rendered = snap.render();
        assert!(rendered.contains("workers=3 waves=2"), "{rendered}");
        assert!(rendered.contains("[fused]"), "{rendered}");
    }
}
