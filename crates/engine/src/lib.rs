//! # erbium-engine
//!
//! The relational query engine running over [`erbium_storage`].
//!
//! This is the execution half of the substrate that replaces PostgreSQL in
//! the paper's prototype. It evaluates [`Plan`]s — logical operator trees —
//! against a [`erbium_storage::Catalog`]:
//!
//! * typed scalar [`expr`]essions with SQL three-valued logic, array
//!   functions (`unnest` support, containment, intersection) and struct
//!   field access, because the E/R mappings produce physical tables with
//!   array and composite columns;
//! * [`agg`]regates including `array_agg` + struct packing, which is how
//!   the ERQL `NEST(...)` hierarchical output clause is lowered;
//! * [`plan`] nodes: scans (with pushed-down filters and index lookups),
//!   hash joins (inner / left outer / semi), aggregation, unnest, union,
//!   sort/limit/distinct, and **factorized scans** over multi-relation
//!   structures with aggregate pushdown through the join;
//! * a rule-based [`optimizer`] (constant folding, filter splitting and
//!   pushdown, filter cost-rank ordering, index-lookup selection,
//!   trivial-projection elision) with **cost-based passes** layered on top
//!   when the catalog has ANALYZE-gathered statistics: hash-join build-side
//!   selection, greedy join reordering and selectivity-ranked filters, all
//!   driven by the [`cost`] cardinality estimator;
//! * a pull-based [`stream`]ing [`exec`]utor: every operator is a
//!   [`stream::RowStream`] pulling batches from its children and `LIMIT`
//!   terminates its input early. Parallel work — morsel-parallel leaf scans
//!   with Filter/Project chains *fused* into the scan workers, hash-join
//!   build and probe, and partial aggregation — is dispatched in waves to a
//!   shared persistent [`pool::WorkerPool`] (lazily spawned, reused across
//!   pulls and queries; no per-wave thread spawn), with bit-identical
//!   results at any thread count; every operator node records
//!   [`metrics::ExecMetrics`] (`EXPLAIN ANALYZE`-style, including workers /
//!   waves / fusion markers) as it runs.

pub mod agg;
pub mod cost;
pub mod error;
pub mod exec;
pub mod expr;
pub mod metrics;
pub mod optimizer;
pub mod plan;
pub mod plan_cache;
pub mod pool;
pub mod stream;
pub mod vector;
pub mod vplan;

pub use agg::{AggCall, AggFunc};
pub use cost::{annotate_metrics, estimate, explain_with_estimates, ColEst, Estimate};
pub use error::{EngineError, EngineResult};
pub use exec::{
    default_threads, execute, execute_optimized, execute_streaming, execute_with_metrics,
    ExecContext, QueryStream,
};
pub use expr::{BinOp, Expr, ScalarFunc, UnOp};
pub use metrics::{ExecMetrics, OpMetrics};
pub use plan::{bind_params, param_count, Field, JoinKind, Plan, PlanKind, SortKey};
pub use plan_cache::{normalize_sql, PlanCache, PlanCacheStats};
pub use pool::WorkerPool;
pub use stream::{BoxedRowStream, RowStream};
