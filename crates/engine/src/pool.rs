//! Shared, lazily-initialized executor worker pool.
//!
//! The first streaming executor (PR 1) parallelized leaf scans and
//! hash-join builds by spawning *fresh scoped threads for every wave of
//! every pull* — thread creation and teardown sat directly on the hot
//! path, once per `next_batch` of every morsel-driven operator. This
//! module replaces that with a process-wide pool of long-lived workers
//! ([`WorkerPool::global`]) that is reused across pulls, across operators,
//! and across queries.
//!
//! ## Scoped-borrow-safe job submission
//!
//! Executor jobs borrow non-`'static` data: tables borrowed from the
//! catalog, filter expressions borrowed from the plan, per-wave output
//! buffers borrowed from the operator. Long-lived workers, however, can
//! only be handed `'static` jobs. [`WorkerPool::run_scoped`] bridges the
//! two the same way `std::thread::scope` does: the submitting thread
//! **blocks until every job of the wave has finished**, so the jobs can
//! never outlive the borrows they capture, and the lifetime can be erased
//! at the pool boundary. The submitter does not merely wait — it
//! participates, draining jobs from its own wave, which both removes one
//! thread of latency and makes nested submission deadlock-free (a wave
//! can always be finished by the thread that submitted it, even when
//! every pool worker is busy).
//!
//! ## Determinism
//!
//! `run_scoped` returns results **in submission order** regardless of
//! which thread ran which job or in which order they finished. Callers
//! that reassemble morsel outputs in submission order therefore produce
//! bit-identical results at every thread count.
//!
//! ## Panics
//!
//! A panicking job never poisons the pool or hangs the wave: the panic is
//! caught at the job boundary, its payload message is captured, and the
//! submitter receives `Err(message)` for that job while every other job
//! completes normally.
//!
//! The pool is intentionally the **only** thread-spawn site in the engine
//! (`scripts/check.sh` enforces this), and no worker is ever spawned
//! until some query actually requests parallelism — `threads = 1`
//! executions never touch this module.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Hard cap on pool workers, whatever `ExecContext::threads` asks for.
/// Requests beyond the cap still complete — excess jobs queue and run as
/// workers free up (plus on the submitting thread itself).
pub const MAX_WORKERS: usize = 64;

/// A type-erased wave job. Jobs write their own result into a slot owned
/// by the submitting stack frame; see [`WorkerPool::run_scoped`].
type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Shared state of one in-flight wave ("scope"): the not-yet-started jobs
/// plus the bookkeeping the submitter blocks on.
struct ScopeCore<'scope> {
    /// Jobs not yet claimed by any thread.
    pending: Mutex<VecDeque<Job<'scope>>>,
    /// Jobs not yet *finished* (claimed included). Guards the `done`
    /// condvar.
    remaining: Mutex<usize>,
    done: Condvar,
    /// Distinct threads that executed at least one job of this wave
    /// (submitter included) — surfaced as `workers` in `ExecMetrics`.
    participants: Mutex<Vec<thread::ThreadId>>,
}

impl ScopeCore<'_> {
    /// Claim and run one pending job. Returns `false` when none were left
    /// to claim (another thread may still be *running* one).
    fn run_one(&self) -> bool {
        let job = { self.pending.lock().expect("pool lock").pop_front() };
        let Some(job) = job else { return false };
        {
            let mut p = self.participants.lock().expect("pool lock");
            let id = thread::current().id();
            if !p.contains(&id) {
                p.push(id);
            }
        }
        // Jobs are already panic-wrapped at submission (they record their
        // own panic payload); this outer guard only ensures the
        // `remaining` count still reaches zero if that wrapping itself
        // ever failed, so a submitter can never be left waiting forever.
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let mut rem = self.remaining.lock().expect("pool lock");
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
        drop(rem);
        debug_assert!(outcome.is_ok(), "wave jobs are panic-wrapped at submission");
        true
    }

    /// Block until every job of the wave has finished.
    fn wait_done(&self) {
        let mut rem = self.remaining.lock().expect("pool lock");
        while *rem > 0 {
            rem = self.done.wait(rem).expect("pool lock");
        }
    }
}

/// Wave handles crossing into long-lived workers have their borrow
/// lifetime erased; soundness is argued in [`WorkerPool::run_scoped`].
type ScopeHandle = Arc<ScopeCore<'static>>;

struct PoolState {
    /// One entry per claimable job of each submitted wave. Entries whose
    /// wave was already drained by the submitter are no-ops.
    queue: VecDeque<ScopeHandle>,
    /// Workers spawned so far (monotone, `<= MAX_WORKERS`).
    workers: usize,
}

/// A persistent pool of executor worker threads. See the module docs.
pub struct WorkerPool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

fn m_pool_waves() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_pool_waves_total", "Job waves submitted to the executor pool")
    })
}

fn m_pool_jobs() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_pool_jobs_total", "Individual jobs run by the executor pool")
    })
}

fn m_pool_workers() -> &'static erbium_obs::Gauge {
    static H: std::sync::OnceLock<Arc<erbium_obs::Gauge>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .gauge("erbium_pool_workers", "Executor worker threads spawned (never shrinks)")
    })
}

fn m_pool_queue_depth() -> &'static erbium_obs::Gauge {
    static H: std::sync::OnceLock<Arc<erbium_obs::Gauge>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().gauge(
            "erbium_pool_queue_depth",
            "High-water mark of the executor pool's pending-wave queue",
        )
    })
}

impl WorkerPool {
    /// The process-wide pool shared by every query of every database in
    /// the process. Created empty; workers are spawned lazily on first
    /// parallel wave and then live for the rest of the process, parked on
    /// a condvar while idle.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| WorkerPool {
            state: Mutex::new(PoolState { queue: VecDeque::new(), workers: 0 }),
            work_ready: Condvar::new(),
        })
    }

    /// Number of workers spawned so far (diagnostics only).
    pub fn workers(&self) -> usize {
        self.state.lock().expect("pool lock").workers
    }

    /// Grow the pool to at least `target` workers (capped at
    /// [`MAX_WORKERS`]). Never shrinks.
    fn ensure_workers(&'static self, target: usize) {
        let target = target.min(MAX_WORKERS);
        let mut st = self.state.lock().expect("pool lock");
        while st.workers < target {
            let idx = st.workers;
            st.workers += 1;
            thread::Builder::new()
                .name(format!("erbium-exec-{idx}"))
                .spawn(move || self.worker_loop())
                .expect("spawn executor worker");
        }
        m_pool_workers().record_max(st.workers as i64);
    }

    fn worker_loop(&self) {
        loop {
            let scope = {
                let mut st = self.state.lock().expect("pool lock");
                loop {
                    if let Some(s) = st.queue.pop_front() {
                        break s;
                    }
                    st = self.work_ready.wait(st).expect("pool lock");
                }
            };
            scope.run_one();
        }
    }

    /// Run a wave of jobs to completion, in parallel when workers are
    /// available, and return per-job results **in submission order** plus
    /// the number of distinct threads that participated.
    ///
    /// Jobs may borrow any data that outlives this call (tables, plan
    /// expressions, `&mut` output buffers): like `std::thread::scope`,
    /// this function does not return until every job has run and been
    /// dropped, which is what makes erasing the borrow lifetime at the
    /// pool boundary sound — a straggler worker that later pops this
    /// wave's handle off the queue only ever observes an empty job list.
    ///
    /// A job that panics yields `Err(payload_message)` in its slot; the
    /// remaining jobs are unaffected.
    pub fn run_scoped<T, F>(&'static self, tasks: Vec<F>) -> (Vec<Result<T, String>>, usize)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        // Wave accounting: a handful of relaxed atomic adds (plus one
        // relaxed load for the disabled-span check) — cheap enough to sit
        // on the per-wave path; the `morsel_waves` sentinel bench enforces
        // that this stays within noise.
        m_pool_waves().inc();
        m_pool_jobs().add(n as u64);
        let _span = erbium_obs::span("pool_wave");
        if n == 1 {
            // Nothing to fan out: run inline, skip all queue traffic.
            let f = tasks.into_iter().next().expect("n == 1");
            let r = catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p));
            return (vec![r], 1);
        }
        self.ensure_workers(n - 1); // the submitter is the n-th worker

        type Slot<T> = Mutex<Option<Result<T, String>>>;
        let slots: Vec<Slot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        let core = Arc::new(ScopeCore {
            pending: Mutex::new(VecDeque::with_capacity(n)),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            participants: Mutex::new(Vec::new()),
        });
        {
            let mut pending = core.pending.lock().expect("pool lock");
            for (slot, f) in slots.iter().zip(tasks) {
                pending.push_back(Box::new(move || {
                    let r = catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p));
                    *slot.lock().expect("pool lock") = Some(r);
                }));
            }
        }
        // Erase the borrow lifetime so the handle can sit in the
        // long-lived queue. Sound because `wait_done` below blocks until
        // every job has been consumed and dropped (see doc comment).
        let handle: ScopeHandle = unsafe {
            std::mem::transmute::<Arc<ScopeCore<'_>>, Arc<ScopeCore<'static>>>(Arc::clone(&core))
        };
        {
            let mut st = self.state.lock().expect("pool lock");
            // n-1 claimable entries for workers; the submitter claims the
            // rest itself below.
            for _ in 0..n - 1 {
                st.queue.push_back(Arc::clone(&handle));
            }
            m_pool_queue_depth().record_max(st.queue.len() as i64);
        }
        self.work_ready.notify_all();
        // Participate: drain jobs from our own wave until none are left,
        // then wait for stragglers still running on workers.
        while core.run_one() {}
        core.wait_done();
        let workers_used = core.participants.lock().expect("pool lock").len();
        // Every job has been consumed and dropped at this point, so the
        // scope core no longer holds any borrow of `slots`; drop our typed
        // handle before moving the slots out (stragglers may briefly keep
        // the type-erased `handle` alive, but only to observe an empty
        // job list).
        drop(core);
        let results = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("pool lock")
                    .unwrap_or_else(|| Err("executor job produced no result".into()))
            })
            .collect();
        (results, workers_used)
    }
}

/// Best-effort extraction of a panic payload message (`panic!("...")`
/// payloads are `&str` or `String`; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::global();
        let tasks: Vec<_> = (0..32usize).map(|i| move || i * i).collect();
        let (results, workers) = pool.run_scoped(tasks);
        let got: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
        assert!(workers >= 1);
    }

    #[test]
    fn jobs_can_borrow_non_static_data() {
        let data: Vec<i64> = (0..100).collect();
        let chunks: Vec<&[i64]> = data.chunks(10).collect();
        let pool = WorkerPool::global();
        let tasks: Vec<_> =
            chunks.into_iter().map(|c| move || c.iter().sum::<i64>()).collect();
        let (results, _) = pool.run_scoped(tasks);
        let total: i64 = results.into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(total, (0..100).sum::<i64>());
    }

    #[test]
    fn panic_payload_is_propagated_without_hanging_the_wave() {
        let pool = WorkerPool::global();
        let tasks: Vec<Box<dyn FnOnce() -> i64 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("morsel 7 exploded: bad value")),
            Box::new(|| 3),
        ];
        let (results, _) = pool.run_scoped(tasks);
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[2], Ok(3));
        let msg = results[1].as_ref().unwrap_err();
        assert!(msg.contains("morsel 7 exploded"), "payload lost: {msg}");
    }

    #[test]
    fn pool_is_reused_and_never_exceeds_the_cap() {
        let pool = WorkerPool::global();
        for _ in 0..8 {
            let tasks: Vec<_> = (0..4).map(|i| move || i).collect();
            let (r, _) = pool.run_scoped(tasks);
            assert_eq!(r.len(), 4);
        }
        assert!(pool.workers() <= MAX_WORKERS);
    }

    #[test]
    fn single_job_runs_inline_without_touching_the_queue() {
        let pool = WorkerPool::global();
        let before = pool.workers();
        let (r, workers) = pool.run_scoped(vec![|| 42]);
        assert_eq!(r, vec![Ok(42)]);
        assert_eq!(workers, 1);
        assert_eq!(pool.workers(), before, "inline path must not spawn");
    }

    #[test]
    fn mutable_borrows_of_disjoint_buffers_work() {
        let mut bufs: Vec<Vec<i64>> = vec![Vec::new(); 8];
        let pool = WorkerPool::global();
        let tasks: Vec<_> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| {
                move || {
                    for k in 0..10 {
                        b.push((i * 10 + k) as i64);
                    }
                }
            })
            .collect();
        let (results, _) = pool.run_scoped(tasks);
        assert!(results.into_iter().all(|r| r.is_ok()));
        let flat: Vec<i64> = bufs.concat();
        assert_eq!(flat, (0..80).collect::<Vec<_>>());
    }
}
