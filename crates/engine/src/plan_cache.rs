//! A bounded LRU cache of optimized plans.
//!
//! Parsing, lowering, and cost-based optimization are pure functions of
//! three inputs: the SQL text, the installed schema/mapping, and the
//! gathered statistics. The cache therefore keys entries on
//! `(generation, normalized SQL)`, where *generation* is a counter the
//! database layer bumps on anything that could change plan shape — schema
//! install/evolve, remap, rollback, ANALYZE, governance policy change.
//! Invalidation is a generation bump plus a purge: there is no per-entry
//! dependency tracking to get wrong, and snapshots that pinned an older
//! generation keep planning (and caching) against it without polluting the
//! writer's entries.
//!
//! Plain CRUD deliberately does **not** invalidate: the optimizer reads
//! gathered statistics only (writes mark them stale but they are still
//! served until the next ANALYZE), so replanning after a write would
//! produce the identical plan the cache already holds.
//!
//! Normalization collapses whitespace runs so trivially reformatted
//! repeats of a query share an entry. Case is preserved — string literals
//! are case-significant, and folding identifiers only would require a
//! lexer pass that costs a good fraction of what the cache saves.

use crate::plan::Plan;
use std::sync::Mutex;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn m_hits() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_plan_cache_hits_total", "Plan cache lookups served from cache")
    })
}

fn m_misses() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_plan_cache_misses_total", "Plan cache lookups that had to plan")
    })
}

fn m_invalidations() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_plan_cache_invalidations_total",
            "Plan cache generation bumps (schema/mapping/stats/policy changes)",
        )
    })
}

fn m_entries() -> &'static erbium_obs::Gauge {
    static H: std::sync::OnceLock<Arc<erbium_obs::Gauge>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .gauge("erbium_plan_cache_entries", "Plans currently held in the plan cache")
    })
}

/// Collapse whitespace runs to single spaces and trim, so reformatted
/// repeats of one query share a cache entry. Case and everything inside
/// single-quoted string literals are preserved byte-for-byte — collapsing
/// a literal's spaces would key `'A  B'` and `'A B'` to the same plan.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_ws = true; // leading whitespace is dropped
    let mut in_str = false;
    for ch in sql.chars() {
        if in_str {
            out.push(ch);
            if ch == '\'' {
                // Closes the literal; a doubled quote ('') re-enters on the
                // next char, so escaped quotes stay inside by pairing.
                in_str = false;
            }
            continue;
        }
        if ch == '\'' {
            out.push(ch);
            in_str = true;
            in_ws = false;
        } else if ch.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(ch);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[derive(Debug)]
struct Entry {
    plan: Arc<Plan>,
    /// Last-use tick for LRU eviction.
    tick: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: FxHashMap<(u64, String), Entry>,
    tick: u64,
}

/// Per-instance hit/miss/invalidation statistics (tests and ablations read
/// these; the global `erbium_plan_cache_*` metrics aggregate across all
/// databases in the process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub entries: usize,
}

/// The cache. Cheap to share (`Arc<PlanCache>`); one per database.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    generation: AtomicU64,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

/// Default number of cached plans. Plans are small (an operator tree); the
/// bound exists to keep pathological workloads (unique SQL per query) from
/// growing without limit, not to economize memory.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            generation: AtomicU64::new(0),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The current generation. Read views capture this at publish time so
    /// snapshot queries hit entries planned against the same schema +
    /// stats they were pinned with.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Look up a plan for `sql` under `generation`. Counts a hit or miss.
    pub fn get(&self, generation: u64, sql: &str) -> Option<Arc<Plan>> {
        let key = (generation, normalize_sql(sql));
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some(e) => {
                e.tick = tick;
                let plan = Arc::clone(&e.plan);
                self.hits.fetch_add(1, Ordering::Relaxed);
                m_hits().inc();
                Some(plan)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                m_misses().inc();
                None
            }
        }
    }

    /// Insert a freshly built plan under `generation`, evicting the least
    /// recently used entry when full.
    pub fn insert(&self, generation: u64, sql: &str, plan: Arc<Plan>) {
        let key = (generation, normalize_sql(sql));
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            // O(n) min-tick scan: the capacity is small and eviction only
            // runs once the cache is full, so this beats the bookkeeping of
            // an intrusive LRU list at this size.
            if let Some(victim) =
                inner.entries.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(key, Entry { plan, tick });
        m_entries().set(inner.entries.len() as i64);
    }

    /// Anything that can change plan shape happened (schema change, remap,
    /// rollback, ANALYZE, policy change): bump the generation and drop all
    /// entries. Queries planned after this miss once and repopulate.
    pub fn invalidate(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        self.generation.fetch_add(1, Ordering::AcqRel);
        inner.entries.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        m_invalidations().inc();
        m_entries().set(0);
    }

    /// Per-instance counters (see [`PlanCacheStats`]).
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap_or_else(|p| p.into_inner()).entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Field, Plan};

    fn plan(marker: &str) -> Arc<Plan> {
        Arc::new(Plan::values(
            vec![Field::new(marker, erbium_storage::DataType::Int)],
            Vec::new(),
        ))
    }

    fn marker(p: &Plan) -> &str {
        &p.fields[0].name
    }

    #[test]
    fn normalize_collapses_whitespace_only() {
        assert_eq!(normalize_sql("  SELECT  *\n\tFROM t  "), "SELECT * FROM t");
        assert_eq!(
            normalize_sql("SELECT  'A  B'  FROM t"),
            "SELECT 'A  B' FROM t",
            "whitespace inside a string literal is data, not formatting"
        );
        assert_eq!(
            normalize_sql("SELECT 'it''s  ok'  , x FROM t"),
            "SELECT 'it''s  ok' , x FROM t",
            "doubled-quote escape keeps the literal open"
        );
        assert_eq!(normalize_sql("select x from t"), "select x from t", "case preserved");
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = PlanCache::default();
        let g = c.generation();
        assert!(c.get(g, "SELECT * FROM t").is_none());
        c.insert(g, "SELECT * FROM t", plan("t"));
        let got = c.get(g, "select * from t");
        assert!(got.is_none(), "case differs: distinct entry");
        let got = c.get(g, "SELECT  *  FROM   t").expect("whitespace-insensitive hit");
        assert_eq!(marker(&got), "t");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn invalidate_bumps_generation_and_purges() {
        let c = PlanCache::default();
        let g0 = c.generation();
        c.insert(g0, "q", plan("t"));
        c.invalidate();
        let g1 = c.generation();
        assert_eq!(g1, g0 + 1);
        assert!(c.get(g1, "q").is_none(), "new generation misses");
        assert!(c.get(g0, "q").is_none(), "old entries purged too");
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = PlanCache::with_capacity(2);
        let g = c.generation();
        c.insert(g, "a", plan("a"));
        c.insert(g, "b", plan("b"));
        assert!(c.get(g, "a").is_some(), "touch a so b is the LRU");
        c.insert(g, "c", plan("c"));
        assert!(c.get(g, "a").is_some());
        assert!(c.get(g, "b").is_none(), "b evicted");
        assert!(c.get(g, "c").is_some());
        assert_eq!(c.stats().entries, 2);
    }
}
