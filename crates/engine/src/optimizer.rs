//! Rule-based plan optimizer.
//!
//! Passes, applied in order:
//!
//! 1. **Constant folding** — evaluate column-free subexpressions.
//! 2. **Filter normalization & pushdown** — split conjunctions; merge
//!    adjacent filters; push predicates through projections (by inlining
//!    the projected expressions), into the matching side of joins, into
//!    all branches of unions, and finally into scans.
//! 3. **Index selection** — a scan filtered by `col = literal` or
//!    `col IN <set>` turns into an [`PlanKind::IndexLookup`] when the table
//!    has an index on exactly that column.
//! 4. **Cost-based passes** — only when the catalog carries
//!    ANALYZE-gathered statistics (see [`crate::cost`]): greedy reordering
//!    of inner-join chains ([`reorder_joins`]) and hash-join build-side
//!    selection ([`choose_build_side`]). Both are strict no-ops on an
//!    un-analyzed catalog.
//! 5. **Projection pruning** — stacked bare-column `Project`s collapse
//!    into one ([`collapse_projects`] — the SQL lowering emits identity
//!    shapes that would otherwise hide the scan), then a
//!    `Project`/`Aggregate` over a (filtered) scan narrows the scan to
//!    the columns the subtree actually reads, so untouched columns are
//!    never materialized (`EXPLAIN` shows the kept set as `[cols=...]`).
//! 6. **Filter cost ranking** — order conjunct lists cheapest-first;
//!    with statistics the rank is weighted by estimated selectivity.
//!
//! The paper's argument for logical independence rests on the system (not
//! the user) being able to exploit physical choices like indexes and
//! pushed-down predicates regardless of the mapping; this module is where
//! that happens for the relational substrate.

use crate::agg::AggCall;
use crate::cost;
use crate::error::EngineResult;
use crate::expr::{BinOp, Expr};
use crate::plan::{FactorizedSide, Field, JoinKind, Plan, PlanKind};
use erbium_storage::{Catalog, Value};

fn m_stats_missing() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_optimizer_stats_missing_total",
            "Optimizations that skipped the cost-based passes because the \
             catalog carried no statistics (run ANALYZE, or investigate \
             stats loss across restarts)",
        )
    })
}

fn m_cbo_applied() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<std::sync::Arc<erbium_obs::Counter>> =
        std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_optimizer_cbo_applied_total",
            "Optimizations where the cost-based passes ran over gathered statistics",
        )
    })
}

/// Run all optimizer passes.
pub fn optimize(plan: Plan, cat: &Catalog) -> EngineResult<Plan> {
    let _span = erbium_obs::span("optimize");
    let plan = fold_constants(plan)?;
    let plan = push_filters(plan)?;
    let plan = select_indexes(plan, cat)?;
    // The cost-based passes are strict no-ops without statistics. That
    // degradation must be *visible*: a database whose stats were lost (the
    // classic case being a recovery path that failed to restore them) would
    // otherwise silently plan every query on the heuristic paths. The
    // `stats_missing` counter is the alarm wire for exactly that drift.
    let plan = if cat.stats().is_empty() {
        m_stats_missing().inc();
        plan
    } else {
        m_cbo_applied().inc();
        let plan = reorder_joins(plan, cat);
        choose_build_side(plan, cat)
    };
    Ok(rank_filters(prune_projections(collapse_projects(plan)), cat))
}

// ---- projection pruning ------------------------------------------------------

/// Collapse a `Project` (or `Aggregate`) sitting on a `Project` whose
/// expressions are a pure column selection (every one a bare
/// `Expr::Col`), remapping the consumer's expressions into the inner
/// input's column space. The SQL lowering emits identity-shaped projects
/// (mapping views, `SELECT`-list shaping) that would otherwise hide the
/// `Filter*`·`Scan` chain from projection pruning below. A bare-column
/// project computes nothing and cannot error, so inlining it is always
/// safe; projects with computed expressions are left alone (inlining
/// could duplicate work into several consumer references).
fn collapse_projects(plan: Plan) -> Plan {
    fn bare_map(input: &Plan) -> Option<Vec<usize>> {
        let PlanKind::Project { exprs, .. } = &input.kind else { return None };
        exprs
            .iter()
            .map(|e| if let Expr::Col(c) = e { Some(*c) } else { None })
            .collect()
    }
    let Plan { kind, fields } = map_children(plan, &collapse_projects);
    match kind {
        PlanKind::Project { input, exprs } => {
            let Some(map) = bare_map(&input) else {
                return Plan { kind: PlanKind::Project { input, exprs }, fields };
            };
            let PlanKind::Project { input: grand, .. } = input.kind else { unreachable!() };
            let exprs = exprs.into_iter().map(|e| e.map_columns(&|c| map[c])).collect();
            // Re-run on the rewritten node: three or more stacked
            // projects collapse pairwise from the bottom up.
            collapse_projects(Plan { kind: PlanKind::Project { input: grand, exprs }, fields })
        }
        PlanKind::Aggregate { input, group, aggs } => {
            let Some(map) = bare_map(&input) else {
                return Plan { kind: PlanKind::Aggregate { input, group, aggs }, fields };
            };
            let PlanKind::Project { input: grand, .. } = input.kind else { unreachable!() };
            let group = group.into_iter().map(|e| e.map_columns(&|c| map[c])).collect();
            let aggs = aggs
                .into_iter()
                .map(|a| AggCall { func: a.func, arg: a.arg.map_columns(&|c| map[c]) })
                .collect();
            collapse_projects(Plan { kind: PlanKind::Aggregate { input: grand, group, aggs }, fields })
        }
        kind => Plan { kind, fields },
    }
}

/// Prune scan materialization to the columns the query actually reads.
///
/// A `Project` or `Aggregate` sitting on a `Scan` — possibly through a
/// chain of `Filter`s — names every column the subtree will ever touch.
/// This pass computes that set, sets the scan's `projection` to it (so
/// the executor never materializes the untouched columns; `EXPLAIN`
/// surfaces the set as `[cols=...]`), and remaps every expression above
/// the scan into the pruned column space. The scan's own pushed-down
/// `filters` stay in the table's column space: they are evaluated against
/// borrowed full-width rows *before* materialization, so a filter-only
/// column costs nothing and is not added to the set. Scans under joins,
/// unnests, and sorts are left unpruned — those consumers take whole
/// rows. An empty set is legal (`COUNT(*)` materializes zero-width rows).
pub fn prune_projections(plan: Plan) -> Plan {
    let plan = map_children(plan, &prune_projections);
    let fields = plan.fields;
    let kind = match plan.kind {
        PlanKind::Project { input, exprs } => {
            let needed: Vec<usize> = columns_of(exprs.iter());
            match prune_chain(*input, needed) {
                Ok((input, remap)) => PlanKind::Project {
                    input: Box::new(input),
                    exprs: exprs.iter().map(|e| e.map_columns(&remap)).collect(),
                },
                Err(input) => PlanKind::Project { input: Box::new(input), exprs },
            }
        }
        PlanKind::Aggregate { input, group, aggs } => {
            let needed: Vec<usize> = columns_of(group.iter().chain(aggs.iter().map(|a| &a.arg)));
            match prune_chain(*input, needed) {
                Ok((input, remap)) => PlanKind::Aggregate {
                    input: Box::new(input),
                    group: group.iter().map(|e| e.map_columns(&remap)).collect(),
                    aggs: aggs
                        .iter()
                        .map(|a| AggCall { func: a.func, arg: a.arg.map_columns(&remap) })
                        .collect(),
                },
                Err(input) => PlanKind::Aggregate { input: Box::new(input), group, aggs },
            }
        }
        other => other,
    };
    Plan { kind, fields }
}

/// Sorted, deduplicated set of columns referenced by `exprs`.
fn columns_of<'a>(exprs: impl Iterator<Item = &'a Expr>) -> Vec<usize> {
    let mut cols: Vec<usize> = exprs.flat_map(|e| e.columns()).collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Try to prune the `Filter*·Scan` chain under a consumer that reads only
/// `needed` columns. On success returns the rebuilt chain (scan projected
/// to the final needed set, filter predicates remapped, fields narrowed)
/// plus the old→new column remap for the consumer's own expressions. On
/// failure returns the chain untouched.
#[allow(clippy::result_large_err)]
fn prune_chain(input: Plan, mut needed: Vec<usize>) -> Result<(Plan, impl Fn(usize) -> usize), Plan> {
    // Shape check (immutably): a chain of Filters over a bare, not yet
    // pruned Scan. Filter predicates read scan-output columns, so they
    // join the needed set.
    {
        let mut cur = &input;
        loop {
            match &cur.kind {
                PlanKind::Filter { input, predicate } => {
                    needed.extend(predicate.columns());
                    cur = input;
                }
                PlanKind::Scan { projection: None, .. } => break,
                _ => return Err(input),
            }
        }
        needed.sort_unstable();
        needed.dedup();
        if needed.len() == cur.fields.len() {
            return Err(input); // nothing to prune
        }
    }
    let pruned = rebuild_pruned(input, &needed);
    let remap = move |c: usize| {
        needed.binary_search(&c).expect("pruned set covers every referenced column")
    };
    Ok((pruned, remap))
}

/// Rebuild the checked `Filter*·Scan` chain with the scan projected to
/// `needed` and every filter predicate remapped into the pruned space.
fn rebuild_pruned(plan: Plan, needed: &[usize]) -> Plan {
    match plan.kind {
        PlanKind::Filter { input, predicate } => {
            let input = rebuild_pruned(*input, needed);
            let fields = input.fields.clone();
            let predicate = predicate.map_columns(&|c| {
                needed.binary_search(&c).expect("pruned set covers every referenced column")
            });
            Plan { kind: PlanKind::Filter { input: Box::new(input), predicate }, fields }
        }
        PlanKind::Scan { table, filters, .. } => {
            let fields = needed.iter().map(|&c| plan.fields[c].clone()).collect();
            Plan {
                kind: PlanKind::Scan { table, filters, projection: Some(needed.to_vec()) },
                fields,
            }
        }
        _ => unreachable!("prune_chain verified the chain shape"),
    }
}

/// Rebuild a plan node with every child mapped through `f` (leaves are
/// returned unchanged). Shared recursion scaffold for the cost-based passes.
fn map_children(plan: Plan, f: &impl Fn(Plan) -> Plan) -> Plan {
    let fields = plan.fields;
    let kind = match plan.kind {
        PlanKind::Filter { input, predicate } => {
            PlanKind::Filter { input: Box::new(f(*input)), predicate }
        }
        PlanKind::Project { input, exprs } => {
            PlanKind::Project { input: Box::new(f(*input)), exprs }
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            left_keys,
            right_keys,
        },
        PlanKind::Aggregate { input, group, aggs } => {
            PlanKind::Aggregate { input: Box::new(f(*input)), group, aggs }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            PlanKind::Unnest { input: Box::new(f(*input)), column, keep_empty }
        }
        PlanKind::Sort { input, keys } => PlanKind::Sort { input: Box::new(f(*input)), keys },
        PlanKind::Limit { input, limit } => PlanKind::Limit { input: Box::new(f(*input)), limit },
        PlanKind::Distinct { input } => PlanKind::Distinct { input: Box::new(f(*input)) },
        PlanKind::Union { inputs } => {
            PlanKind::Union { inputs: inputs.into_iter().map(f).collect() }
        }
        leaf => leaf,
    };
    Plan { kind, fields }
}

// ---- filter cost ranking ---------------------------------------------------

/// Order every conjunctive filter list in the plan so the most effective
/// predicate runs first.
///
/// Pushed-down scan filters and index residuals are applied per examined
/// row, so running an integer comparison before an `array_contains` walk
/// lets the cheap predicate prune rows before the expensive one runs.
/// Without statistics the key is the static evaluation cost
/// ([`Expr::cost_rank`]); when the filtered table has gathered statistics
/// the key becomes `selectivity × (1 + cost_rank)`, which lets a highly
/// selective (but slightly pricier) predicate run before a cheap one that
/// keeps almost every row. The sort is stable: equally-ranked predicates
/// keep their pushdown order. Runs after [`select_indexes`] so index
/// residual lists are ranked too.
pub fn rank_filters(mut plan: Plan, cat: &Catalog) -> Plan {
    rank_filters_mut(&mut plan, cat);
    plan
}

fn sort_filters(filters: &mut [Expr], est: Option<&cost::Estimate>) {
    match est {
        Some(est) => filters.sort_by(|a, b| {
            let ka = cost::selectivity(a, est) * (1.0 + f64::from(a.cost_rank()));
            let kb = cost::selectivity(b, est) * (1.0 + f64::from(b.cost_rank()));
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        }),
        None => filters.sort_by_key(Expr::cost_rank),
    }
}

/// Stats key for a factorized-scan side (mirrors how `Catalog::analyze`
/// registers the three per-structure entries).
fn factorized_stats_key(table: &str, side: FactorizedSide) -> String {
    match side {
        FactorizedSide::Left => format!("{table}#left"),
        FactorizedSide::Right => format!("{table}#right"),
        FactorizedSide::Join => table.to_string(),
    }
}

fn rank_filters_mut(plan: &mut Plan, cat: &Catalog) {
    match &mut plan.kind {
        PlanKind::Scan { table, filters, .. } => {
            let est = cost::table_estimate(cat, table);
            sort_filters(filters, est.as_ref());
        }
        PlanKind::FactorizedScan { table, side, filters } => {
            let est = cost::table_estimate(cat, &factorized_stats_key(table, *side));
            sort_filters(filters, est.as_ref());
        }
        PlanKind::IndexLookup { table, residual, .. }
        | PlanKind::IndexRange { table, residual, .. } => {
            let est = cost::table_estimate(cat, table);
            sort_filters(residual, est.as_ref());
        }
        PlanKind::FactorizedCount { .. } | PlanKind::Values { .. } => {}
        PlanKind::Filter { input, .. }
        | PlanKind::Project { input, .. }
        | PlanKind::Aggregate { input, .. }
        | PlanKind::Unnest { input, .. }
        | PlanKind::Sort { input, .. }
        | PlanKind::Limit { input, .. }
        | PlanKind::Distinct { input } => rank_filters_mut(input, cat),
        PlanKind::Join { left, right, .. } => {
            rank_filters_mut(left, cat);
            rank_filters_mut(right, cat);
        }
        PlanKind::Union { inputs } => {
            for i in inputs {
                rank_filters_mut(i, cat);
            }
        }
    }
}

// ---- cost-based join passes -------------------------------------------------

/// Pick the cheaper build side for every Inner hash join.
///
/// The executor materializes the **right** input of a hash join into the
/// build table ([`crate::stream`]'s `JoinStream` drains `right` first and
/// probes with `left` batches). When statistics say the left input is the
/// smaller one, swapping the inputs builds the smaller hash table and
/// probes with the larger stream — the classic build-side heuristic. A
/// column-restoring projection goes on top so the output schema is
/// unchanged. Only Inner joins are swapped (Left/Semi joins are not
/// symmetric), and joins whose sides lack estimates are left alone.
pub fn choose_build_side(plan: Plan, cat: &Catalog) -> Plan {
    let fields = plan.fields;
    match plan.kind {
        PlanKind::Join { left, right, kind: JoinKind::Inner, left_keys, right_keys } => {
            let left = choose_build_side(*left, cat);
            let right = choose_build_side(*right, cat);
            let swap = match (cost::estimate(&left, cat), cost::estimate(&right, cat)) {
                (Some(l), Some(r)) => l.rows < r.rows,
                _ => false,
            };
            if swap {
                swap_join(left, right, left_keys, right_keys, fields)
            } else {
                Plan {
                    kind: PlanKind::Join {
                        left: Box::new(left),
                        right: Box::new(right),
                        kind: JoinKind::Inner,
                        left_keys,
                        right_keys,
                    },
                    fields,
                }
            }
        }
        other => {
            map_children(Plan { kind: other, fields }, &|p| choose_build_side(p, cat))
        }
    }
}

/// Build `right ⋈ left` from an Inner `left ⋈ right` and restore the
/// original column order (and field names) with a projection on top.
fn swap_join(
    left: Plan,
    right: Plan,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    fields: Vec<Field>,
) -> Plan {
    let l_arity = left.fields.len();
    let r_arity = right.fields.len();
    let mut swapped_fields: Vec<Field> = right.fields.clone();
    swapped_fields.extend(left.fields.iter().cloned());
    let swapped = Plan {
        kind: PlanKind::Join {
            left: Box::new(right),
            right: Box::new(left),
            kind: JoinKind::Inner,
            left_keys: right_keys,
            right_keys: left_keys,
        },
        fields: swapped_fields,
    };
    // Original column i < l_arity now lives at r_arity + i; original
    // l_arity + j now lives at j.
    let exprs: Vec<Expr> = (0..l_arity)
        .map(|i| Expr::col(r_arity + i))
        .chain((0..r_arity).map(Expr::col))
        .collect();
    Plan { kind: PlanKind::Project { input: Box::new(swapped), exprs }, fields }
}

/// Greedily reorder chains of Inner equi-joins so small inputs join first.
///
/// A maximal tree of Inner joins whose keys are all plain columns is
/// flattened into leaves plus equality predicates, then rebuilt left-deep:
/// start from the leaf with the fewest estimated rows and repeatedly join
/// the smallest leaf connected to the joined set by some predicate. Each
/// predicate is applied at the join where its second endpoint enters, so
/// multi-predicate and cyclic join graphs stay intact. A projection on top
/// restores the original column order. The pass bails to the original tree
/// when the chain has fewer than three leaves, when any leaf lacks an
/// estimate, when the join graph is disconnected (cross joins), or when
/// the greedy order is the original order.
pub fn reorder_joins(plan: Plan, cat: &Catalog) -> Plan {
    if is_flattenable(&plan) {
        reorder_join_tree(plan, cat)
    } else {
        map_children(plan, &|p| reorder_joins(p, cat))
    }
}

/// An Inner join whose keys are all plain `Col` references can take part
/// in flattening/reordering.
fn is_flattenable(plan: &Plan) -> bool {
    matches!(
        &plan.kind,
        PlanKind::Join { kind: JoinKind::Inner, left_keys, right_keys, .. }
            if !left_keys.is_empty()
                && left_keys
                    .iter()
                    .chain(right_keys.iter())
                    .all(|k| matches!(k, Expr::Col(_)))
    )
}

/// Flatten a maximal Inner-join tree rooted at `plan` into `leaves` (in
/// in-order traversal order, which equals the output column order of pure
/// Inner joins) and equality `preds` over **global** column positions.
/// Returns the subtree arity.
fn flatten_join(plan: Plan, base: usize, leaves: &mut Vec<Plan>, preds: &mut Vec<(usize, usize)>) -> usize {
    if is_flattenable(&plan) {
        let PlanKind::Join { left, right, left_keys, right_keys, .. } = plan.kind else {
            unreachable!("is_flattenable checked the kind")
        };
        let l_arity = flatten_join(*left, base, leaves, preds);
        let r_arity = flatten_join(*right, base + l_arity, leaves, preds);
        for (lk, rk) in left_keys.iter().zip(right_keys.iter()) {
            let (Expr::Col(i), Expr::Col(j)) = (lk, rk) else {
                unreachable!("is_flattenable checked the keys")
            };
            preds.push((base + i, base + l_arity + j));
        }
        l_arity + r_arity
    } else {
        let arity = plan.fields.len();
        leaves.push(plan);
        arity
    }
}

fn reorder_join_tree(plan: Plan, cat: &Catalog) -> Plan {
    let original = plan.clone();
    let fields = plan.fields.clone();
    let mut leaves: Vec<Plan> = Vec::new();
    let mut global_preds: Vec<(usize, usize)> = Vec::new();
    let total_arity = flatten_join(plan, 0, &mut leaves, &mut global_preds);
    let bail = |original: Plan| map_children(original, &|p| reorder_joins(p, cat));
    if leaves.len() < 3 {
        // Two-way joins have nothing to reorder; build-side selection
        // handles them.
        return bail(original);
    }
    // Recurse into the leaves first (they may hide further join chains
    // under aggregates, outer joins, ...).
    let leaves: Vec<Plan> = leaves.into_iter().map(|l| reorder_joins(l, cat)).collect();
    let Some(est_rows) = leaves
        .iter()
        .map(|l| cost::estimate(l, cat).map(|e| e.rows))
        .collect::<Option<Vec<f64>>>()
    else {
        return bail(original);
    };
    // Map global column positions to (leaf index, column within leaf).
    let mut starts = Vec::with_capacity(leaves.len());
    let mut acc = 0usize;
    for l in &leaves {
        starts.push(acc);
        acc += l.fields.len();
    }
    debug_assert_eq!(acc, total_arity);
    let to_leaf = |g: usize| -> (usize, usize) {
        let li = starts.partition_point(|&s| s <= g) - 1;
        (li, g - starts[li])
    };
    let preds: Vec<((usize, usize), (usize, usize))> =
        global_preds.iter().map(|&(a, b)| (to_leaf(a), to_leaf(b))).collect();
    // Greedy order: smallest leaf first, then repeatedly the smallest leaf
    // connected to the joined set by at least one predicate.
    let n = leaves.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut joined = vec![false; n];
    let start = (0..n)
        .min_by(|&a, &b| est_rows[a].partial_cmp(&est_rows[b]).unwrap_or(std::cmp::Ordering::Equal))
        .expect("n >= 3");
    order.push(start);
    joined[start] = true;
    while order.len() < n {
        let mut best: Option<usize> = None;
        for &((al, _), (bl, _)) in &preds {
            for (x, y) in [(al, bl), (bl, al)] {
                if joined[x] && !joined[y] && best.is_none_or(|b| est_rows[y] < est_rows[b]) {
                    best = Some(y);
                }
            }
        }
        match best {
            Some(b) => {
                order.push(b);
                joined[b] = true;
            }
            // Disconnected join graph (a cross join somewhere): reordering
            // a cross join is never a clear win, keep the written order.
            None => return bail(original),
        }
    }
    if order.iter().enumerate().all(|(i, &l)| i == l) {
        // Greedy agrees with the written order: keep the original tree
        // (and its exact fields/shape).
        return bail(original);
    }
    // Rebuild left-deep in greedy order. Each predicate becomes a join key
    // at the join where its second endpoint enters the joined set.
    let mut slots: Vec<Option<Plan>> = leaves.into_iter().map(Some).collect();
    let mut out_start: Vec<Option<usize>> = vec![None; n];
    let mut current = slots[order[0]].take().expect("leaf taken once");
    out_start[order[0]] = Some(0);
    let mut used = vec![false; preds.len()];
    for &next in &order[1..] {
        let right = slots[next].take().expect("leaf taken once");
        let cur_arity = current.fields.len();
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for (pi, &((al, ac), (bl, bc))) in preds.iter().enumerate() {
            if used[pi] {
                continue;
            }
            let (inner, inner_col, next_col) = if al == next && out_start[bl].is_some() {
                (bl, bc, ac)
            } else if bl == next && out_start[al].is_some() {
                (al, ac, bc)
            } else {
                continue;
            };
            used[pi] = true;
            left_keys.push(Expr::col(out_start[inner].expect("endpoint joined") + inner_col));
            right_keys.push(Expr::col(next_col));
        }
        debug_assert!(!left_keys.is_empty(), "greedy order guarantees connectivity");
        let mut join_fields = current.fields.clone();
        join_fields.extend(right.fields.iter().cloned());
        current = Plan {
            kind: PlanKind::Join {
                left: Box::new(current),
                right: Box::new(right),
                kind: JoinKind::Inner,
                left_keys,
                right_keys,
            },
            fields: join_fields,
        };
        out_start[next] = Some(cur_arity);
    }
    // Restore the original column order with a projection carrying the
    // original output fields.
    let exprs: Vec<Expr> = (0..total_arity)
        .map(|g| {
            let (li, c) = to_leaf(g);
            Expr::col(out_start[li].expect("all leaves joined") + c)
        })
        .collect();
    Plan { kind: PlanKind::Project { input: Box::new(current), exprs }, fields }
}

// ---- constant folding ------------------------------------------------------

/// Fold constant subexpressions throughout the plan.
pub fn fold_constants(plan: Plan) -> EngineResult<Plan> {
    map_exprs(plan, &fold_expr)
}

fn fold_expr(e: Expr) -> Expr {
    // Fold children first.
    let e = match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(fold_expr(*left)),
            right: Box::new(fold_expr(*right)),
        },
        Expr::Unary { op, expr } => Expr::Unary { op, expr: Box::new(fold_expr(*expr)) },
        Expr::Func { func, args } => {
            Expr::Func { func, args: args.into_iter().map(fold_expr).collect() }
        }
        Expr::Field { expr, index } => Expr::Field { expr: Box::new(fold_expr(*expr)), index },
        Expr::IsNull(x) => Expr::IsNull(Box::new(fold_expr(*x))),
        Expr::IsNotNull(x) => Expr::IsNotNull(Box::new(fold_expr(*x))),
        other => other,
    };
    if !matches!(e, Expr::Lit(_)) && e.is_constant() {
        // A failing constant (e.g. 1/0) is left unfolded so the error
        // surfaces at execution time instead of plan time.
        if let Ok(v) = e.eval(&[]) {
            return Expr::Lit(v);
        }
    }
    // TRUE simplifications that keep three-valued semantics intact.
    match e {
        Expr::Binary { op: BinOp::And, left, right } => match (&*left, &*right) {
            (Expr::Lit(Value::Bool(true)), _) => *right,
            (_, Expr::Lit(Value::Bool(true))) => *left,
            (Expr::Lit(Value::Bool(false)), _) | (_, Expr::Lit(Value::Bool(false))) => {
                Expr::Lit(Value::Bool(false))
            }
            _ => Expr::Binary { op: BinOp::And, left, right },
        },
        Expr::Binary { op: BinOp::Or, left, right } => match (&*left, &*right) {
            (Expr::Lit(Value::Bool(false)), _) => *right,
            (_, Expr::Lit(Value::Bool(false))) => *left,
            (Expr::Lit(Value::Bool(true)), _) | (_, Expr::Lit(Value::Bool(true))) => {
                Expr::Lit(Value::Bool(true))
            }
            _ => Expr::Binary { op: BinOp::Or, left, right },
        },
        other => other,
    }
}

fn map_exprs(plan: Plan, f: &impl Fn(Expr) -> Expr) -> EngineResult<Plan> {
    let fields = plan.fields;
    let kind = match plan.kind {
        PlanKind::Scan { table, filters, projection } => {
            PlanKind::Scan { table, filters: filters.into_iter().map(f).collect(), projection }
        }
        PlanKind::IndexLookup { table, columns, keys, residual } => PlanKind::IndexLookup {
            table,
            columns,
            keys,
            residual: residual.into_iter().map(f).collect(),
        },
        PlanKind::IndexRange { table, column, lo, hi, residual } => PlanKind::IndexRange {
            table,
            column,
            lo,
            hi,
            residual: residual.into_iter().map(f).collect(),
        },
        PlanKind::FactorizedScan { table, side, filters } => PlanKind::FactorizedScan {
            table,
            side,
            filters: filters.into_iter().map(f).collect(),
        },
        PlanKind::FactorizedCount { table } => PlanKind::FactorizedCount { table },
        PlanKind::Filter { input, predicate } => PlanKind::Filter {
            input: Box::new(map_exprs(*input, f)?),
            predicate: f(predicate),
        },
        PlanKind::Project { input, exprs } => PlanKind::Project {
            input: Box::new(map_exprs(*input, f)?),
            exprs: exprs.into_iter().map(f).collect(),
        },
        PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
            left: Box::new(map_exprs(*left, f)?),
            right: Box::new(map_exprs(*right, f)?),
            kind,
            left_keys: left_keys.into_iter().map(f).collect(),
            right_keys: right_keys.into_iter().map(f).collect(),
        },
        PlanKind::Aggregate { input, group, aggs } => PlanKind::Aggregate {
            input: Box::new(map_exprs(*input, f)?),
            group: group.into_iter().map(f).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = f(a.arg);
                    a
                })
                .collect(),
        },
        PlanKind::Unnest { input, column, keep_empty } => {
            PlanKind::Unnest { input: Box::new(map_exprs(*input, f)?), column, keep_empty }
        }
        PlanKind::Sort { input, keys } => PlanKind::Sort {
            input: Box::new(map_exprs(*input, f)?),
            keys: keys
                .into_iter()
                .map(|mut k| {
                    k.expr = f(k.expr);
                    k
                })
                .collect(),
        },
        PlanKind::Limit { input, limit } => {
            PlanKind::Limit { input: Box::new(map_exprs(*input, f)?), limit }
        }
        PlanKind::Distinct { input } => PlanKind::Distinct { input: Box::new(map_exprs(*input, f)?) },
        PlanKind::Union { inputs } => PlanKind::Union {
            inputs: inputs.into_iter().map(|p| map_exprs(p, f)).collect::<EngineResult<_>>()?,
        },
        PlanKind::Values { rows } => PlanKind::Values { rows },
    };
    Ok(Plan { kind, fields })
}

// ---- filter pushdown --------------------------------------------------------

/// Push filter predicates as close to the scans as possible.
pub fn push_filters(plan: Plan) -> EngineResult<Plan> {
    let fields = plan.fields.clone();
    let kind = match plan.kind {
        PlanKind::Filter { input, predicate } => {
            let input = push_filters(*input)?;
            let conjuncts = predicate.split_conjunction();
            return Ok(push_conjuncts_into(input, conjuncts));
        }
        PlanKind::Project { input, exprs } => PlanKind::Project {
            input: Box::new(push_filters(*input)?),
            exprs,
        },
        PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
            left: Box::new(push_filters(*left)?),
            right: Box::new(push_filters(*right)?),
            kind,
            left_keys,
            right_keys,
        },
        PlanKind::Aggregate { input, group, aggs } => {
            PlanKind::Aggregate { input: Box::new(push_filters(*input)?), group, aggs }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            PlanKind::Unnest { input: Box::new(push_filters(*input)?), column, keep_empty }
        }
        PlanKind::Sort { input, keys } => {
            PlanKind::Sort { input: Box::new(push_filters(*input)?), keys }
        }
        PlanKind::Limit { input, limit } => {
            PlanKind::Limit { input: Box::new(push_filters(*input)?), limit }
        }
        PlanKind::Distinct { input } => {
            PlanKind::Distinct { input: Box::new(push_filters(*input)?) }
        }
        PlanKind::Union { inputs } => PlanKind::Union {
            inputs: inputs.into_iter().map(push_filters).collect::<EngineResult<_>>()?,
        },
        leaf => leaf,
    };
    Ok(Plan { kind, fields })
}

/// Push a set of conjuncts into `plan`, leaving a residual Filter on top
/// for whatever cannot sink further.
fn push_conjuncts_into(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        return plan;
    }
    let fields = plan.fields.clone();
    match plan.kind {
        PlanKind::Scan { table, mut filters, projection } => {
            filters.extend(conjuncts);
            Plan { kind: PlanKind::Scan { table, filters, projection }, fields }
        }
        PlanKind::FactorizedScan { table, side, mut filters } => {
            filters.extend(conjuncts);
            Plan { kind: PlanKind::FactorizedScan { table, side, filters }, fields }
        }
        PlanKind::IndexLookup { table, columns, keys, mut residual } => {
            residual.extend(conjuncts);
            Plan { kind: PlanKind::IndexLookup { table, columns, keys, residual }, fields }
        }
        PlanKind::IndexRange { table, column, lo, hi, mut residual } => {
            residual.extend(conjuncts);
            Plan { kind: PlanKind::IndexRange { table, column, lo, hi, residual }, fields }
        }
        PlanKind::Filter { input, predicate } => {
            let mut all = predicate.split_conjunction();
            all.extend(conjuncts);
            push_conjuncts_into(*input, all)
        }
        PlanKind::Project { input, exprs } => {
            // Inline projected expressions into each predicate; safe for any
            // deterministic expression.
            let rewritten: Vec<Expr> =
                conjuncts.iter().map(|p| substitute_columns(p, &exprs)).collect();
            let pushed = push_conjuncts_into(*input, rewritten);
            Plan { kind: PlanKind::Project { input: Box::new(pushed), exprs }, fields }
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => {
            let left_arity = left.fields.len();
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut keep = Vec::new();
            for p in conjuncts {
                let cols = p.columns();
                let all_left = cols.iter().all(|&c| c < left_arity);
                let all_right = cols.iter().all(|&c| c >= left_arity);
                if all_left {
                    left_preds.push(p);
                } else if all_right && kind == crate::plan::JoinKind::Inner {
                    right_preds.push(p.map_columns(&|c| c - left_arity));
                } else {
                    keep.push(p);
                }
            }
            let new_left = push_conjuncts_into(*left, left_preds);
            let new_right = push_conjuncts_into(*right, right_preds);
            let joined = Plan {
                kind: PlanKind::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    left_keys,
                    right_keys,
                },
                fields,
            };
            wrap_filter(joined, keep)
        }
        PlanKind::Union { inputs } => {
            let pushed: Vec<Plan> = inputs
                .into_iter()
                .map(|p| push_conjuncts_into(p, conjuncts.clone()))
                .collect();
            Plan { kind: PlanKind::Union { inputs: pushed }, fields }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            // Predicates not touching the unnested column commute with the
            // unnest (inner or outer): column indexes are unchanged and the
            // predicate is row-local over the preserved columns.
            let (push, keep): (Vec<Expr>, Vec<Expr>) =
                conjuncts.into_iter().partition(|p| !p.columns().contains(&column));
            let pushed = push_conjuncts_into(*input, push);
            let plan = Plan {
                kind: PlanKind::Unnest { input: Box::new(pushed), column, keep_empty },
                fields,
            };
            wrap_filter(plan, keep)
        }
        other => wrap_filter(Plan { kind: other, fields }, conjuncts),
    }
}

fn wrap_filter(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        return plan;
    }
    let fields = plan.fields.clone();
    Plan {
        kind: PlanKind::Filter { input: Box::new(plan), predicate: Expr::conjunction(conjuncts) },
        fields,
    }
}

/// Replace `Col(i)` with `projection[i]`.
fn substitute_columns(pred: &Expr, projection: &[Expr]) -> Expr {
    match pred {
        Expr::Col(i) => projection.get(*i).cloned().unwrap_or_else(|| pred.clone()),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Param(n) => Expr::Param(*n),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute_columns(left, projection)),
            right: Box::new(substitute_columns(right, projection)),
        },
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(substitute_columns(expr, projection)) }
        }
        Expr::Func { func, args } => Expr::Func {
            func: *func,
            args: args.iter().map(|a| substitute_columns(a, projection)).collect(),
        },
        Expr::Field { expr, index } => {
            Expr::Field { expr: Box::new(substitute_columns(expr, projection)), index: *index }
        }
        Expr::InSet { expr, set } => Expr::InSet {
            expr: Box::new(substitute_columns(expr, projection)),
            set: std::sync::Arc::clone(set),
        },
        Expr::IsNull(e) => Expr::IsNull(Box::new(substitute_columns(e, projection))),
        Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(substitute_columns(e, projection))),
    }
}

// ---- index selection ---------------------------------------------------------

/// Convert filtered scans into index lookups where an index exists.
pub fn select_indexes(plan: Plan, cat: &Catalog) -> EngineResult<Plan> {
    let fields = plan.fields;
    let kind = match plan.kind {
        PlanKind::Scan { table, filters, projection } => {
            if let Ok(t) = cat.table(&table) {
                match extract_index_lookup(t, &filters) {
                    Some((columns, keys, residual)) => {
                        PlanKind::IndexLookup { table, columns, keys, residual }
                    }
                    None => match extract_index_range(t, &filters) {
                        Some((column, lo, hi, residual)) => {
                            PlanKind::IndexRange { table, column, lo, hi, residual }
                        }
                        None => PlanKind::Scan { table, filters, projection },
                    },
                }
            } else {
                PlanKind::Scan { table, filters, projection }
            }
        }
        PlanKind::Filter { input, predicate } => PlanKind::Filter {
            input: Box::new(select_indexes(*input, cat)?),
            predicate,
        },
        PlanKind::Project { input, exprs } => {
            PlanKind::Project { input: Box::new(select_indexes(*input, cat)?), exprs }
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
            left: Box::new(select_indexes(*left, cat)?),
            right: Box::new(select_indexes(*right, cat)?),
            kind,
            left_keys,
            right_keys,
        },
        PlanKind::Aggregate { input, group, aggs } => {
            // Aggregate pushdown through a factorized join: COUNT(*) over
            // the pure stored join is the structure's pair count (the
            // paper's "execute some types of aggregate queries more
            // efficiently by ... pushing down aggregations through the
            // joins").
            if group.is_empty() && aggs.len() == 1 {
                if let (crate::agg::AggFunc::CountStar, PlanKind::FactorizedScan {
                    table,
                    side: crate::plan::FactorizedSide::Join,
                    filters,
                }) = (aggs[0].func, &input.kind)
                {
                    if filters.is_empty() {
                        return Ok(Plan {
                            kind: PlanKind::FactorizedCount { table: table.clone() },
                            fields,
                        });
                    }
                }
            }
            PlanKind::Aggregate { input: Box::new(select_indexes(*input, cat)?), group, aggs }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            PlanKind::Unnest { input: Box::new(select_indexes(*input, cat)?), column, keep_empty }
        }
        PlanKind::Sort { input, keys } => {
            PlanKind::Sort { input: Box::new(select_indexes(*input, cat)?), keys }
        }
        PlanKind::Limit { input, limit } => {
            PlanKind::Limit { input: Box::new(select_indexes(*input, cat)?), limit }
        }
        PlanKind::Distinct { input } => {
            PlanKind::Distinct { input: Box::new(select_indexes(*input, cat)?) }
        }
        PlanKind::Union { inputs } => PlanKind::Union {
            inputs: inputs
                .into_iter()
                .map(|p| select_indexes(p, cat))
                .collect::<EngineResult<_>>()?,
        },
        leaf => leaf,
    };
    Ok(Plan { kind, fields })
}

/// If some filter is `Col(i) = lit` or `Col(i) IN <set>` and the table has
/// an index on column `i`, return the lookup spec plus residual filters.
fn extract_index_lookup(
    table: &erbium_storage::Table,
    filters: &[Expr],
) -> Option<(Vec<usize>, Vec<Value>, Vec<Expr>)> {
    for (pos, f) in filters.iter().enumerate() {
        let (col, keys) = match f {
            Expr::Binary { op: BinOp::Eq, left, right } => match (&**left, &**right) {
                (Expr::Col(i), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(i)) if !v.is_null() => {
                    (*i, vec![v.clone()])
                }
                _ => continue,
            },
            Expr::InSet { expr, set } => match &**expr {
                Expr::Col(i) => {
                    let mut keys: Vec<Value> = set.iter().cloned().collect();
                    keys.sort();
                    (*i, keys)
                }
                _ => continue,
            },
            _ => continue,
        };
        if table.has_index_on(&[col]) {
            let residual: Vec<Expr> = filters
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, e)| e.clone())
                .collect();
            return Some((vec![col], keys, residual));
        }
    }
    None
}

/// If some filter is a comparison `Col(i) <op> lit` and the table has an
/// ordered (BTree) index on column `i`, return the range spec plus residual
/// filters. Only single-bound ranges are extracted; a second bound on the
/// same column stays residual (still correct, marginally less tight).
type RangeBound = Option<(Value, bool)>;

fn extract_index_range(
    table: &erbium_storage::Table,
    filters: &[Expr],
) -> Option<(usize, RangeBound, RangeBound, Vec<Expr>)> {
    use erbium_storage::IndexKind;
    for (pos, f) in filters.iter().enumerate() {
        let Expr::Binary { op, left, right } = f else { continue };
        let (col, lit, op) = match (&**left, &**right) {
            (Expr::Col(i), Expr::Lit(v)) if !v.is_null() => (*i, v.clone(), *op),
            (Expr::Lit(v), Expr::Col(i)) if !v.is_null() => {
                // Mirror the comparison: lit < col ≡ col > lit.
                let mirrored = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                };
                (*i, v.clone(), mirrored)
            }
            _ => continue,
        };
        let (lo, hi) = match op {
            BinOp::Lt => (None, Some((lit, false))),
            BinOp::Le => (None, Some((lit, true))),
            BinOp::Gt => (Some((lit, false)), None),
            BinOp::Ge => (Some((lit, true)), None),
            _ => continue,
        };
        let has_btree = table
            .indexes()
            .iter()
            .any(|ix| ix.columns == [col] && ix.kind() == IndexKind::BTree);
        if has_btree {
            let residual: Vec<Expr> = filters
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, e)| e.clone())
                .collect();
            return Some((col, lo, hi, residual));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::JoinKind;
    use erbium_storage::{Column, DataType, Table, TableSchema};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("v", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i * 2)]).unwrap();
        }
        c.create_table(t).unwrap();
        c
    }

    #[test]
    fn constant_folding_simplifies() {
        let e = Expr::and(
            Expr::lit(true),
            Expr::eq(Expr::col(0), Expr::binary(BinOp::Add, Expr::lit(1i64), Expr::lit(2i64))),
        );
        let folded = fold_expr(e);
        assert_eq!(folded, Expr::eq(Expr::col(0), Expr::lit(3i64)));
    }

    #[test]
    fn folding_keeps_failing_constants() {
        let e = Expr::binary(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        let folded = fold_expr(e.clone());
        assert_eq!(folded, e);
    }

    #[test]
    fn rank_filters_orders_scan_conjuncts_cheapest_first() {
        use crate::expr::ScalarFunc;
        let c = cat();
        let cheap = Expr::eq(Expr::col(1), Expr::lit(3i64));
        let pricey = Expr::func(
            ScalarFunc::ArrayContains,
            vec![Expr::col(2), Expr::lit(1i64)],
        );
        let null_check = Expr::IsNotNull(Box::new(Expr::col(0)));
        // Expensive predicate first on purpose.
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(pricey.clone())
            .filter(cheap.clone())
            .filter(null_check.clone());
        let opt = push_filters(p).unwrap();
        let ranked = rank_filters(opt, &c);
        match &ranked.kind {
            PlanKind::Scan { filters, .. } => {
                assert_eq!(filters.len(), 3);
                // IsNotNull(col) rank 2 < Eq(col,lit) rank 3 < ArrayContains rank 17.
                assert_eq!(filters[0], null_check);
                assert_eq!(filters[1], cheap);
                assert_eq!(filters[2], pricey);
                let ranks: Vec<u32> = filters.iter().map(Expr::cost_rank).collect();
                let mut sorted = ranks.clone();
                sorted.sort_unstable();
                assert_eq!(ranks, sorted, "filters must be in ascending cost order");
            }
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn rank_filters_orders_index_residuals() {
        use crate::expr::ScalarFunc;
        let c = cat();
        let pricey = Expr::func(
            ScalarFunc::ArrayContains,
            vec![Expr::col(2), Expr::lit(1i64)],
        );
        let cheap = Expr::binary(BinOp::Lt, Expr::col(2), Expr::lit(50i64));
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(pricey.clone())
            .filter(cheap.clone())
            .filter(Expr::eq(Expr::col(0), Expr::lit(7i64)));
        let opt = optimize(p, &c).unwrap();
        match &opt.kind {
            PlanKind::IndexLookup { residual, .. } => {
                assert_eq!(residual, &vec![cheap, pricey], "residuals ranked cheapest first");
            }
            other => panic!("expected index lookup, got {other:?}"),
        }
    }

    #[test]
    fn filter_pushed_into_scan() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::eq(Expr::col(1), Expr::lit(3i64)));
        let opt = push_filters(p).unwrap();
        match &opt.kind {
            PlanKind::Scan { filters, .. } => assert_eq!(filters.len(), 1),
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn filter_pushed_through_projection() {
        let c = cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .project(vec![(Expr::col(1), "g".into()), (Expr::col(2), "v".into())])
            .filter(Expr::eq(Expr::col(0), Expr::lit(3i64)));
        let opt = push_filters(p.clone()).unwrap();
        match &opt.kind {
            PlanKind::Project { input, .. } => match &input.kind {
                PlanKind::Scan { filters, .. } => {
                    assert_eq!(filters[0], Expr::eq(Expr::col(1), Expr::lit(3i64)))
                }
                other => panic!("expected scan under project, got {other:?}"),
            },
            other => panic!("expected project, got {other:?}"),
        }
        // Semantics preserved.
        let a = execute(&p, &cat()).unwrap();
        let b = execute(&opt, &cat()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn filter_split_across_join_sides() {
        let c = cat();
        let l = Plan::scan(&c, "t").unwrap();
        let r = Plan::scan(&c, "t").unwrap();
        let j = l
            .join(r, JoinKind::Inner, vec![Expr::col(0)], vec![Expr::col(0)])
            .filter(Expr::and(
                Expr::eq(Expr::col(1), Expr::lit(3i64)),  // left side
                Expr::eq(Expr::col(4), Expr::lit(3i64)), // right side (col 4 = right grp)
            ));
        let opt = push_filters(j.clone()).unwrap();
        match &opt.kind {
            PlanKind::Join { left, right, .. } => {
                assert!(matches!(&left.kind, PlanKind::Scan { filters, .. } if filters.len() == 1));
                assert!(matches!(&right.kind, PlanKind::Scan { filters, .. } if filters.len() == 1));
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(execute(&j, &c).unwrap(), execute(&opt, &c).unwrap());
    }

    #[test]
    fn right_side_filter_not_pushed_through_left_join() {
        let c = cat();
        let l = Plan::scan(&c, "t").unwrap();
        let r = Plan::scan(&c, "t").unwrap();
        let j = l
            .join(r, JoinKind::Left, vec![Expr::col(0)], vec![Expr::col(0)])
            .filter(Expr::eq(Expr::col(4), Expr::lit(3i64)));
        let opt = push_filters(j.clone()).unwrap();
        // Must stay above the join: pushing below a left join changes results.
        assert!(matches!(&opt.kind, PlanKind::Filter { .. }));
        assert_eq!(execute(&j, &c).unwrap(), execute(&opt, &c).unwrap());
    }

    #[test]
    fn index_lookup_selected_for_pk_equality() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::eq(Expr::col(0), Expr::lit(42i64)));
        let opt = optimize(p.clone(), &c).unwrap();
        match &opt.kind {
            PlanKind::IndexLookup { columns, keys, .. } => {
                assert_eq!(columns, &vec![0]);
                assert_eq!(keys, &vec![Value::Int(42)]);
            }
            other => panic!("expected index lookup, got {other:?}"),
        }
        assert_eq!(execute(&p, &c).unwrap(), execute(&opt, &c).unwrap());
    }

    #[test]
    fn in_set_uses_index() {
        let c = cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::in_set(Expr::col(0), vec![Value::Int(1), Value::Int(5)]));
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(matches!(&opt.kind, PlanKind::IndexLookup { keys, .. } if keys.len() == 2));
        let mut a = execute(&p, &c).unwrap();
        let mut b = execute(&opt, &c).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn no_index_no_lookup() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::eq(Expr::col(2), Expr::lit(4i64)));
        let opt = optimize(p, &c).unwrap();
        assert!(matches!(&opt.kind, PlanKind::Scan { .. }));
    }

    #[test]
    fn union_filters_pushed_into_all_branches() {
        let c = cat();
        let u = Plan::union(vec![Plan::scan(&c, "t").unwrap(), Plan::scan(&c, "t").unwrap()])
            .unwrap()
            .filter(Expr::eq(Expr::col(1), Expr::lit(1i64)));
        let opt = push_filters(u.clone()).unwrap();
        match &opt.kind {
            PlanKind::Union { inputs } => {
                for i in inputs {
                    assert!(matches!(&i.kind, PlanKind::Scan { filters, .. } if !filters.is_empty()));
                }
            }
            other => panic!("expected union, got {other:?}"),
        }
        assert_eq!(execute(&u, &c).unwrap(), execute(&opt, &c).unwrap());
    }

    #[test]
    fn prune_narrows_scan_under_project_and_remaps() {
        let c = cat();
        // SELECT v FROM t WHERE grp = 3 — reads grp (filter) and v
        // (projection); id must be pruned away.
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::eq(Expr::col(1), Expr::lit(3i64)))
            .project(vec![(Expr::col(2), "v".into())]);
        let before = execute(&p, &c).unwrap();
        let opt = optimize(p, &c).unwrap();
        let after = execute(&opt, &c).unwrap();
        assert_eq!(before, after, "pruning must not change results");
        // Filter was pushed into the scan (table column space, no pruning
        // pressure), so the scan keeps only the projected column.
        let explain = opt.explain();
        assert!(explain.contains("[cols=v]"), "pruned set surfaced in EXPLAIN:\n{explain}");
        let PlanKind::Project { input, exprs } = &opt.kind else {
            panic!("expected project root, got:\n{explain}")
        };
        assert_eq!(exprs[0], Expr::col(0), "projection remapped into pruned space");
        let PlanKind::Scan { projection, filters, .. } = &input.kind else {
            panic!("expected scan input, got:\n{explain}")
        };
        assert_eq!(projection.as_deref(), Some(&[2usize][..]));
        assert_eq!(
            filters[0],
            Expr::eq(Expr::col(1), Expr::lit(3i64)),
            "pushed-down filters stay in the table's column space"
        );
        assert_eq!(input.fields.len(), 1);
        assert_eq!(input.fields[0].name, "v");
    }

    #[test]
    fn prune_covers_aggregate_and_unprojected_filter_chains() {
        let c = cat();
        // SELECT grp, SUM(v) FROM t GROUP BY grp: id is never read.
        let agg = Plan::scan(&c, "t").unwrap().aggregate(
            vec![(Expr::col(1), "grp".into())],
            vec![(AggCall::new(crate::agg::AggFunc::Sum, Expr::col(2)), "s".into())],
        );
        let before = execute(&agg, &c).unwrap();
        let opt = optimize(agg, &c).unwrap();
        assert_eq!(execute(&opt, &c).unwrap(), before);
        let PlanKind::Aggregate { input, group, aggs } = &opt.kind else {
            panic!("expected aggregate root:\n{}", opt.explain())
        };
        let PlanKind::Scan { projection, .. } = &input.kind else {
            panic!("expected scan input:\n{}", opt.explain())
        };
        assert_eq!(projection.as_deref(), Some(&[1usize, 2][..]));
        assert_eq!(group[0], Expr::col(0), "group key remapped");
        assert_eq!(aggs[0].arg, Expr::col(1), "agg argument remapped");

        // A residual Filter that pushdown cannot fold into the scan (it
        // stays a Filter node) contributes its columns and is remapped.
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::eq(
                Expr::binary(BinOp::Mod, Expr::col(0), Expr::lit(7i64)),
                Expr::col(1),
            ))
            .project(vec![(Expr::col(2), "v".into())]);
        let before = execute(&p, &c).unwrap();
        let pruned = prune_projections(p);
        assert_eq!(execute(&pruned, &c).unwrap(), before);
        let PlanKind::Project { input, .. } = &pruned.kind else { panic!("project root") };
        let PlanKind::Filter { input: scan, predicate } = &input.kind else {
            panic!("filter kept: {}", pruned.explain())
        };
        assert_eq!(
            *predicate,
            Expr::eq(Expr::binary(BinOp::Mod, Expr::col(0), Expr::lit(7i64)), Expr::col(1)),
            "id,grp,v pruned to id,grp,v? no: all three referenced -> unchanged"
        );
        // All three columns are referenced here, so no pruning happened.
        let PlanKind::Scan { projection, .. } = &scan.kind else { panic!("scan leaf") };
        assert!(projection.is_none(), "full-width scans stay unprojected");
    }

    #[test]
    fn stacked_identity_projects_collapse_and_prune() {
        let c = cat();
        // The SQL lowering emits this exact shape: SELECT-list project
        // over identity mapping-view projects over the scan. Pruning
        // must see through the stack or it never fires for real queries.
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::eq(Expr::col(1), Expr::lit(3i64)))
            .project(vec![
                (Expr::col(0), "id".into()),
                (Expr::col(1), "grp".into()),
                (Expr::col(2), "v".into()),
            ])
            .project(vec![
                (Expr::col(0), "id".into()),
                (Expr::col(1), "grp".into()),
                (Expr::col(2), "v".into()),
            ])
            .project(vec![(Expr::col(2), "v".into())]);
        let before = execute(&p, &c).unwrap();
        let opt = optimize(p, &c).unwrap();
        assert_eq!(execute(&opt, &c).unwrap(), before);
        let explain = opt.explain();
        assert!(explain.contains("[cols=v]"), "pruning fires through the stack:\n{explain}");
        let PlanKind::Project { input, exprs } = &opt.kind else {
            panic!("single collapsed project:\n{explain}")
        };
        assert_eq!(exprs.as_slice(), &[Expr::col(0)]);
        assert!(
            matches!(&input.kind, PlanKind::Scan { projection: Some(cols), .. } if cols == &[2]),
            "scan directly below the collapsed project:\n{explain}"
        );
        // Computed inner projections must NOT be inlined (work would be
        // duplicated per outer reference).
        let q = Plan::scan(&c, "t")
            .unwrap()
            .project(vec![(
                Expr::binary(BinOp::Add, Expr::col(0), Expr::col(2)),
                "sum".into(),
            )])
            .project(vec![(Expr::col(0), "a".into()), (Expr::col(0), "b".into())]);
        let collapsed = collapse_projects(q.clone());
        assert_eq!(collapsed, q, "computed projections stay stacked");

        // An identity project between Aggregate and Scan (the SQL GROUP
        // BY shape) collapses too, unlocking the columnar agg fast path.
        let a = Plan::scan(&c, "t")
            .unwrap()
            .project(vec![
                (Expr::col(0), "id".into()),
                (Expr::col(1), "grp".into()),
                (Expr::col(2), "v".into()),
            ])
            .aggregate(
                vec![(Expr::col(1), "grp".into())],
                vec![(AggCall::new(crate::agg::AggFunc::Sum, Expr::col(2)), "s".into())],
            );
        let before = execute(&a, &c).unwrap();
        let opt = optimize(a, &c).unwrap();
        assert_eq!(execute(&opt, &c).unwrap(), before);
        let PlanKind::Aggregate { input, .. } = &opt.kind else {
            panic!("aggregate root:\n{}", opt.explain())
        };
        assert!(
            matches!(&input.kind, PlanKind::Scan { projection: Some(cols), .. } if cols == &[1, 2]),
            "pruned scan directly under the aggregate:\n{}",
            opt.explain()
        );
    }

    #[test]
    fn prune_allows_zero_width_count_star() {
        let c = cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .aggregate(vec![], vec![(AggCall::count_star(), "n".into())]);
        let opt = prune_projections(p);
        let PlanKind::Aggregate { input, .. } = &opt.kind else { panic!("aggregate root") };
        let PlanKind::Scan { projection, .. } = &input.kind else { panic!("scan leaf") };
        assert_eq!(projection.as_deref(), Some(&[][..]), "COUNT(*) reads no columns");
        assert_eq!(execute(&opt, &c).unwrap(), vec![vec![Value::Int(100)]]);
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::Plan;
    use erbium_storage::{Column, DataType, IndexKind, Table, TableSchema};

    fn cat_with_btree() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![Column::not_null("id", DataType::Int), Column::new("v", DataType::Int)],
            vec![0],
        ));
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
        }
        t.create_index("by_id", vec![0], IndexKind::BTree).unwrap();
        c.create_table(t).unwrap();
        c
    }

    #[test]
    fn range_scan_selected_for_comparison() {
        let c = cat_with_btree();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(10i64)));
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(
            matches!(&opt.kind, PlanKind::IndexRange { hi: Some((Value::Int(10), false)), .. }),
            "{}",
            opt.explain()
        );
        let mut a = execute(&p, &c).unwrap();
        let mut b = execute(&opt, &c).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn mirrored_comparison_and_residual() {
        let c = cat_with_btree();
        // 90 <= id AND v = 3 → range on id, residual on v.
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::and(
            Expr::binary(BinOp::Le, Expr::lit(90i64), Expr::col(0)),
            Expr::eq(Expr::col(1), Expr::lit(3i64)),
        ));
        let opt = optimize(p.clone(), &c).unwrap();
        match &opt.kind {
            PlanKind::IndexRange { lo: Some((Value::Int(90), true)), residual, .. } => {
                assert_eq!(residual.len(), 1);
            }
            other => panic!("expected range, got {other:?}"),
        }
        let mut a = execute(&p, &c).unwrap();
        let mut b = execute(&opt, &c).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn no_btree_no_range() {
        let c = cat_with_btree();
        // Column v has no index: stays a scan.
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(5i64)));
        let opt = optimize(p, &c).unwrap();
        assert!(matches!(&opt.kind, PlanKind::Scan { .. }));
    }

    #[test]
    fn count_star_pushed_into_factorized_structure() {
        use crate::agg::AggCall;
        use erbium_storage::FactorizedTable;
        let mut c = Catalog::new();
        let mut ft = FactorizedTable::new(
            "f",
            TableSchema::new("l", vec![Column::not_null("a", DataType::Int)], vec![0]),
            TableSchema::new("r", vec![Column::not_null("b", DataType::Int)], vec![0]),
        );
        for i in 0..5i64 {
            let l = ft.insert_left(vec![Value::Int(i)]).unwrap();
            let r = ft.insert_right(vec![Value::Int(i)]).unwrap();
            ft.link(l, r).unwrap();
        }
        c.create_factorized("f", ft).unwrap();
        let p = Plan::factorized_scan(&c, "f", crate::plan::FactorizedSide::Join)
            .unwrap()
            .aggregate(vec![], vec![(AggCall::count_star(), "n".into())]);
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(
            matches!(&opt.kind, PlanKind::FactorizedCount { .. }),
            "{}",
            opt.explain()
        );
        assert_eq!(execute(&opt, &c).unwrap(), vec![vec![Value::Int(5)]]);
        assert_eq!(execute(&p, &c).unwrap(), execute(&opt, &c).unwrap());
    }
}

#[cfg(test)]
mod cost_tests {
    use super::*;
    use crate::exec::execute;
    use erbium_storage::{Column, DataType, Table, TableSchema};

    /// big(id, k): 1000 rows, k = id % 10; small(k): 10 rows; mid(k): 100
    /// rows — all ANALYZEd.
    fn analyzed_cat3() -> Catalog {
        let mut c = Catalog::new();
        let mut big = Table::new(TableSchema::new(
            "big",
            vec![Column::not_null("id", DataType::Int), Column::new("k", DataType::Int)],
            vec![0],
        ));
        for i in 0..1000i64 {
            big.insert(vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
        }
        c.create_table(big).unwrap();
        let mut small =
            Table::new(TableSchema::new("small", vec![Column::not_null("k", DataType::Int)], vec![0]));
        for i in 0..10i64 {
            small.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(small).unwrap();
        let mut mid =
            Table::new(TableSchema::new("mid", vec![Column::not_null("k", DataType::Int)], vec![0]));
        for i in 0..100i64 {
            mid.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(mid).unwrap();
        c.analyze();
        c
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort();
        rows
    }

    #[test]
    fn build_side_swapped_when_left_is_smaller() {
        let c = analyzed_cat3();
        // small ⋈ big: the executor builds the RIGHT side, so without the
        // pass it would build the 1000-row table.
        let p = Plan::scan(&c, "small").unwrap().join(
            Plan::scan(&c, "big").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(1)],
        );
        let opt = optimize(p.clone(), &c).unwrap();
        match &opt.kind {
            PlanKind::Project { input, .. } => match &input.kind {
                PlanKind::Join { left, right, left_keys, right_keys, .. } => {
                    assert!(
                        matches!(&left.kind, PlanKind::Scan { table, .. } if table == "big"),
                        "probe side must be big:\n{}",
                        opt.explain()
                    );
                    assert!(
                        matches!(&right.kind, PlanKind::Scan { table, .. } if table == "small"),
                        "build side must be small:\n{}",
                        opt.explain()
                    );
                    assert_eq!(left_keys, &vec![Expr::col(1)], "keys swapped with the sides");
                    assert_eq!(right_keys, &vec![Expr::col(0)]);
                }
                other => panic!("expected join under project, got {other:?}"),
            },
            other => panic!("expected restore projection on top, got {other:?}"),
        }
        // Field names survive the swap.
        let names: Vec<&str> = opt.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["k", "id", "k"]);
        // Same multiset of rows, same column order.
        assert_eq!(sorted(execute(&p, &c).unwrap()), sorted(execute(&opt, &c).unwrap()));
    }

    #[test]
    fn build_side_not_swapped_when_right_is_smaller() {
        let c = analyzed_cat3();
        let p = Plan::scan(&c, "big").unwrap().join(
            Plan::scan(&c, "small").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(1)],
            vec![Expr::col(0)],
        );
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(matches!(&opt.kind, PlanKind::Join { .. }), "{}", opt.explain());
        assert_eq!(sorted(execute(&p, &c).unwrap()), sorted(execute(&opt, &c).unwrap()));
    }

    #[test]
    fn left_join_never_swapped() {
        let c = analyzed_cat3();
        let p = Plan::scan(&c, "small").unwrap().join(
            Plan::scan(&c, "big").unwrap(),
            JoinKind::Left,
            vec![Expr::col(0)],
            vec![Expr::col(1)],
        );
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(
            matches!(&opt.kind, PlanKind::Join { kind: JoinKind::Left, left, .. }
                if matches!(&left.kind, PlanKind::Scan { table, .. } if table == "small")),
            "{}",
            opt.explain()
        );
        assert_eq!(sorted(execute(&p, &c).unwrap()), sorted(execute(&opt, &c).unwrap()));
    }

    #[test]
    fn join_chain_reordered_smallest_first() {
        let c = analyzed_cat3();
        // Written order: (big ⋈ small) ⋈ mid. Greedy should join the two
        // small tables into big instead: (small ⋈ big) ⋈ mid.
        let p = Plan::scan(&c, "big")
            .unwrap()
            .join(
                Plan::scan(&c, "small").unwrap(),
                JoinKind::Inner,
                vec![Expr::col(1)],
                vec![Expr::col(0)],
            )
            .join(
                Plan::scan(&c, "mid").unwrap(),
                JoinKind::Inner,
                vec![Expr::col(1)],
                vec![Expr::col(0)],
            );
        let reordered = reorder_joins(p.clone(), &c);
        match &reordered.kind {
            PlanKind::Project { input, .. } => match &input.kind {
                PlanKind::Join { left, right, .. } => {
                    assert!(
                        matches!(&right.kind, PlanKind::Scan { table, .. } if table == "mid"),
                        "mid joins last:\n{}",
                        reordered.explain()
                    );
                    match &left.kind {
                        PlanKind::Join { left: ll, right: lr, .. } => {
                            assert!(matches!(&ll.kind, PlanKind::Scan { table, .. } if table == "small"));
                            assert!(matches!(&lr.kind, PlanKind::Scan { table, .. } if table == "big"));
                        }
                        other => panic!("expected inner join, got {other:?}"),
                    }
                }
                other => panic!("expected join under project, got {other:?}"),
            },
            other => panic!("expected restore projection, got {other:?}"),
        }
        // Column order and field names restored.
        assert_eq!(reordered.fields, p.fields);
        assert_eq!(sorted(execute(&p, &c).unwrap()), sorted(execute(&reordered, &c).unwrap()));
        // The full pipeline also stays correct (build-side pass runs on the
        // rebuilt tree afterwards).
        let opt = optimize(p.clone(), &c).unwrap();
        assert_eq!(sorted(execute(&p, &c).unwrap()), sorted(execute(&opt, &c).unwrap()));
    }

    #[test]
    fn reorder_keeps_already_good_order() {
        let c = analyzed_cat3();
        // (small ⋈ big) ⋈ mid is already the greedy order: no projection is
        // inserted, the tree shape is untouched.
        let p = Plan::scan(&c, "small")
            .unwrap()
            .join(
                Plan::scan(&c, "big").unwrap(),
                JoinKind::Inner,
                vec![Expr::col(0)],
                vec![Expr::col(1)],
            )
            .join(
                Plan::scan(&c, "mid").unwrap(),
                JoinKind::Inner,
                vec![Expr::col(2)],
                vec![Expr::col(0)],
            );
        let reordered = reorder_joins(p.clone(), &c);
        assert_eq!(reordered, p);
    }

    #[test]
    fn cost_passes_are_noops_without_stats() {
        // Same tables, no ANALYZE: the plan shape must be exactly what the
        // rule-based passes alone produce.
        let mut c = Catalog::new();
        let mut big = Table::new(TableSchema::new(
            "big",
            vec![Column::not_null("id", DataType::Int), Column::new("k", DataType::Int)],
            vec![0],
        ));
        for i in 0..50i64 {
            big.insert(vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
        }
        c.create_table(big).unwrap();
        let mut small =
            Table::new(TableSchema::new("small", vec![Column::not_null("k", DataType::Int)], vec![0]));
        for i in 0..5i64 {
            small.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(small).unwrap();
        assert!(c.stats().is_empty());
        let p = Plan::scan(&c, "small").unwrap().join(
            Plan::scan(&c, "big").unwrap(),
            JoinKind::Inner,
            vec![Expr::col(0)],
            vec![Expr::col(1)],
        );
        let opt = optimize(p.clone(), &c).unwrap();
        // No restore projection, no swap: left is still `small`.
        assert!(
            matches!(&opt.kind, PlanKind::Join { left, .. }
                if matches!(&left.kind, PlanKind::Scan { table, .. } if table == "small")),
            "{}",
            opt.explain()
        );
    }

    #[test]
    fn stats_rank_selective_filter_first() {
        let c = analyzed_cat3();
        // Both predicates have the same static cost rank (Binary over
        // Col/Lit). `k >= 0` keeps every row; `id = 3` keeps one in a
        // thousand. With stats the selective one must run first; without
        // stats the pushdown order is kept.
        let keep_all = Expr::binary(BinOp::Ge, Expr::col(1), Expr::lit(0i64));
        let selective = Expr::eq(Expr::col(0), Expr::lit(3i64));
        let one_in_ten = Expr::and(keep_all.clone(), selective.clone());
        let p = Plan::scan(&c, "big").unwrap().filter(one_in_ten.clone());
        let with_stats = rank_filters(push_filters(p.clone()).unwrap(), &c);
        match &with_stats.kind {
            PlanKind::Scan { filters, .. } => {
                assert_eq!(filters[0], selective, "selective predicate first with stats");
                assert_eq!(filters[1], keep_all);
            }
            other => panic!("expected scan, got {other:?}"),
        }
        let bare = {
            let mut c2 = Catalog::new();
            let mut big = Table::new(TableSchema::new(
                "big",
                vec![Column::not_null("id", DataType::Int), Column::new("k", DataType::Int)],
                vec![0],
            ));
            big.insert(vec![Value::Int(0), Value::Int(0)]).unwrap();
            c2.create_table(big).unwrap();
            c2
        };
        let q = Plan::scan(&bare, "big").unwrap().filter(one_in_ten);
        let without_stats = rank_filters(push_filters(q).unwrap(), &bare);
        match &without_stats.kind {
            PlanKind::Scan { filters, .. } => {
                assert_eq!(filters[0], keep_all, "stable static order without stats");
                assert_eq!(filters[1], selective);
            }
            other => panic!("expected scan, got {other:?}"),
        }
    }

}
