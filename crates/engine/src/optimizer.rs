//! Rule-based plan optimizer.
//!
//! Passes, applied in order:
//!
//! 1. **Constant folding** — evaluate column-free subexpressions.
//! 2. **Filter normalization & pushdown** — split conjunctions; merge
//!    adjacent filters; push predicates through projections (by inlining
//!    the projected expressions), into the matching side of joins, into
//!    all branches of unions, and finally into scans.
//! 3. **Index selection** — a scan filtered by `col = literal` or
//!    `col IN <set>` turns into an [`PlanKind::IndexLookup`] when the table
//!    has an index on exactly that column.
//!
//! The paper's argument for logical independence rests on the system (not
//! the user) being able to exploit physical choices like indexes and
//! pushed-down predicates regardless of the mapping; this module is where
//! that happens for the relational substrate.

use crate::error::EngineResult;
use crate::expr::{BinOp, Expr};
use crate::plan::{Plan, PlanKind};
use erbium_storage::{Catalog, Value};

/// Run all optimizer passes.
pub fn optimize(plan: Plan, cat: &Catalog) -> EngineResult<Plan> {
    let plan = fold_constants(plan)?;
    let plan = push_filters(plan)?;
    let plan = select_indexes(plan, cat)?;
    Ok(rank_filters(plan))
}

// ---- filter cost ranking ---------------------------------------------------

/// Order every conjunctive filter list in the plan by static evaluation
/// cost ([`Expr::cost_rank`]), cheapest first.
///
/// Pushed-down scan filters and index residuals are applied per examined
/// row, so running an integer comparison before an `array_contains` walk
/// lets the cheap predicate prune rows before the expensive one runs. The
/// sort is stable: equally-ranked predicates keep their pushdown order.
/// Runs after [`select_indexes`] so index residual lists are ranked too.
pub fn rank_filters(mut plan: Plan) -> Plan {
    rank_filters_mut(&mut plan);
    plan
}

fn sort_by_cost(filters: &mut [Expr]) {
    filters.sort_by_key(Expr::cost_rank);
}

fn rank_filters_mut(plan: &mut Plan) {
    match &mut plan.kind {
        PlanKind::Scan { filters, .. } | PlanKind::FactorizedScan { filters, .. } => {
            sort_by_cost(filters);
        }
        PlanKind::IndexLookup { residual, .. } | PlanKind::IndexRange { residual, .. } => {
            sort_by_cost(residual);
        }
        PlanKind::FactorizedCount { .. } | PlanKind::Values { .. } => {}
        PlanKind::Filter { input, .. }
        | PlanKind::Project { input, .. }
        | PlanKind::Aggregate { input, .. }
        | PlanKind::Unnest { input, .. }
        | PlanKind::Sort { input, .. }
        | PlanKind::Limit { input, .. }
        | PlanKind::Distinct { input } => rank_filters_mut(input),
        PlanKind::Join { left, right, .. } => {
            rank_filters_mut(left);
            rank_filters_mut(right);
        }
        PlanKind::Union { inputs } => {
            for i in inputs {
                rank_filters_mut(i);
            }
        }
    }
}

// ---- constant folding ------------------------------------------------------

/// Fold constant subexpressions throughout the plan.
pub fn fold_constants(plan: Plan) -> EngineResult<Plan> {
    map_exprs(plan, &fold_expr)
}

fn fold_expr(e: Expr) -> Expr {
    // Fold children first.
    let e = match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(fold_expr(*left)),
            right: Box::new(fold_expr(*right)),
        },
        Expr::Unary { op, expr } => Expr::Unary { op, expr: Box::new(fold_expr(*expr)) },
        Expr::Func { func, args } => {
            Expr::Func { func, args: args.into_iter().map(fold_expr).collect() }
        }
        Expr::Field { expr, index } => Expr::Field { expr: Box::new(fold_expr(*expr)), index },
        Expr::IsNull(x) => Expr::IsNull(Box::new(fold_expr(*x))),
        Expr::IsNotNull(x) => Expr::IsNotNull(Box::new(fold_expr(*x))),
        other => other,
    };
    if !matches!(e, Expr::Lit(_)) && e.is_constant() {
        // A failing constant (e.g. 1/0) is left unfolded so the error
        // surfaces at execution time instead of plan time.
        if let Ok(v) = e.eval(&[]) {
            return Expr::Lit(v);
        }
    }
    // TRUE simplifications that keep three-valued semantics intact.
    match e {
        Expr::Binary { op: BinOp::And, left, right } => match (&*left, &*right) {
            (Expr::Lit(Value::Bool(true)), _) => *right,
            (_, Expr::Lit(Value::Bool(true))) => *left,
            (Expr::Lit(Value::Bool(false)), _) | (_, Expr::Lit(Value::Bool(false))) => {
                Expr::Lit(Value::Bool(false))
            }
            _ => Expr::Binary { op: BinOp::And, left, right },
        },
        Expr::Binary { op: BinOp::Or, left, right } => match (&*left, &*right) {
            (Expr::Lit(Value::Bool(false)), _) => *right,
            (_, Expr::Lit(Value::Bool(false))) => *left,
            (Expr::Lit(Value::Bool(true)), _) | (_, Expr::Lit(Value::Bool(true))) => {
                Expr::Lit(Value::Bool(true))
            }
            _ => Expr::Binary { op: BinOp::Or, left, right },
        },
        other => other,
    }
}

fn map_exprs(plan: Plan, f: &impl Fn(Expr) -> Expr) -> EngineResult<Plan> {
    let fields = plan.fields;
    let kind = match plan.kind {
        PlanKind::Scan { table, filters } => {
            PlanKind::Scan { table, filters: filters.into_iter().map(f).collect() }
        }
        PlanKind::IndexLookup { table, columns, keys, residual } => PlanKind::IndexLookup {
            table,
            columns,
            keys,
            residual: residual.into_iter().map(f).collect(),
        },
        PlanKind::IndexRange { table, column, lo, hi, residual } => PlanKind::IndexRange {
            table,
            column,
            lo,
            hi,
            residual: residual.into_iter().map(f).collect(),
        },
        PlanKind::FactorizedScan { table, side, filters } => PlanKind::FactorizedScan {
            table,
            side,
            filters: filters.into_iter().map(f).collect(),
        },
        PlanKind::FactorizedCount { table } => PlanKind::FactorizedCount { table },
        PlanKind::Filter { input, predicate } => PlanKind::Filter {
            input: Box::new(map_exprs(*input, f)?),
            predicate: f(predicate),
        },
        PlanKind::Project { input, exprs } => PlanKind::Project {
            input: Box::new(map_exprs(*input, f)?),
            exprs: exprs.into_iter().map(f).collect(),
        },
        PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
            left: Box::new(map_exprs(*left, f)?),
            right: Box::new(map_exprs(*right, f)?),
            kind,
            left_keys: left_keys.into_iter().map(f).collect(),
            right_keys: right_keys.into_iter().map(f).collect(),
        },
        PlanKind::Aggregate { input, group, aggs } => PlanKind::Aggregate {
            input: Box::new(map_exprs(*input, f)?),
            group: group.into_iter().map(f).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = f(a.arg);
                    a
                })
                .collect(),
        },
        PlanKind::Unnest { input, column, keep_empty } => {
            PlanKind::Unnest { input: Box::new(map_exprs(*input, f)?), column, keep_empty }
        }
        PlanKind::Sort { input, keys } => PlanKind::Sort {
            input: Box::new(map_exprs(*input, f)?),
            keys: keys
                .into_iter()
                .map(|mut k| {
                    k.expr = f(k.expr);
                    k
                })
                .collect(),
        },
        PlanKind::Limit { input, limit } => {
            PlanKind::Limit { input: Box::new(map_exprs(*input, f)?), limit }
        }
        PlanKind::Distinct { input } => PlanKind::Distinct { input: Box::new(map_exprs(*input, f)?) },
        PlanKind::Union { inputs } => PlanKind::Union {
            inputs: inputs.into_iter().map(|p| map_exprs(p, f)).collect::<EngineResult<_>>()?,
        },
        PlanKind::Values { rows } => PlanKind::Values { rows },
    };
    Ok(Plan { kind, fields })
}

// ---- filter pushdown --------------------------------------------------------

/// Push filter predicates as close to the scans as possible.
pub fn push_filters(plan: Plan) -> EngineResult<Plan> {
    let fields = plan.fields.clone();
    let kind = match plan.kind {
        PlanKind::Filter { input, predicate } => {
            let input = push_filters(*input)?;
            let conjuncts = predicate.split_conjunction();
            return Ok(push_conjuncts_into(input, conjuncts));
        }
        PlanKind::Project { input, exprs } => PlanKind::Project {
            input: Box::new(push_filters(*input)?),
            exprs,
        },
        PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
            left: Box::new(push_filters(*left)?),
            right: Box::new(push_filters(*right)?),
            kind,
            left_keys,
            right_keys,
        },
        PlanKind::Aggregate { input, group, aggs } => {
            PlanKind::Aggregate { input: Box::new(push_filters(*input)?), group, aggs }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            PlanKind::Unnest { input: Box::new(push_filters(*input)?), column, keep_empty }
        }
        PlanKind::Sort { input, keys } => {
            PlanKind::Sort { input: Box::new(push_filters(*input)?), keys }
        }
        PlanKind::Limit { input, limit } => {
            PlanKind::Limit { input: Box::new(push_filters(*input)?), limit }
        }
        PlanKind::Distinct { input } => {
            PlanKind::Distinct { input: Box::new(push_filters(*input)?) }
        }
        PlanKind::Union { inputs } => PlanKind::Union {
            inputs: inputs.into_iter().map(push_filters).collect::<EngineResult<_>>()?,
        },
        leaf => leaf,
    };
    Ok(Plan { kind, fields })
}

/// Push a set of conjuncts into `plan`, leaving a residual Filter on top
/// for whatever cannot sink further.
fn push_conjuncts_into(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        return plan;
    }
    let fields = plan.fields.clone();
    match plan.kind {
        PlanKind::Scan { table, mut filters } => {
            filters.extend(conjuncts);
            Plan { kind: PlanKind::Scan { table, filters }, fields }
        }
        PlanKind::FactorizedScan { table, side, mut filters } => {
            filters.extend(conjuncts);
            Plan { kind: PlanKind::FactorizedScan { table, side, filters }, fields }
        }
        PlanKind::IndexLookup { table, columns, keys, mut residual } => {
            residual.extend(conjuncts);
            Plan { kind: PlanKind::IndexLookup { table, columns, keys, residual }, fields }
        }
        PlanKind::IndexRange { table, column, lo, hi, mut residual } => {
            residual.extend(conjuncts);
            Plan { kind: PlanKind::IndexRange { table, column, lo, hi, residual }, fields }
        }
        PlanKind::Filter { input, predicate } => {
            let mut all = predicate.split_conjunction();
            all.extend(conjuncts);
            push_conjuncts_into(*input, all)
        }
        PlanKind::Project { input, exprs } => {
            // Inline projected expressions into each predicate; safe for any
            // deterministic expression.
            let rewritten: Vec<Expr> =
                conjuncts.iter().map(|p| substitute_columns(p, &exprs)).collect();
            let pushed = push_conjuncts_into(*input, rewritten);
            Plan { kind: PlanKind::Project { input: Box::new(pushed), exprs }, fields }
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => {
            let left_arity = left.fields.len();
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut keep = Vec::new();
            for p in conjuncts {
                let cols = p.columns();
                let all_left = cols.iter().all(|&c| c < left_arity);
                let all_right = cols.iter().all(|&c| c >= left_arity);
                if all_left {
                    left_preds.push(p);
                } else if all_right && kind == crate::plan::JoinKind::Inner {
                    right_preds.push(p.map_columns(&|c| c - left_arity));
                } else {
                    keep.push(p);
                }
            }
            let new_left = push_conjuncts_into(*left, left_preds);
            let new_right = push_conjuncts_into(*right, right_preds);
            let joined = Plan {
                kind: PlanKind::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    left_keys,
                    right_keys,
                },
                fields,
            };
            wrap_filter(joined, keep)
        }
        PlanKind::Union { inputs } => {
            let pushed: Vec<Plan> = inputs
                .into_iter()
                .map(|p| push_conjuncts_into(p, conjuncts.clone()))
                .collect();
            Plan { kind: PlanKind::Union { inputs: pushed }, fields }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            // Predicates not touching the unnested column commute with the
            // unnest (inner or outer): column indexes are unchanged and the
            // predicate is row-local over the preserved columns.
            let (push, keep): (Vec<Expr>, Vec<Expr>) =
                conjuncts.into_iter().partition(|p| !p.columns().contains(&column));
            let pushed = push_conjuncts_into(*input, push);
            let plan = Plan {
                kind: PlanKind::Unnest { input: Box::new(pushed), column, keep_empty },
                fields,
            };
            wrap_filter(plan, keep)
        }
        other => wrap_filter(Plan { kind: other, fields }, conjuncts),
    }
}

fn wrap_filter(plan: Plan, conjuncts: Vec<Expr>) -> Plan {
    if conjuncts.is_empty() {
        return plan;
    }
    let fields = plan.fields.clone();
    Plan {
        kind: PlanKind::Filter { input: Box::new(plan), predicate: Expr::conjunction(conjuncts) },
        fields,
    }
}

/// Replace `Col(i)` with `projection[i]`.
fn substitute_columns(pred: &Expr, projection: &[Expr]) -> Expr {
    match pred {
        Expr::Col(i) => projection.get(*i).cloned().unwrap_or_else(|| pred.clone()),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute_columns(left, projection)),
            right: Box::new(substitute_columns(right, projection)),
        },
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(substitute_columns(expr, projection)) }
        }
        Expr::Func { func, args } => Expr::Func {
            func: *func,
            args: args.iter().map(|a| substitute_columns(a, projection)).collect(),
        },
        Expr::Field { expr, index } => {
            Expr::Field { expr: Box::new(substitute_columns(expr, projection)), index: *index }
        }
        Expr::InSet { expr, set } => Expr::InSet {
            expr: Box::new(substitute_columns(expr, projection)),
            set: std::sync::Arc::clone(set),
        },
        Expr::IsNull(e) => Expr::IsNull(Box::new(substitute_columns(e, projection))),
        Expr::IsNotNull(e) => Expr::IsNotNull(Box::new(substitute_columns(e, projection))),
    }
}

// ---- index selection ---------------------------------------------------------

/// Convert filtered scans into index lookups where an index exists.
pub fn select_indexes(plan: Plan, cat: &Catalog) -> EngineResult<Plan> {
    let fields = plan.fields;
    let kind = match plan.kind {
        PlanKind::Scan { table, filters } => {
            if let Ok(t) = cat.table(&table) {
                match extract_index_lookup(t, &filters) {
                    Some((columns, keys, residual)) => {
                        PlanKind::IndexLookup { table, columns, keys, residual }
                    }
                    None => match extract_index_range(t, &filters) {
                        Some((column, lo, hi, residual)) => {
                            PlanKind::IndexRange { table, column, lo, hi, residual }
                        }
                        None => PlanKind::Scan { table, filters },
                    },
                }
            } else {
                PlanKind::Scan { table, filters }
            }
        }
        PlanKind::Filter { input, predicate } => PlanKind::Filter {
            input: Box::new(select_indexes(*input, cat)?),
            predicate,
        },
        PlanKind::Project { input, exprs } => {
            PlanKind::Project { input: Box::new(select_indexes(*input, cat)?), exprs }
        }
        PlanKind::Join { left, right, kind, left_keys, right_keys } => PlanKind::Join {
            left: Box::new(select_indexes(*left, cat)?),
            right: Box::new(select_indexes(*right, cat)?),
            kind,
            left_keys,
            right_keys,
        },
        PlanKind::Aggregate { input, group, aggs } => {
            // Aggregate pushdown through a factorized join: COUNT(*) over
            // the pure stored join is the structure's pair count (the
            // paper's "execute some types of aggregate queries more
            // efficiently by ... pushing down aggregations through the
            // joins").
            if group.is_empty() && aggs.len() == 1 {
                if let (crate::agg::AggFunc::CountStar, PlanKind::FactorizedScan {
                    table,
                    side: crate::plan::FactorizedSide::Join,
                    filters,
                }) = (aggs[0].func, &input.kind)
                {
                    if filters.is_empty() {
                        return Ok(Plan {
                            kind: PlanKind::FactorizedCount { table: table.clone() },
                            fields,
                        });
                    }
                }
            }
            PlanKind::Aggregate { input: Box::new(select_indexes(*input, cat)?), group, aggs }
        }
        PlanKind::Unnest { input, column, keep_empty } => {
            PlanKind::Unnest { input: Box::new(select_indexes(*input, cat)?), column, keep_empty }
        }
        PlanKind::Sort { input, keys } => {
            PlanKind::Sort { input: Box::new(select_indexes(*input, cat)?), keys }
        }
        PlanKind::Limit { input, limit } => {
            PlanKind::Limit { input: Box::new(select_indexes(*input, cat)?), limit }
        }
        PlanKind::Distinct { input } => {
            PlanKind::Distinct { input: Box::new(select_indexes(*input, cat)?) }
        }
        PlanKind::Union { inputs } => PlanKind::Union {
            inputs: inputs
                .into_iter()
                .map(|p| select_indexes(p, cat))
                .collect::<EngineResult<_>>()?,
        },
        leaf => leaf,
    };
    Ok(Plan { kind, fields })
}

/// If some filter is `Col(i) = lit` or `Col(i) IN <set>` and the table has
/// an index on column `i`, return the lookup spec plus residual filters.
fn extract_index_lookup(
    table: &erbium_storage::Table,
    filters: &[Expr],
) -> Option<(Vec<usize>, Vec<Value>, Vec<Expr>)> {
    for (pos, f) in filters.iter().enumerate() {
        let (col, keys) = match f {
            Expr::Binary { op: BinOp::Eq, left, right } => match (&**left, &**right) {
                (Expr::Col(i), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(i)) if !v.is_null() => {
                    (*i, vec![v.clone()])
                }
                _ => continue,
            },
            Expr::InSet { expr, set } => match &**expr {
                Expr::Col(i) => {
                    let mut keys: Vec<Value> = set.iter().cloned().collect();
                    keys.sort();
                    (*i, keys)
                }
                _ => continue,
            },
            _ => continue,
        };
        if table.has_index_on(&[col]) {
            let residual: Vec<Expr> = filters
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, e)| e.clone())
                .collect();
            return Some((vec![col], keys, residual));
        }
    }
    None
}

/// If some filter is a comparison `Col(i) <op> lit` and the table has an
/// ordered (BTree) index on column `i`, return the range spec plus residual
/// filters. Only single-bound ranges are extracted; a second bound on the
/// same column stays residual (still correct, marginally less tight).
type RangeBound = Option<(Value, bool)>;

fn extract_index_range(
    table: &erbium_storage::Table,
    filters: &[Expr],
) -> Option<(usize, RangeBound, RangeBound, Vec<Expr>)> {
    use erbium_storage::IndexKind;
    for (pos, f) in filters.iter().enumerate() {
        let Expr::Binary { op, left, right } = f else { continue };
        let (col, lit, op) = match (&**left, &**right) {
            (Expr::Col(i), Expr::Lit(v)) if !v.is_null() => (*i, v.clone(), *op),
            (Expr::Lit(v), Expr::Col(i)) if !v.is_null() => {
                // Mirror the comparison: lit < col ≡ col > lit.
                let mirrored = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                };
                (*i, v.clone(), mirrored)
            }
            _ => continue,
        };
        let (lo, hi) = match op {
            BinOp::Lt => (None, Some((lit, false))),
            BinOp::Le => (None, Some((lit, true))),
            BinOp::Gt => (Some((lit, false)), None),
            BinOp::Ge => (Some((lit, true)), None),
            _ => continue,
        };
        let has_btree = table
            .indexes()
            .iter()
            .any(|ix| ix.columns == [col] && ix.kind() == IndexKind::BTree);
        if has_btree {
            let residual: Vec<Expr> = filters
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, e)| e.clone())
                .collect();
            return Some((col, lo, hi, residual));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::JoinKind;
    use erbium_storage::{Column, DataType, Table, TableSchema};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("v", DataType::Int),
            ],
            vec![0],
        ));
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i * 2)]).unwrap();
        }
        c.create_table(t).unwrap();
        c
    }

    #[test]
    fn constant_folding_simplifies() {
        let e = Expr::and(
            Expr::lit(true),
            Expr::eq(Expr::col(0), Expr::binary(BinOp::Add, Expr::lit(1i64), Expr::lit(2i64))),
        );
        let folded = fold_expr(e);
        assert_eq!(folded, Expr::eq(Expr::col(0), Expr::lit(3i64)));
    }

    #[test]
    fn folding_keeps_failing_constants() {
        let e = Expr::binary(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        let folded = fold_expr(e.clone());
        assert_eq!(folded, e);
    }

    #[test]
    fn rank_filters_orders_scan_conjuncts_cheapest_first() {
        use crate::expr::ScalarFunc;
        let c = cat();
        let cheap = Expr::eq(Expr::col(1), Expr::lit(3i64));
        let pricey = Expr::func(
            ScalarFunc::ArrayContains,
            vec![Expr::col(2), Expr::lit(1i64)],
        );
        let null_check = Expr::IsNotNull(Box::new(Expr::col(0)));
        // Expensive predicate first on purpose.
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(pricey.clone())
            .filter(cheap.clone())
            .filter(null_check.clone());
        let opt = push_filters(p).unwrap();
        let ranked = rank_filters(opt);
        match &ranked.kind {
            PlanKind::Scan { filters, .. } => {
                assert_eq!(filters.len(), 3);
                // IsNotNull(col) rank 2 < Eq(col,lit) rank 3 < ArrayContains rank 17.
                assert_eq!(filters[0], null_check);
                assert_eq!(filters[1], cheap);
                assert_eq!(filters[2], pricey);
                let ranks: Vec<u32> = filters.iter().map(Expr::cost_rank).collect();
                let mut sorted = ranks.clone();
                sorted.sort_unstable();
                assert_eq!(ranks, sorted, "filters must be in ascending cost order");
            }
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn rank_filters_orders_index_residuals() {
        use crate::expr::ScalarFunc;
        let c = cat();
        let pricey = Expr::func(
            ScalarFunc::ArrayContains,
            vec![Expr::col(2), Expr::lit(1i64)],
        );
        let cheap = Expr::binary(BinOp::Lt, Expr::col(2), Expr::lit(50i64));
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(pricey.clone())
            .filter(cheap.clone())
            .filter(Expr::eq(Expr::col(0), Expr::lit(7i64)));
        let opt = optimize(p, &c).unwrap();
        match &opt.kind {
            PlanKind::IndexLookup { residual, .. } => {
                assert_eq!(residual, &vec![cheap, pricey], "residuals ranked cheapest first");
            }
            other => panic!("expected index lookup, got {other:?}"),
        }
    }

    #[test]
    fn filter_pushed_into_scan() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::eq(Expr::col(1), Expr::lit(3i64)));
        let opt = push_filters(p).unwrap();
        match &opt.kind {
            PlanKind::Scan { filters, .. } => assert_eq!(filters.len(), 1),
            other => panic!("expected scan, got {other:?}"),
        }
    }

    #[test]
    fn filter_pushed_through_projection() {
        let c = cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .project(vec![(Expr::col(1), "g".into()), (Expr::col(2), "v".into())])
            .filter(Expr::eq(Expr::col(0), Expr::lit(3i64)));
        let opt = push_filters(p.clone()).unwrap();
        match &opt.kind {
            PlanKind::Project { input, .. } => match &input.kind {
                PlanKind::Scan { filters, .. } => {
                    assert_eq!(filters[0], Expr::eq(Expr::col(1), Expr::lit(3i64)))
                }
                other => panic!("expected scan under project, got {other:?}"),
            },
            other => panic!("expected project, got {other:?}"),
        }
        // Semantics preserved.
        let a = execute(&p, &cat()).unwrap();
        let b = execute(&opt, &cat()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn filter_split_across_join_sides() {
        let c = cat();
        let l = Plan::scan(&c, "t").unwrap();
        let r = Plan::scan(&c, "t").unwrap();
        let j = l
            .join(r, JoinKind::Inner, vec![Expr::col(0)], vec![Expr::col(0)])
            .filter(Expr::and(
                Expr::eq(Expr::col(1), Expr::lit(3i64)),  // left side
                Expr::eq(Expr::col(4), Expr::lit(3i64)), // right side (col 4 = right grp)
            ));
        let opt = push_filters(j.clone()).unwrap();
        match &opt.kind {
            PlanKind::Join { left, right, .. } => {
                assert!(matches!(&left.kind, PlanKind::Scan { filters, .. } if filters.len() == 1));
                assert!(matches!(&right.kind, PlanKind::Scan { filters, .. } if filters.len() == 1));
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(execute(&j, &c).unwrap(), execute(&opt, &c).unwrap());
    }

    #[test]
    fn right_side_filter_not_pushed_through_left_join() {
        let c = cat();
        let l = Plan::scan(&c, "t").unwrap();
        let r = Plan::scan(&c, "t").unwrap();
        let j = l
            .join(r, JoinKind::Left, vec![Expr::col(0)], vec![Expr::col(0)])
            .filter(Expr::eq(Expr::col(4), Expr::lit(3i64)));
        let opt = push_filters(j.clone()).unwrap();
        // Must stay above the join: pushing below a left join changes results.
        assert!(matches!(&opt.kind, PlanKind::Filter { .. }));
        assert_eq!(execute(&j, &c).unwrap(), execute(&opt, &c).unwrap());
    }

    #[test]
    fn index_lookup_selected_for_pk_equality() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::eq(Expr::col(0), Expr::lit(42i64)));
        let opt = optimize(p.clone(), &c).unwrap();
        match &opt.kind {
            PlanKind::IndexLookup { columns, keys, .. } => {
                assert_eq!(columns, &vec![0]);
                assert_eq!(keys, &vec![Value::Int(42)]);
            }
            other => panic!("expected index lookup, got {other:?}"),
        }
        assert_eq!(execute(&p, &c).unwrap(), execute(&opt, &c).unwrap());
    }

    #[test]
    fn in_set_uses_index() {
        let c = cat();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::in_set(Expr::col(0), vec![Value::Int(1), Value::Int(5)]));
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(matches!(&opt.kind, PlanKind::IndexLookup { keys, .. } if keys.len() == 2));
        let mut a = execute(&p, &c).unwrap();
        let mut b = execute(&opt, &c).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn no_index_no_lookup() {
        let c = cat();
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::eq(Expr::col(2), Expr::lit(4i64)));
        let opt = optimize(p, &c).unwrap();
        assert!(matches!(&opt.kind, PlanKind::Scan { .. }));
    }

    #[test]
    fn union_filters_pushed_into_all_branches() {
        let c = cat();
        let u = Plan::union(vec![Plan::scan(&c, "t").unwrap(), Plan::scan(&c, "t").unwrap()])
            .unwrap()
            .filter(Expr::eq(Expr::col(1), Expr::lit(1i64)));
        let opt = push_filters(u.clone()).unwrap();
        match &opt.kind {
            PlanKind::Union { inputs } => {
                for i in inputs {
                    assert!(matches!(&i.kind, PlanKind::Scan { filters, .. } if !filters.is_empty()));
                }
            }
            other => panic!("expected union, got {other:?}"),
        }
        assert_eq!(execute(&u, &c).unwrap(), execute(&opt, &c).unwrap());
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::Plan;
    use erbium_storage::{Column, DataType, IndexKind, Table, TableSchema};

    fn cat_with_btree() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![Column::not_null("id", DataType::Int), Column::new("v", DataType::Int)],
            vec![0],
        ));
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
        }
        t.create_index("by_id", vec![0], IndexKind::BTree).unwrap();
        c.create_table(t).unwrap();
        c
    }

    #[test]
    fn range_scan_selected_for_comparison() {
        let c = cat_with_btree();
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(10i64)));
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(
            matches!(&opt.kind, PlanKind::IndexRange { hi: Some((Value::Int(10), false)), .. }),
            "{}",
            opt.explain()
        );
        let mut a = execute(&p, &c).unwrap();
        let mut b = execute(&opt, &c).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn mirrored_comparison_and_residual() {
        let c = cat_with_btree();
        // 90 <= id AND v = 3 → range on id, residual on v.
        let p = Plan::scan(&c, "t").unwrap().filter(Expr::and(
            Expr::binary(BinOp::Le, Expr::lit(90i64), Expr::col(0)),
            Expr::eq(Expr::col(1), Expr::lit(3i64)),
        ));
        let opt = optimize(p.clone(), &c).unwrap();
        match &opt.kind {
            PlanKind::IndexRange { lo: Some((Value::Int(90), true)), residual, .. } => {
                assert_eq!(residual.len(), 1);
            }
            other => panic!("expected range, got {other:?}"),
        }
        let mut a = execute(&p, &c).unwrap();
        let mut b = execute(&opt, &c).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn no_btree_no_range() {
        let c = cat_with_btree();
        // Column v has no index: stays a scan.
        let p = Plan::scan(&c, "t")
            .unwrap()
            .filter(Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(5i64)));
        let opt = optimize(p, &c).unwrap();
        assert!(matches!(&opt.kind, PlanKind::Scan { .. }));
    }

    #[test]
    fn count_star_pushed_into_factorized_structure() {
        use crate::agg::AggCall;
        use erbium_storage::FactorizedTable;
        let mut c = Catalog::new();
        let mut ft = FactorizedTable::new(
            "f",
            TableSchema::new("l", vec![Column::not_null("a", DataType::Int)], vec![0]),
            TableSchema::new("r", vec![Column::not_null("b", DataType::Int)], vec![0]),
        );
        for i in 0..5i64 {
            let l = ft.insert_left(vec![Value::Int(i)]).unwrap();
            let r = ft.insert_right(vec![Value::Int(i)]).unwrap();
            ft.link(l, r).unwrap();
        }
        c.create_factorized("f", ft).unwrap();
        let p = Plan::factorized_scan(&c, "f", crate::plan::FactorizedSide::Join)
            .unwrap()
            .aggregate(vec![], vec![(AggCall::count_star(), "n".into())]);
        let opt = optimize(p.clone(), &c).unwrap();
        assert!(
            matches!(&opt.kind, PlanKind::FactorizedCount { .. }),
            "{}",
            opt.explain()
        );
        assert_eq!(execute(&opt, &c).unwrap(), vec![vec![Value::Int(5)]]);
        assert_eq!(execute(&p, &c).unwrap(), execute(&opt, &c).unwrap());
    }
}
