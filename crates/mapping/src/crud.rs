//! Entity-centric CRUD, translated to physical operations.
//!
//! The paper's second mapping requirement: "We must be able to map any
//! inserts/updates/deletes to the entities and relationships to the
//! database." [`EntityStore`] is that translation. A single logical
//! operation may touch several physical tables (e.g. inserting an `R3`
//! instance under the normalized mapping writes three delta rows plus
//! multi-valued side rows); callers wrap groups of operations in a storage
//! [`Transaction`] for atomicity.
//!
//! The same module implements **extraction** (reading entity extents and
//! relationship instances back out), which is the reversibility half of the
//! mapping contract and the engine behind the governance operations the
//! paper motivates (entity-centric deletion for GDPR-style erasure).
//!
//! Co-located *factorized* structures are routed through the same
//! [`Transaction`] as plain tables (via its `fact_*` methods), so a logical
//! operation spanning both rolls back — and reaches the write-ahead log —
//! as one atomic group.

use crate::error::{MappingError, MappingResult};
use crate::fragment::{CoFormat, HierarchyLayout};
use crate::lower::{co_col, fk_col, rel_attr_col, EntityHome, Lowering, MvHome, RelHome, Side, TYPE_COL};
use erbium_model::{EntitySet, Relationship};
use erbium_storage::{Catalog, FactSide, Row, RowId, Transaction, Value};
use rustc_hash::FxHashMap;

/// Map a lowering [`Side`] onto the storage layer's [`FactSide`].
fn fact_side(side: Side) -> FactSide {
    match side {
        Side::Left => FactSide::Left,
        Side::Right => FactSide::Right,
    }
}

/// Attribute-name → value map describing one entity instance. Multi-valued
/// attributes are `Value::Array`, composite attributes `Value::Struct`
/// (fields in declaration order). Weak entities include their owner's key
/// attributes under the owner's key names.
pub type EntityData = FxHashMap<String, Value>;

/// One instance in a [`EntityStore::bulk_insert`] batch: attribute data plus
/// at-insert-time many-to-one link targets — the same contract as the
/// `links` argument of [`EntityStore::insert`].
#[derive(Debug, Clone, Default)]
pub struct BulkEntity {
    pub data: EntityData,
    pub links: Vec<(String, Vec<Value>)>,
}

impl BulkEntity {
    /// Build from attribute pairs, no links.
    pub fn new(data: &[(&str, Value)]) -> BulkEntity {
        BulkEntity {
            data: data.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            links: Vec::new(),
        }
    }

    /// Build from attribute pairs plus link targets.
    pub fn linked(data: &[(&str, Value)], links: &[(&str, Vec<Value>)]) -> BulkEntity {
        BulkEntity {
            data: data.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            links: links.iter().map(|(r, k)| (r.to_string(), k.clone())).collect(),
        }
    }
}

/// A relationship instance: from-side key, to-side key, attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct RelInstance {
    pub from_key: Vec<Value>,
    pub to_key: Vec<Value>,
    pub attrs: EntityData,
}

/// The CRUD translator for one lowered mapping.
pub struct EntityStore<'a> {
    lw: &'a Lowering,
}

impl<'a> EntityStore<'a> {
    pub fn new(lw: &'a Lowering) -> EntityStore<'a> {
        EntityStore { lw }
    }

    /// The lowering this store operates against.
    pub fn lowering(&self) -> &Lowering {
        self.lw
    }

    // ---- key helpers ---------------------------------------------------------

    /// Key attribute names of `entity` (full key, owner keys first).
    pub fn key_names(&self, entity: &str) -> MappingResult<Vec<String>> {
        Ok(self.lw.key_columns(entity)?.into_iter().map(|(n, _)| n).collect())
    }

    /// Extract the key of an instance from its data map.
    pub fn key_of(&self, entity: &str, data: &EntityData) -> MappingResult<Vec<Value>> {
        self.key_names(entity)?
            .iter()
            .map(|k| {
                data.get(k).cloned().ok_or_else(|| {
                    MappingError::BadPayload(format!("missing key attribute '{k}' for '{entity}'"))
                })
            })
            .collect()
    }

    fn key_value(key: &[Value]) -> Value {
        match key {
            [v] => v.clone(),
            vs => Value::Struct(vs.to_vec()),
        }
    }

    // ---- insert ----------------------------------------------------------------

    /// Insert one entity instance. `links` carries targets of many-to-one
    /// relationships that must be set at insert time (e.g. total
    /// participation FKs): `(relationship, key-of-the-one-side)`.
    pub fn insert(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        entity: &str,
        data: &EntityData,
        links: &[(&str, Vec<Value>)],
    ) -> MappingResult<()> {
        let chain = self.lw.schema.ancestry(entity)?;
        let chain: Vec<EntitySet> = chain.into_iter().cloned().collect();
        let most = chain.last().expect("nonempty ancestry");
        match self.lw.entity_home(&most.name)?.clone() {
            EntityHome::Merged { table, .. } => {
                let row = self.build_row(&table, entity, data, links)?;
                txn.insert(cat, &table, row)?;
            }
            EntityHome::Table { table, layout: HierarchyLayout::Full } => {
                let row = self.build_row(&table, entity, data, links)?;
                txn.insert(cat, &table, row)?;
            }
            EntityHome::FoldedWeak { owner, column } => {
                self.insert_folded_weak(cat, txn, entity, &owner, &column, data)?;
            }
            _ => {
                // Delta chain, possibly with co-located levels.
                for level in &chain {
                    match self.lw.entity_home(&level.name)?.clone() {
                        EntityHome::Table { table, layout: HierarchyLayout::Delta } => {
                            let row = self.build_row(&table, entity, data, links)?;
                            txn.insert(cat, &table, row)?;
                        }
                        EntityHome::CoLocated { table, side, format } => {
                            self.insert_colocated(cat, txn, &table, side, format, level, data)?;
                        }
                        other => {
                            return Err(MappingError::Unsupported(format!(
                                "unexpected home {other:?} for '{}' in delta chain",
                                level.name
                            )))
                        }
                    }
                }
            }
        }
        // Multi-valued side tables (for every level of the chain).
        for level in &chain {
            for attr in level.attributes.iter().filter(|a| a.multi_valued) {
                if let MvHome::SideTable { table } = self.lw.mv_home(&level.name, &attr.name)? {
                    let table = table.clone();
                    let key = self.key_of(entity, data)?;
                    if let Some(Value::Array(vals)) = data.get(&attr.name) {
                        for v in vals {
                            let mut row = key.clone();
                            row.push(v.clone());
                            txn.insert(cat, &table, row)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Insert a batch of instances of one entity in a single logical
    /// operation. Homes that lower to plain tables (merged, full, and
    /// all-delta chains) are batched: rows are built up front, then each
    /// physical table receives **one** [`Transaction::bulk_insert`] — one
    /// undo entry, one WAL record, one secondary-index pass. Multi-valued
    /// side-table rows are likewise batched per side table. Homes that need
    /// read-modify-write (folded weak) or factorized/denormalized routing
    /// fall back to per-instance [`EntityStore::insert`] within the same
    /// transaction, so atomicity is identical either way.
    ///
    /// Returns the names of the plain tables that received rows. On the
    /// fallback path this is derived from the mapping homes (the tables
    /// the per-instance inserts write to), so callers can refresh live
    /// statistics and invalidate cached plans once per batch either way.
    pub fn bulk_insert(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        entity: &str,
        batch: &[BulkEntity],
    ) -> MappingResult<Vec<String>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let chain = self.lw.schema.ancestry(entity)?;
        let chain: Vec<EntitySet> = chain.into_iter().cloned().collect();
        let most = chain.last().expect("nonempty ancestry");

        // Physical tables that take one built row per instance, in chain
        // order. Empty means the home needs the per-row fallback.
        let mut home_tables: Vec<String> = Vec::new();
        match self.lw.entity_home(&most.name)?.clone() {
            EntityHome::Merged { table, .. }
            | EntityHome::Table { table, layout: HierarchyLayout::Full } => {
                home_tables.push(table);
            }
            EntityHome::FoldedWeak { .. } | EntityHome::CoLocated { .. } => {}
            _ => {
                for level in &chain {
                    match self.lw.entity_home(&level.name)? {
                        EntityHome::Table { table, layout: HierarchyLayout::Delta } => {
                            home_tables.push(table.clone());
                        }
                        _ => {
                            home_tables.clear();
                            break;
                        }
                    }
                }
            }
        }
        if home_tables.is_empty() {
            // Per-instance fallback (folded-weak / co-located homes). The
            // rows still land in physical tables, so report them: the
            // caller refreshes live statistics and bumps the plan-cache
            // generation once for the whole batch, same as the batched
            // path above.
            let touched = self.fallback_touched(&chain)?;
            for b in batch {
                let links: Vec<(&str, Vec<Value>)> =
                    b.links.iter().map(|(r, k)| (r.as_str(), k.clone())).collect();
                self.insert(cat, txn, entity, &b.data, &links)?;
            }
            return Ok(touched);
        }

        let mut per_table: Vec<(String, Vec<Row>)> = home_tables
            .into_iter()
            .map(|t| (t, Vec::with_capacity(batch.len())))
            .collect();
        for b in batch {
            let links: Vec<(&str, Vec<Value>)> =
                b.links.iter().map(|(r, k)| (r.as_str(), k.clone())).collect();
            for (table, rows) in per_table.iter_mut() {
                rows.push(self.build_row(table, entity, &b.data, &links)?);
            }
        }
        // Multi-valued side tables, batched across the whole batch.
        for level in &chain {
            for attr in level.attributes.iter().filter(|a| a.multi_valued) {
                if let MvHome::SideTable { table } = self.lw.mv_home(&level.name, &attr.name)? {
                    let table = table.clone();
                    let mut rows = Vec::new();
                    for b in batch {
                        if let Some(Value::Array(vals)) = b.data.get(&attr.name) {
                            let key = self.key_of(entity, &b.data)?;
                            for v in vals {
                                let mut row = key.clone();
                                row.push(v.clone());
                                rows.push(row);
                            }
                        }
                    }
                    if !rows.is_empty() {
                        per_table.push((table, rows));
                    }
                }
            }
        }
        let mut touched = Vec::with_capacity(per_table.len());
        for (table, rows) in per_table {
            txn.bulk_insert(cat, &table, rows)?;
            touched.push(table);
        }
        Ok(touched)
    }

    /// Plain tables the per-instance fallback of [`Self::bulk_insert`] can
    /// write to, derived from the mapping homes. Conservative per batch: a
    /// table is listed if any instance may land a row (or an in-place
    /// folded-weak update) in it.
    fn fallback_touched(&self, chain: &[EntitySet]) -> MappingResult<Vec<String>> {
        fn note(table: &str, touched: &mut Vec<String>) {
            if !touched.iter().any(|t| t == table) {
                touched.push(table.to_string());
            }
        }
        let mut touched: Vec<String> = Vec::new();
        let most = chain.last().expect("nonempty ancestry");
        if let EntityHome::FoldedWeak { owner, .. } = self.lw.entity_home(&most.name)? {
            // Folded weak elements rewrite the owning row in place; the
            // owner instance lives in its own home table or — under a
            // full-layout hierarchy — in a descendant's.
            let owner = owner.clone();
            match self.lw.entity_home(&owner)? {
                EntityHome::Table { table, .. } | EntityHome::Merged { table, .. } => {
                    note(table, &mut touched);
                }
                EntityHome::CoLocated { table, format: CoFormat::Denormalized, .. } => {
                    note(table, &mut touched);
                }
                _ => {}
            }
            for d in self.lw.schema.descendants(&owner) {
                if let EntityHome::Table { table, .. } = self.lw.entity_home(&d.name)? {
                    note(table, &mut touched);
                }
            }
        } else {
            for level in chain {
                match self.lw.entity_home(&level.name)? {
                    EntityHome::Table { table, .. } | EntityHome::Merged { table, .. } => {
                        note(table, &mut touched);
                    }
                    EntityHome::CoLocated { table, format: CoFormat::Denormalized, .. } => {
                        note(table, &mut touched);
                    }
                    // Factorized members keep their statistics under
                    // `name#side` entries that only ANALYZE writes;
                    // nothing for the caller to refresh.
                    EntityHome::CoLocated { .. } | EntityHome::FoldedWeak { .. } => {}
                }
            }
        }
        for level in chain {
            for attr in level.attributes.iter().filter(|a| a.multi_valued) {
                if let MvHome::SideTable { table } = self.lw.mv_home(&level.name, &attr.name)? {
                    note(table, &mut touched);
                }
            }
        }
        Ok(touched)
    }

    fn insert_folded_weak(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        entity: &str,
        owner: &str,
        column: &str,
        data: &EntityData,
    ) -> MappingResult<()> {
        let owner_key_names = self.key_names(owner)?;
        let owner_key: Vec<Value> = owner_key_names
            .iter()
            .map(|k| {
                data.get(k).cloned().ok_or_else(|| {
                    MappingError::BadPayload(format!(
                        "weak '{entity}' payload missing owner key '{k}'"
                    ))
                })
            })
            .collect::<MappingResult<_>>()?;
        let (table, rid, mut row) = self.locate_plain(cat, owner, &owner_key)?.ok_or_else(|| {
            MappingError::BadPayload(format!("owner instance {owner_key:?} of '{owner}' not found"))
        })?;
        let schema = cat.table(&table)?.schema().clone();
        let col = schema.require_column(column)?;
        let es = self.lw.schema.require_entity(entity)?;
        let elem = weak_struct(es, data)?;
        match &mut row[col] {
            Value::Array(vs) => vs.push(elem),
            v @ Value::Null => *v = Value::Array(vec![elem]),
            other => {
                return Err(MappingError::BadPayload(format!(
                    "folded weak column holds non-array {other}"
                )))
            }
        }
        txn.update(cat, &table, rid, row)?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_colocated(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        table: &str,
        side: Side,
        format: CoFormat,
        _level: &EntitySet,
        data: &EntityData,
    ) -> MappingResult<()> {
        match format {
            CoFormat::Factorized => {
                let ft = cat.factorized(table)?;
                let member = match side {
                    Side::Left => ft.left(),
                    Side::Right => ft.right(),
                };
                let mut row = Vec::with_capacity(member.schema().arity());
                for c in &member.schema().columns {
                    row.push(data.get(&c.name).cloned().unwrap_or(Value::Null));
                }
                txn.fact_insert(cat, table, fact_side(side), row)?;
                Ok(())
            }
            CoFormat::Denormalized => {
                let schema = cat.table(table)?.schema().clone();
                let mut row = vec![Value::Null; schema.arity()];
                for (i, c) in schema.columns.iter().enumerate() {
                    if let Some(stripped) = strip_side(&c.name, side) {
                        row[i] = data.get(stripped).cloned().unwrap_or(Value::Null);
                    }
                }
                txn.insert(cat, table, row)?;
                Ok(())
            }
        }
    }

    /// Build a row for an entity table (delta/full/merged), resolving each
    /// column from the instance data, the `links` list, or a default.
    fn build_row(
        &self,
        table: &str,
        entity: &str,
        data: &EntityData,
        links: &[(&str, Vec<Value>)],
    ) -> MappingResult<Row> {
        let schema = self
            .lw
            .table_schema(table)
            .ok_or_else(|| MappingError::Unsupported(format!("no schema for table '{table}'")))?;
        let mut row = Vec::with_capacity(schema.arity());
        for c in &schema.columns {
            if c.name == TYPE_COL {
                row.push(Value::str(entity));
            } else if let Some(w) = c.name.strip_prefix("_w_") {
                let _ = w;
                row.push(Value::Array(vec![]));
            } else if let Some((rel, part)) = c.name.split_once("__") {
                // Folded FK or relationship-attribute column.
                let value = links
                    .iter()
                    .find(|(r, _)| *r == rel)
                    .and_then(|(r, key)| {
                        let rel_def = self.lw.schema.relationship(r)?;
                        let one = rel_def.one_end()?;
                        let names = self.key_names(&one.entity).ok()?;
                        names.iter().position(|n| n == part).map(|i| key[i].clone())
                    })
                    .unwrap_or(Value::Null);
                row.push(value);
            } else {
                row.push(data.get(&c.name).cloned().unwrap_or(Value::Null));
            }
        }
        Ok(row)
    }

    // ---- locate ---------------------------------------------------------------

    /// Find the plain-table row holding the instance at the level of
    /// `entity` (probing subtree tables for full layouts and co-located /
    /// merged homes as needed). Returns `(table, rid, row)`.
    fn locate_plain(
        &self,
        cat: &Catalog,
        entity: &str,
        key: &[Value],
    ) -> MappingResult<Option<(String, RowId, Row)>> {
        let kv = Self::key_value(key);
        match self.lw.entity_home(entity)? {
            EntityHome::Table { table, layout: HierarchyLayout::Delta } => {
                let t = cat.table(table)?;
                Ok(t.lookup_pk(&kv).map(|(rid, row)| (table.clone(), rid, row.clone())))
            }
            EntityHome::Table { table, layout: HierarchyLayout::Full } => {
                // Probe this table, then descendants' (disjoint extents).
                let mut candidates = vec![table.clone()];
                for d in self.lw.schema.descendants(entity) {
                    if let EntityHome::Table { table, .. } = self.lw.entity_home(&d.name)? {
                        candidates.push(table.clone());
                    }
                }
                for t in candidates {
                    if let Some((rid, row)) = cat.table(&t)?.lookup_pk(&kv) {
                        return Ok(Some((t, rid, row.clone())));
                    }
                }
                Ok(None)
            }
            EntityHome::Merged { table, .. } => {
                let t = cat.table(table)?;
                match t.lookup_pk(&kv) {
                    None => Ok(None),
                    Some((rid, row)) => {
                        let ty_col = t.schema().require_column(TYPE_COL)?;
                        let ty = row[ty_col].as_str().unwrap_or_default().to_string();
                        if self.in_subtree(entity, &ty) {
                            Ok(Some((table.clone(), rid, row.clone())))
                        } else {
                            Ok(None)
                        }
                    }
                }
            }
            EntityHome::CoLocated { table, side, format } => match format {
                CoFormat::Factorized => Err(MappingError::Unsupported(format!(
                    "'{entity}' lives in factorized structure '{table}'; use locate_factorized"
                ))),
                CoFormat::Denormalized => {
                    let t = cat.table(table)?;
                    let key_cols = self.denorm_key_cols(cat, table, *side, entity)?;
                    let rows = t.index_lookup(&key_cols, &kv).ok_or_else(|| {
                        MappingError::Unsupported(format!("no key index on '{table}'"))
                    })?;
                    Ok(rows
                        .first()
                        .map(|(rid, row)| (table.clone(), *rid, (*row).clone())))
                }
            },
            EntityHome::FoldedWeak { .. } => Err(MappingError::Unsupported(format!(
                "'{entity}' is folded into its owner; use weak-element access"
            ))),
        }
    }

    fn denorm_key_cols(
        &self,
        cat: &Catalog,
        table: &str,
        side: Side,
        entity: &str,
    ) -> MappingResult<Vec<usize>> {
        let schema = cat.table(table)?.schema();
        self.key_names(entity)?
            .iter()
            .map(|k| Ok(schema.require_column(&co_col(side, k))?))
            .collect()
    }

    fn in_subtree(&self, root: &str, ty: &str) -> bool {
        ty == root
            || self
                .lw
                .schema
                .descendants(root)
                .iter()
                .any(|d| d.name == ty)
    }

    // ---- get -----------------------------------------------------------------

    /// Fetch one instance, assembling all attributes visible at the level
    /// of `entity` (inherited ones included). Returns `None` if no such
    /// instance exists.
    pub fn get(&self, cat: &Catalog, entity: &str, key: &[Value]) -> MappingResult<Option<EntityData>> {
        let chain = self.lw.schema.ancestry(entity)?;
        let chain: Vec<EntitySet> = chain.into_iter().cloned().collect();
        let mut out = EntityData::default();
        // Key attributes first.
        let key_names = self.key_names(entity)?;
        for (n, v) in key_names.iter().zip(key.iter()) {
            out.insert(n.clone(), v.clone());
        }
        let most = chain.last().expect("nonempty");
        // Resolve the "most specific asked level" presence first.
        match self.lw.entity_home(&most.name)? {
            EntityHome::FoldedWeak { owner, column } => {
                let owner_len = self.key_names(owner)?.len();
                let (owner_key, partial) = key.split_at(owner_len);
                let Some((table, _rid, row)) = self.locate_plain(cat, owner, owner_key)? else {
                    return Ok(None);
                };
                let col = cat.table(&table)?.schema().require_column(column)?;
                let es = self.lw.schema.require_entity(entity)?;
                let partial_names: Vec<&str> = es.key.iter().map(String::as_str).collect();
                if let Value::Array(elems) = &row[col] {
                    for elem in elems {
                        if let Value::Struct(vals) = elem {
                            let matches = partial_names.iter().enumerate().all(|(i, pk)| {
                                let idx = es
                                    .attributes
                                    .iter()
                                    .position(|a| a.name == *pk)
                                    .expect("partial key is an attribute");
                                vals.get(idx) == partial.get(i)
                            });
                            if matches {
                                for (a, v) in es.attributes.iter().zip(vals.iter()) {
                                    out.insert(a.name.clone(), v.clone());
                                }
                                return Ok(Some(out));
                            }
                        }
                    }
                }
                return Ok(None);
            }
            EntityHome::CoLocated { table, side, format: CoFormat::Factorized } => {
                let ft = cat.factorized(table)?;
                let member = match side {
                    Side::Left => ft.left(),
                    Side::Right => ft.right(),
                };
                let Some((_, row)) = member.lookup_pk(&Self::key_value(key)) else {
                    return Ok(None);
                };
                for (c, v) in member.schema().columns.iter().zip(row.iter()) {
                    out.insert(c.name.clone(), v.clone());
                }
                // Fall through to pick up ancestor-level attributes below.
            }
            _ => {}
        }
        // Walk the chain collecting resident attributes.
        for level in &chain {
            match self.lw.entity_home(&level.name)? {
                EntityHome::Table { .. } | EntityHome::Merged { .. } => {
                    let Some((table, _rid, row)) = self.locate_plain(cat, &level.name, key)?
                    else {
                        return Ok(None);
                    };
                    let schema = cat.table(&table)?.schema();
                    for a in &level.attributes {
                        if let Some(i) = schema.column_index(&a.name) {
                            out.insert(a.name.clone(), row[i].clone());
                        }
                    }
                    // Full layout: one row holds everything for the chain.
                    if matches!(
                        self.lw.entity_home(&level.name)?,
                        EntityHome::Table { layout: HierarchyLayout::Full, .. }
                    ) {
                        for l2 in &chain {
                            for a in &l2.attributes {
                                if let Some(i) = schema.column_index(&a.name) {
                                    out.insert(a.name.clone(), row[i].clone());
                                }
                            }
                        }
                        break;
                    }
                }
                EntityHome::CoLocated { table, side, format } => match format {
                    CoFormat::Factorized => {
                        let ft = cat.factorized(table)?;
                        let member = match side {
                            Side::Left => ft.left(),
                            Side::Right => ft.right(),
                        };
                        let Some((_, row)) = member.lookup_pk(&Self::key_value(key)) else {
                            return Ok(None);
                        };
                        for (c, v) in member.schema().columns.iter().zip(row.iter()) {
                            out.insert(c.name.clone(), v.clone());
                        }
                    }
                    CoFormat::Denormalized => {
                        let Some((table, _rid, row)) = self.locate_plain(cat, &level.name, key)?
                        else {
                            return Ok(None);
                        };
                        let schema = cat.table(&table)?.schema();
                        for a in &level.attributes {
                            if let Some(i) = schema.column_index(&co_col(*side, &a.name)) {
                                out.insert(a.name.clone(), row[i].clone());
                            }
                        }
                    }
                },
                EntityHome::FoldedWeak { .. } => {
                    // Only reachable for the most-specific level; handled above.
                }
            }
        }
        // Multi-valued side tables.
        for level in &chain {
            for a in level.attributes.iter().filter(|a| a.multi_valued) {
                if let MvHome::SideTable { table } = self.lw.mv_home(&level.name, &a.name)? {
                    let vals = self.mv_values(cat, table, key)?;
                    out.insert(a.name.clone(), Value::Array(vals));
                }
            }
        }
        Ok(Some(out))
    }

    fn mv_values(&self, cat: &Catalog, table: &str, key: &[Value]) -> MappingResult<Vec<Value>> {
        let t = cat.table(table)?;
        let klen = key.len();
        let mut out = Vec::new();
        for (_, row) in t.scan() {
            if row[..klen] == *key {
                out.push(row[klen].clone());
            }
        }
        Ok(out)
    }

    // ---- update ----------------------------------------------------------------

    /// Update attributes of one instance. Key attributes cannot be changed.
    pub fn update(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        entity: &str,
        key: &[Value],
        changes: &EntityData,
    ) -> MappingResult<()> {
        let key_names = self.key_names(entity)?;
        for k in changes.keys() {
            if key_names.contains(k) {
                return Err(MappingError::BadPayload(format!(
                    "key attribute '{k}' cannot be updated"
                )));
            }
        }
        let chain = self.lw.schema.ancestry(entity)?;
        let chain: Vec<EntitySet> = chain.into_iter().cloned().collect();
        for level in &chain {
            // Attributes of this level mentioned in the changes.
            let level_changes: Vec<(&String, &Value)> = changes
                .iter()
                .filter(|(k, _)| level.attribute(k).is_some())
                .collect();
            if level_changes.is_empty() {
                continue;
            }
            for (name, value) in level_changes {
                let attr = level.attribute(name).expect("filtered");
                if attr.multi_valued {
                    match self.lw.mv_home(&level.name, name)? {
                        MvHome::SideTable { table } => {
                            let table = table.clone();
                            self.replace_mv_rows(cat, txn, &table, key, value)?;
                            continue;
                        }
                        MvHome::Inline { .. } => {} // falls through to column update
                    }
                }
                self.update_resident_column(cat, txn, entity, level, key, name, value)?;
            }
        }
        Ok(())
    }

    fn replace_mv_rows(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        value: &Value,
    ) -> MappingResult<()> {
        let klen = key.len();
        let rids: Vec<RowId> = cat
            .table(table)?
            .scan()
            .filter(|(_, row)| row[..klen] == *key)
            .map(|(rid, _)| rid)
            .collect();
        for rid in rids {
            txn.delete(cat, table, rid)?;
        }
        let Value::Array(vals) = value else {
            return Err(MappingError::BadPayload(
                "multi-valued attribute update requires an array value".into(),
            ));
        };
        for v in vals {
            let mut row = key.to_vec();
            row.push(v.clone());
            txn.insert(cat, table, row)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn update_resident_column(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        entity: &str,
        level: &EntitySet,
        key: &[Value],
        name: &str,
        value: &Value,
    ) -> MappingResult<()> {
        match self.lw.entity_home(&level.name)?.clone() {
            EntityHome::Table { .. } | EntityHome::Merged { .. } => {
                let (table, rid, mut row) =
                    self.locate_plain(cat, &level.name, key)?.ok_or_else(|| {
                        MappingError::BadPayload(format!("instance {key:?} of '{entity}' not found"))
                    })?;
                let col = cat.table(&table)?.schema().require_column(name)?;
                row[col] = value.clone();
                txn.update(cat, &table, rid, row)?;
            }
            EntityHome::CoLocated { table, side, format } => match format {
                CoFormat::Factorized => {
                    let ft = cat.factorized(&table)?;
                    let kv = Self::key_value(key);
                    let member_t = match side {
                        Side::Left => ft.left(),
                        Side::Right => ft.right(),
                    };
                    let (rid, row) = member_t.lookup_pk(&kv).ok_or_else(|| {
                        MappingError::BadPayload(format!("instance {key:?} of '{entity}' not found"))
                    })?;
                    let col = member_t.schema().require_column(name)?;
                    let mut row = row.clone();
                    row[col] = value.clone();
                    // Member update in place (delete + re-insert would drop
                    // links), routed through the transaction for undo + WAL.
                    txn.fact_update(cat, &table, fact_side(side), rid, row)?;
                }
                CoFormat::Denormalized => {
                    // Every duplicated row must be rewritten — the update
                    // amplification the paper warns about.
                    let kv = Self::key_value(key);
                    let key_cols = self.denorm_key_cols(cat, &table, side, &level.name)?;
                    let col =
                        cat.table(&table)?.schema().require_column(&co_col(side, name))?;
                    let hits: Vec<(RowId, Row)> = cat
                        .table(&table)?
                        .index_lookup(&key_cols, &kv)
                        .ok_or_else(|| {
                            MappingError::Unsupported(format!("no key index on '{table}'"))
                        })?
                        .into_iter()
                        .map(|(rid, row)| (rid, row.clone()))
                        .collect();
                    if hits.is_empty() {
                        return Err(MappingError::BadPayload(format!(
                            "instance {key:?} of '{entity}' not found"
                        )));
                    }
                    for (rid, mut row) in hits {
                        row[col] = value.clone();
                        txn.update(cat, &table, rid, row)?;
                    }
                }
            },
            EntityHome::FoldedWeak { owner, column } => {
                let owner_len = self.key_names(&owner)?.len();
                let (owner_key, partial) = key.split_at(owner_len);
                let (table, rid, mut row) =
                    self.locate_plain(cat, &owner, owner_key)?.ok_or_else(|| {
                        MappingError::BadPayload(format!("owner of '{entity}' {key:?} not found"))
                    })?;
                let col = cat.table(&table)?.schema().require_column(&column)?;
                let es = self.lw.schema.require_entity(&level.name)?;
                let attr_pos = es
                    .attributes
                    .iter()
                    .position(|a| a.name == name)
                    .ok_or_else(|| MappingError::BadPayload(format!("unknown attribute '{name}'")))?;
                let partial_positions: Vec<usize> = es
                    .key
                    .iter()
                    .map(|k| es.attributes.iter().position(|a| a.name == *k).expect("validated"))
                    .collect();
                let Value::Array(elems) = &mut row[col] else {
                    return Err(MappingError::BadPayload("folded weak column not an array".into()));
                };
                let mut found = false;
                for elem in elems.iter_mut() {
                    if let Value::Struct(vals) = elem {
                        if partial_positions
                            .iter()
                            .zip(partial.iter())
                            .all(|(&p, pk)| vals.get(p) == Some(pk))
                        {
                            vals[attr_pos] = value.clone();
                            found = true;
                            break;
                        }
                    }
                }
                if !found {
                    return Err(MappingError::BadPayload(format!(
                        "instance {key:?} of '{entity}' not found in owner fold"
                    )));
                }
                txn.update(cat, &table, rid, row)?;
            }
        }
        Ok(())
    }

    // ---- delete ---------------------------------------------------------------

    /// Delete one instance entirely: all hierarchy rows, multi-valued side
    /// rows, owned weak entities (cascade), and every relationship instance
    /// it participates in. This is the entity-centric deletion the paper's
    /// governance discussion calls for.
    pub fn delete(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        entity: &str,
        key: &[Value],
    ) -> MappingResult<()> {
        let root = self.lw.schema.hierarchy_root(entity)?.name.clone();
        // Hierarchy members (root's full subtree): the instance may be more
        // specific than `entity`.
        let mut members = vec![root.clone()];
        members.extend(self.lw.schema.descendants(&root).iter().map(|e| e.name.clone()));

        // 1. Cascade: owned weak entities of any member.
        for m in &members {
            let weak_children: Vec<String> = self
                .lw
                .schema
                .entities()
                .iter()
                .filter(|e| e.weak.as_ref().map(|w| w.owner == *m).unwrap_or(false))
                .map(|e| e.name.clone())
                .collect();
            for w in weak_children {
                for wkey in self.weak_keys_of_owner(cat, &w, key)? {
                    self.delete(cat, txn, &w, &wkey)?;
                }
            }
        }

        // 2. Relationship instances.
        for m in &members {
            for rel in self.lw.schema.relationships_of(m).iter().map(|r| (*r).clone()).collect::<Vec<Relationship>>() {
                if self.is_identifying(&rel.name) {
                    continue; // handled by weak cascade / own row removal
                }
                // A relationship folded as FK columns on the deleted
                // instance's own row disappears with the row; unlinking it
                // explicitly would violate NOT NULL on total participation.
                if let Ok(RelHome::Folded { many_entity, .. }) = self.lw.rel_home(&rel.name) {
                    if many_entity == m {
                        continue;
                    }
                }
                self.unlink_all(cat, txn, &rel, m, key)?;
            }
        }

        // 3. Multi-valued side rows of every member.
        for m in &members {
            let es = self.lw.schema.require_entity(m)?.clone();
            for a in es.attributes.iter().filter(|a| a.multi_valued) {
                if let MvHome::SideTable { table } = self.lw.mv_home(m, &a.name)? {
                    let table = table.clone();
                    let klen = key.len();
                    let rids: Vec<RowId> = cat
                        .table(&table)?
                        .scan()
                        .filter(|(_, row)| row[..klen] == *key)
                        .map(|(rid, _)| rid)
                        .collect();
                    for rid in rids {
                        txn.delete(cat, &table, rid)?;
                    }
                }
            }
        }

        // 4. Home rows across the hierarchy.
        let mut removed_any = false;
        for m in &members {
            match self.lw.entity_home(m)?.clone() {
                EntityHome::Table { table, .. } | EntityHome::Merged { table, .. } => {
                    let kv = Self::key_value(key);
                    let hit = cat.table(&table)?.lookup_pk(&kv).map(|(rid, _)| rid);
                    if let Some(rid) = hit {
                        // Merged tables appear once per member; delete once.
                        if cat.table(&table)?.get(rid).is_some() {
                            txn.delete(cat, &table, rid)?;
                            removed_any = true;
                        }
                    }
                }
                EntityHome::CoLocated { table, side, format } => match format {
                    CoFormat::Factorized => {
                        let ft = cat.factorized(&table)?;
                        let kv = Self::key_value(key);
                        let hit = match side {
                            Side::Left => ft.left().lookup_pk(&kv).map(|(rid, _)| rid),
                            Side::Right => ft.right().lookup_pk(&kv).map(|(rid, _)| rid),
                        };
                        if let Some(rid) = hit {
                            txn.fact_delete(cat, &table, fact_side(side), rid)?;
                            removed_any = true;
                        }
                    }
                    CoFormat::Denormalized => {
                        removed_any |=
                            self.denorm_delete_side(cat, txn, &table, side, m, key)?;
                    }
                },
                EntityHome::FoldedWeak { owner, column } => {
                    removed_any |=
                        self.folded_weak_delete(cat, txn, m, &owner, &column, key)?;
                }
            }
        }
        if !removed_any {
            return Err(MappingError::BadPayload(format!(
                "instance {key:?} of '{entity}' not found"
            )));
        }
        Ok(())
    }

    fn folded_weak_delete(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        entity: &str,
        owner: &str,
        column: &str,
        key: &[Value],
    ) -> MappingResult<bool> {
        let owner_len = self.key_names(owner)?.len();
        if key.len() < owner_len {
            return Ok(false);
        }
        let (owner_key, partial) = key.split_at(owner_len);
        let Some((table, rid, mut row)) = self.locate_plain(cat, owner, owner_key)? else {
            return Ok(false);
        };
        let col = cat.table(&table)?.schema().require_column(column)?;
        let es = self.lw.schema.require_entity(entity)?;
        let partial_positions: Vec<usize> = es
            .key
            .iter()
            .map(|k| es.attributes.iter().position(|a| a.name == *k).expect("validated"))
            .collect();
        let Value::Array(elems) = &mut row[col] else {
            return Ok(false);
        };
        let before = elems.len();
        elems.retain(|elem| {
            if let Value::Struct(vals) = elem {
                !partial_positions
                    .iter()
                    .zip(partial.iter())
                    .all(|(&p, pk)| vals.get(p) == Some(pk))
            } else {
                true
            }
        });
        let removed = elems.len() != before;
        if removed {
            txn.update(cat, &table, rid, row)?;
        }
        Ok(removed)
    }

    fn weak_keys_of_owner(
        &self,
        cat: &Catalog,
        weak: &str,
        owner_key: &[Value],
    ) -> MappingResult<Vec<Vec<Value>>> {
        let klen = self.key_names(weak)?.len();
        let olen = owner_key.len();
        match self.lw.entity_home(weak)? {
            EntityHome::Table { table, .. } => {
                let t = cat.table(table)?;
                Ok(t.scan()
                    .filter(|(_, row)| row[..olen] == *owner_key)
                    .map(|(_, row)| row[..klen].to_vec())
                    .collect())
            }
            EntityHome::FoldedWeak { owner, column } => {
                let Some((table, _rid, row)) = self.locate_plain(cat, owner, owner_key)? else {
                    return Ok(vec![]);
                };
                let col = cat.table(&table)?.schema().require_column(column)?;
                let es = self.lw.schema.require_entity(weak)?;
                let partial_positions: Vec<usize> = es
                    .key
                    .iter()
                    .map(|k| es.attributes.iter().position(|a| a.name == *k).expect("validated"))
                    .collect();
                let mut out = Vec::new();
                if let Value::Array(elems) = &row[col] {
                    for elem in elems {
                        if let Value::Struct(vals) = elem {
                            let mut k = owner_key.to_vec();
                            for &p in &partial_positions {
                                k.push(vals[p].clone());
                            }
                            out.push(k);
                        }
                    }
                }
                Ok(out)
            }
            EntityHome::CoLocated { table, side, format } => {
                let mut out = Vec::new();
                match format {
                    CoFormat::Factorized => {
                        let ft = cat.factorized(table)?;
                        let member = match side {
                            Side::Left => ft.left(),
                            Side::Right => ft.right(),
                        };
                        for (_, row) in member.scan() {
                            if row[..olen] == *owner_key {
                                out.push(row[..klen].to_vec());
                            }
                        }
                    }
                    CoFormat::Denormalized => {
                        let t = cat.table(table)?;
                        let schema = t.schema();
                        let key_cols: Vec<usize> = self
                            .key_names(weak)?
                            .iter()
                            .map(|k| schema.require_column(&co_col(*side, k)))
                            .collect::<Result<_, _>>()?;
                        for (_, row) in t.scan() {
                            let kvals: Vec<Value> =
                                key_cols.iter().map(|&c| row[c].clone()).collect();
                            if kvals.iter().any(Value::is_null) {
                                continue;
                            }
                            if kvals[..olen] == *owner_key && !out.contains(&kvals) {
                                out.push(kvals);
                            }
                        }
                    }
                }
                Ok(out)
            }
            EntityHome::Merged { .. } => Err(MappingError::Unsupported(
                "weak entities cannot be merged into a hierarchy".into(),
            )),
        }
    }

    fn denorm_delete_side(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        table: &str,
        side: Side,
        entity: &str,
        key: &[Value],
    ) -> MappingResult<bool> {
        let kv = Self::key_value(key);
        let key_cols = self.denorm_key_cols(cat, table, side, entity)?;
        let hits: Vec<(RowId, Row)> = cat
            .table(table)?
            .index_lookup(&key_cols, &kv)
            .ok_or_else(|| MappingError::Unsupported(format!("no key index on '{table}'")))?
            .into_iter()
            .map(|(rid, row)| (rid, row.clone()))
            .collect();
        if hits.is_empty() {
            return Ok(false);
        }
        let schema = cat.table(table)?.schema().clone();
        let other = match side {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        };
        for (rid, row) in hits {
            // Preserve the other side's data if this row is its only copy.
            let other_has_data = schema
                .columns
                .iter()
                .enumerate()
                .any(|(i, c)| strip_side(&c.name, other).is_some() && !row[i].is_null());
            txn.delete(cat, table, rid)?;
            if other_has_data {
                // Re-insert a dangling row for the other side if no other
                // row still mentions it.
                let mut dangling = vec![Value::Null; schema.arity()];
                for (i, c) in schema.columns.iter().enumerate() {
                    if strip_side(&c.name, other).is_some() {
                        dangling[i] = row[i].clone();
                    }
                }
                let still_mentioned = cat.table(table)?.scan().any(|(_, r)| {
                    schema.columns.iter().enumerate().all(|(i, c)| {
                        if strip_side(&c.name, other).is_some() {
                            r[i] == row[i]
                        } else {
                            true
                        }
                    }) && schema
                        .columns
                        .iter()
                        .enumerate()
                        .any(|(i, c)| strip_side(&c.name, other).is_some() && !r[i].is_null())
                });
                if !still_mentioned {
                    txn.insert(cat, table, dangling)?;
                }
            }
        }
        Ok(true)
    }

    fn is_identifying(&self, rel: &str) -> bool {
        matches!(self.lw.rel_home(rel), Ok(RelHome::ImplicitWeak { .. }))
    }

    // ---- relationships -----------------------------------------------------------

    /// Create one relationship instance.
    pub fn link(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &EntityData,
    ) -> MappingResult<()> {
        let r = self.lw.schema.require_relationship(rel)?.clone();
        match self.lw.rel_home(rel)?.clone() {
            RelHome::ImplicitWeak { weak } => Err(MappingError::Unsupported(format!(
                "identifying relationship '{rel}' is implicit; insert the weak entity '{weak}'"
            ))),
            RelHome::Folded { many_entity, one_entity } => {
                let (many_key, one_key) = if r.many_end().expect("folded is m:1").entity
                    == r.from.entity
                    && many_entity == r.from.entity
                {
                    (from_key, to_key)
                } else {
                    (to_key, from_key)
                };
                let (table, rid, mut row) =
                    self.locate_plain(cat, &many_entity, many_key)?.ok_or_else(|| {
                        MappingError::BadPayload(format!(
                            "many-side instance {many_key:?} of '{many_entity}' not found"
                        ))
                    })?;
                let schema = cat.table(&table)?.schema().clone();
                for (i, k) in self.key_names(&one_entity)?.iter().enumerate() {
                    let col = schema.require_column(&fk_col(rel, k))?;
                    row[col] = one_key[i].clone();
                }
                for (name, v) in attrs {
                    let col = schema.require_column(&rel_attr_col(rel, name))?;
                    row[col] = v.clone();
                }
                txn.update(cat, &table, rid, row)?;
                Ok(())
            }
            RelHome::JoinTable { table } => {
                let mut row = Vec::new();
                row.extend(from_key.iter().cloned());
                row.extend(to_key.iter().cloned());
                let schema = cat.table(&table)?.schema().clone();
                for c in schema.columns.iter().skip(from_key.len() + to_key.len()) {
                    row.push(attrs.get(&c.name).cloned().unwrap_or(Value::Null));
                }
                txn.insert(cat, &table, row)?;
                Ok(())
            }
            RelHome::CoLocated { table, format } => match format {
                CoFormat::Factorized => {
                    if !attrs.is_empty() {
                        // Mapping validation rejects factorized co-location
                        // for relationships WITH declared attributes, so any
                        // attrs supplied here have nowhere to live. Error
                        // instead of silently dropping them.
                        return Err(MappingError::BadPayload(format!(
                            "relationship '{rel}' is stored factorized and cannot carry \
                             attributes ({} supplied)",
                            attrs.len()
                        )));
                    }
                    let ft = cat.factorized(&table)?;
                    let l = ft
                        .left()
                        .lookup_pk(&Self::key_value(from_key))
                        .map(|(rid, _)| rid)
                        .ok_or_else(|| {
                            MappingError::BadPayload(format!(
                                "left instance {from_key:?} not found in '{table}'"
                            ))
                        })?;
                    let rr = ft
                        .right()
                        .lookup_pk(&Self::key_value(to_key))
                        .map(|(rid, _)| rid)
                        .ok_or_else(|| {
                            MappingError::BadPayload(format!(
                                "right instance {to_key:?} not found in '{table}'"
                            ))
                        })?;
                    txn.fact_link(cat, &table, l, rr)?;
                    Ok(())
                }
                CoFormat::Denormalized => {
                    self.denorm_link(cat, txn, &table, &r, from_key, to_key, attrs)
                }
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn denorm_link(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        table: &str,
        rel: &Relationship,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &EntityData,
    ) -> MappingResult<()> {
        let schema = cat.table(table)?.schema().clone();
        let lcols = self.denorm_key_cols(cat, table, Side::Left, &rel.from.entity)?;
        let rcols = self.denorm_key_cols(cat, table, Side::Right, &rel.to.entity)?;
        let lkv = Self::key_value(from_key);
        let rkv = Self::key_value(to_key);
        let lrows: Vec<(RowId, Row)> = cat
            .table(table)?
            .index_lookup(&lcols, &lkv)
            .unwrap_or_default()
            .into_iter()
            .map(|(rid, r)| (rid, r.clone()))
            .collect();
        let rrows: Vec<(RowId, Row)> = cat
            .table(table)?
            .index_lookup(&rcols, &rkv)
            .unwrap_or_default()
            .into_iter()
            .map(|(rid, r)| (rid, r.clone()))
            .collect();
        if lrows.is_empty() || rrows.is_empty() {
            return Err(MappingError::BadPayload(format!(
                "both sides must exist before linking '{}' in denormalized co-location",
                rel.name
            )));
        }
        let right_is_null = |row: &Row| {
            schema
                .columns
                .iter()
                .enumerate()
                .all(|(i, c)| strip_side(&c.name, Side::Right).is_none() || row[i].is_null())
        };
        let left_is_null = |row: &Row| {
            schema
                .columns
                .iter()
                .enumerate()
                .all(|(i, c)| strip_side(&c.name, Side::Left).is_none() || row[i].is_null())
        };
        let copy_side = |dst: &mut Row, src: &Row, side: Side| {
            for (i, c) in schema.columns.iter().enumerate() {
                if strip_side(&c.name, side).is_some() {
                    dst[i] = src[i].clone();
                }
            }
        };
        let set_attrs = |dst: &mut Row| -> MappingResult<()> {
            for (name, v) in attrs {
                let col = schema.require_column(name)?;
                dst[col] = v.clone();
            }
            Ok(())
        };
        let l_src = lrows[0].1.clone();
        let r_src = rrows[0].1.clone();
        let l_dangling = lrows.iter().find(|(_, r)| right_is_null(r)).cloned();
        let r_dangling = rrows.iter().find(|(_, r)| left_is_null(r)).cloned();
        match (l_dangling, r_dangling) {
            (Some((lrid, mut lrow)), rd) => {
                copy_side(&mut lrow, &r_src, Side::Right);
                set_attrs(&mut lrow)?;
                txn.update(cat, table, lrid, lrow)?;
                if let Some((rrid, _)) = rd {
                    txn.delete(cat, table, rrid)?;
                }
            }
            (None, Some((rrid, mut rrow))) => {
                copy_side(&mut rrow, &l_src, Side::Left);
                set_attrs(&mut rrow)?;
                txn.update(cat, table, rrid, rrow)?;
            }
            (None, None) => {
                let mut row = vec![Value::Null; schema.arity()];
                copy_side(&mut row, &l_src, Side::Left);
                copy_side(&mut row, &r_src, Side::Right);
                set_attrs(&mut row)?;
                txn.insert(cat, table, row)?;
            }
        }
        Ok(())
    }

    /// Remove one relationship instance.
    pub fn unlink(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
    ) -> MappingResult<()> {
        let r = self.lw.schema.require_relationship(rel)?.clone();
        match self.lw.rel_home(rel)?.clone() {
            RelHome::ImplicitWeak { .. } => Err(MappingError::Unsupported(format!(
                "identifying relationship '{rel}' is implicit; delete the weak entity instead"
            ))),
            RelHome::Folded { many_entity, one_entity } => {
                let many_is_from = r.many_end().expect("m:1").entity == r.from.entity;
                let many_key = if many_is_from { from_key } else { to_key };
                let (table, rid, mut row) =
                    self.locate_plain(cat, &many_entity, many_key)?.ok_or_else(|| {
                        MappingError::BadPayload(format!(
                            "many-side instance {many_key:?} of '{many_entity}' not found"
                        ))
                    })?;
                let schema = cat.table(&table)?.schema().clone();
                for k in self.key_names(&one_entity)? {
                    let col = schema.require_column(&fk_col(rel, &k))?;
                    row[col] = Value::Null;
                }
                for a in &r.attributes {
                    if let Ok(col) = schema.require_column(&rel_attr_col(rel, &a.name)) {
                        row[col] = Value::Null;
                    }
                }
                txn.update(cat, &table, rid, row)?;
                Ok(())
            }
            RelHome::JoinTable { table } => {
                let from_len = from_key.len();
                let rids: Vec<RowId> = cat
                    .table(&table)?
                    .scan()
                    .filter(|(_, row)| {
                        row[..from_len] == *from_key
                            && row[from_len..from_len + to_key.len()] == *to_key
                    })
                    .map(|(rid, _)| rid)
                    .collect();
                for rid in rids {
                    txn.delete(cat, &table, rid)?;
                }
                Ok(())
            }
            RelHome::CoLocated { table, format } => match format {
                CoFormat::Factorized => {
                    let ft = cat.factorized(&table)?;
                    let l = ft.left().lookup_pk(&Self::key_value(from_key)).map(|(rid, _)| rid);
                    let rr = ft.right().lookup_pk(&Self::key_value(to_key)).map(|(rid, _)| rid);
                    if let (Some(l), Some(rr)) = (l, rr) {
                        txn.fact_unlink(cat, &table, l, rr)?;
                    }
                    Ok(())
                }
                CoFormat::Denormalized => {
                    // Find the combined row and split it back into dangling
                    // halves as needed.
                    let schema = cat.table(&table)?.schema().clone();
                    let lcols = self.denorm_key_cols(cat, &table, Side::Left, &r.from.entity)?;
                    let hits: Vec<(RowId, Row)> = cat
                        .table(&table)?
                        .index_lookup(&lcols, &Self::key_value(from_key))
                        .unwrap_or_default()
                        .into_iter()
                        .map(|(rid, row)| (rid, row.clone()))
                        .collect();
                    let rcols = self.denorm_key_cols(cat, &table, Side::Right, &r.to.entity)?;
                    for (rid, row) in hits {
                        let rvals: Vec<Value> = rcols.iter().map(|&c| row[c].clone()).collect();
                        if rvals != to_key {
                            continue;
                        }
                        // Does the left side appear in other rows?
                        let l_elsewhere = cat
                            .table(&table)?
                            .index_lookup(&lcols, &Self::key_value(from_key))
                            .unwrap_or_default()
                            .len()
                            > 1;
                        let r_elsewhere = cat
                            .table(&table)?
                            .index_lookup(&rcols, &Self::key_value(to_key))
                            .unwrap_or_default()
                            .len()
                            > 1;
                        txn.delete(cat, &table, rid)?;
                        if !l_elsewhere {
                            let mut dangle = vec![Value::Null; schema.arity()];
                            for (i, c) in schema.columns.iter().enumerate() {
                                if strip_side(&c.name, Side::Left).is_some() {
                                    dangle[i] = row[i].clone();
                                }
                            }
                            txn.insert(cat, &table, dangle)?;
                        }
                        if !r_elsewhere {
                            let mut dangle = vec![Value::Null; schema.arity()];
                            for (i, c) in schema.columns.iter().enumerate() {
                                if strip_side(&c.name, Side::Right).is_some() {
                                    dangle[i] = row[i].clone();
                                }
                            }
                            txn.insert(cat, &table, dangle)?;
                        }
                        return Ok(());
                    }
                    Ok(())
                }
            },
        }
    }

    /// Remove every instance of `rel` in which the given instance of
    /// `entity` participates.
    fn unlink_all(
        &self,
        cat: &mut Catalog,
        txn: &mut Transaction,
        rel: &Relationship,
        entity: &str,
        key: &[Value],
    ) -> MappingResult<()> {
        let is_from = rel.from.entity == entity;
        for inst in self.extract_relationship(cat, &rel.name)? {
            let this_key = if is_from { &inst.from_key } else { &inst.to_key };
            if this_key == key {
                self.unlink(cat, txn, &rel.name, &inst.from_key, &inst.to_key)?;
            }
        }
        Ok(())
    }

    // ---- extraction (reversibility) -----------------------------------------------

    /// All keys of instances in the extent of `entity` (including subclass
    /// instances).
    pub fn extent_keys(&self, cat: &Catalog, entity: &str) -> MappingResult<Vec<Vec<Value>>> {
        let klen = self.key_names(entity)?.len();
        let mut out: Vec<Vec<Value>> = Vec::new();
        match self.lw.entity_home(entity)? {
            EntityHome::Table { table, layout } => match layout {
                HierarchyLayout::Delta => {
                    for (_, row) in cat.table(table)?.scan() {
                        out.push(row[..klen].to_vec());
                    }
                }
                HierarchyLayout::Full => {
                    let mut tables = vec![table.clone()];
                    for d in self.lw.schema.descendants(entity) {
                        if let EntityHome::Table { table, .. } = self.lw.entity_home(&d.name)? {
                            tables.push(table.clone());
                        }
                    }
                    for t in tables {
                        for (_, row) in cat.table(&t)?.scan() {
                            out.push(row[..klen].to_vec());
                        }
                    }
                }
            },
            EntityHome::Merged { table, .. } => {
                let t = cat.table(table)?;
                let ty_col = t.schema().require_column(TYPE_COL)?;
                for (_, row) in t.scan() {
                    let ty = row[ty_col].as_str().unwrap_or_default();
                    if self.in_subtree(entity, ty) {
                        out.push(row[..klen].to_vec());
                    }
                }
            }
            EntityHome::FoldedWeak { owner, .. } => {
                let owner = owner.clone();
                for okey in self.extent_keys(cat, &owner)? {
                    out.extend(self.weak_keys_of_owner(cat, entity, &okey)?);
                }
            }
            EntityHome::CoLocated { table, side, format } => match format {
                CoFormat::Factorized => {
                    let ft = cat.factorized(table)?;
                    let member = match side {
                        Side::Left => ft.left(),
                        Side::Right => ft.right(),
                    };
                    for (_, row) in member.scan() {
                        out.push(row[..klen].to_vec());
                    }
                }
                CoFormat::Denormalized => {
                    let t = cat.table(table)?;
                    let schema = t.schema();
                    let key_cols: Vec<usize> = self
                        .key_names(entity)?
                        .iter()
                        .map(|k| schema.require_column(&co_col(*side, k)))
                        .collect::<Result<_, _>>()?;
                    let mut seen = rustc_hash::FxHashSet::default();
                    for (_, row) in t.scan() {
                        let kvals: Vec<Value> = key_cols.iter().map(|&c| row[c].clone()).collect();
                        if kvals.iter().any(Value::is_null) {
                            continue;
                        }
                        if seen.insert(kvals.clone()) {
                            out.push(kvals);
                        }
                    }
                }
            },
        }
        Ok(out)
    }

    /// Recover the full extent of `entity` as attribute maps — the
    /// reversibility requirement of the paper.
    pub fn extract_entities(&self, cat: &Catalog, entity: &str) -> MappingResult<Vec<EntityData>> {
        let mut out = Vec::new();
        for key in self.extent_keys(cat, entity)? {
            if let Some(data) = self.get(cat, entity, &key)? {
                out.push(data);
            }
        }
        Ok(out)
    }

    /// Recover every instance of a relationship.
    pub fn extract_relationship(
        &self,
        cat: &Catalog,
        rel: &str,
    ) -> MappingResult<Vec<RelInstance>> {
        let r = self.lw.schema.require_relationship(rel)?.clone();
        let mut out = Vec::new();
        match self.lw.rel_home(rel)?.clone() {
            RelHome::ImplicitWeak { weak } => {
                // (weak instance, owner) pairs, oriented by declaration.
                let owner = self
                    .lw
                    .schema
                    .require_entity(&weak)?
                    .weak
                    .as_ref()
                    .expect("weak")
                    .owner
                    .clone();
                let olen = self.key_names(&owner)?.len();
                for wkey in self.extent_keys(cat, &weak)? {
                    let okey = wkey[..olen].to_vec();
                    let (from_key, to_key) = if r.from.entity == weak {
                        (wkey.clone(), okey)
                    } else {
                        (okey, wkey.clone())
                    };
                    out.push(RelInstance { from_key, to_key, attrs: EntityData::default() });
                }
            }
            RelHome::Folded { many_entity, one_entity } => {
                let one_key_names = self.key_names(&one_entity)?;
                let many_klen = self.key_names(&many_entity)?.len();
                let many_is_from = r.from.entity == many_entity;
                for table in self.fk_tables(&many_entity)? {
                    let t = cat.table(&table)?;
                    let schema = t.schema();
                    let fk_cols: Vec<usize> = one_key_names
                        .iter()
                        .map(|k| schema.require_column(&fk_col(rel, k)))
                        .collect::<Result<_, _>>()?;
                    let attr_cols: Vec<(String, usize)> = r
                        .attributes
                        .iter()
                        .filter_map(|a| {
                            schema
                                .column_index(&rel_attr_col(rel, &a.name))
                                .map(|i| (a.name.clone(), i))
                        })
                        .collect();
                    // Merged tables hold the whole hierarchy: restrict to
                    // the many entity's subtree.
                    let ty_col = schema.column_index(TYPE_COL);
                    for (_, row) in t.scan() {
                        if let Some(tc) = ty_col {
                            let ty = row[tc].as_str().unwrap_or_default();
                            if !self.in_subtree(&many_entity, ty) {
                                continue;
                            }
                        }
                        let fk: Vec<Value> = fk_cols.iter().map(|&c| row[c].clone()).collect();
                        if fk.iter().any(Value::is_null) {
                            continue;
                        }
                        let many_key = row[..many_klen].to_vec();
                        let mut attrs = EntityData::default();
                        for (name, col) in &attr_cols {
                            attrs.insert(name.clone(), row[*col].clone());
                        }
                        let (from_key, to_key) =
                            if many_is_from { (many_key, fk) } else { (fk, many_key) };
                        out.push(RelInstance { from_key, to_key, attrs });
                    }
                }
            }
            RelHome::JoinTable { table } => {
                let from_len = self.key_names(&r.from.entity)?.len();
                let to_len = self.key_names(&r.to.entity)?.len();
                let t = cat.table(&table)?;
                for (_, row) in t.scan() {
                    let mut attrs = EntityData::default();
                    for (c, v) in
                        t.schema().columns.iter().zip(row.iter()).skip(from_len + to_len)
                    {
                        attrs.insert(c.name.clone(), v.clone());
                    }
                    out.push(RelInstance {
                        from_key: row[..from_len].to_vec(),
                        to_key: row[from_len..from_len + to_len].to_vec(),
                        attrs,
                    });
                }
            }
            RelHome::CoLocated { table, format } => match format {
                CoFormat::Factorized => {
                    let ft = cat.factorized(&table)?;
                    let llen = self.key_names(&r.from.entity)?.len();
                    let rlen = self.key_names(&r.to.entity)?.len();
                    for (lrid, lrow) in ft.left().scan() {
                        for rrid in ft.neighbours_right(lrid) {
                            let rrow = ft.right().get(*rrid).expect("linked row live");
                            out.push(RelInstance {
                                from_key: lrow[..llen].to_vec(),
                                to_key: rrow[..rlen].to_vec(),
                                attrs: EntityData::default(),
                            });
                        }
                    }
                }
                CoFormat::Denormalized => {
                    let t = cat.table(&table)?;
                    let schema = t.schema();
                    let lcols: Vec<usize> = self
                        .key_names(&r.from.entity)?
                        .iter()
                        .map(|k| schema.require_column(&co_col(Side::Left, k)))
                        .collect::<Result<_, _>>()?;
                    let rcols: Vec<usize> = self
                        .key_names(&r.to.entity)?
                        .iter()
                        .map(|k| schema.require_column(&co_col(Side::Right, k)))
                        .collect::<Result<_, _>>()?;
                    let attr_cols: Vec<(String, usize)> = r
                        .attributes
                        .iter()
                        .filter_map(|a| schema.column_index(&a.name).map(|i| (a.name.clone(), i)))
                        .collect();
                    for (_, row) in t.scan() {
                        let from_key: Vec<Value> = lcols.iter().map(|&c| row[c].clone()).collect();
                        let to_key: Vec<Value> = rcols.iter().map(|&c| row[c].clone()).collect();
                        if from_key.iter().any(Value::is_null) || to_key.iter().any(Value::is_null)
                        {
                            continue; // dangling half-row
                        }
                        let mut attrs = EntityData::default();
                        for (name, col) in &attr_cols {
                            attrs.insert(name.clone(), row[*col].clone());
                        }
                        out.push(RelInstance { from_key, to_key, attrs });
                    }
                }
            },
        }
        Ok(out)
    }

    /// Physical tables carrying the FK columns of relationships folded into
    /// `entity` (one table normally; several for full-layout hierarchies).
    fn fk_tables(&self, entity: &str) -> MappingResult<Vec<String>> {
        match self.lw.entity_home(entity)? {
            EntityHome::Table { table, layout: HierarchyLayout::Delta } => {
                Ok(vec![table.clone()])
            }
            EntityHome::Table { table, layout: HierarchyLayout::Full } => {
                let mut tables = vec![table.clone()];
                for d in self.lw.schema.descendants(entity) {
                    if let EntityHome::Table { table, .. } = self.lw.entity_home(&d.name)? {
                        tables.push(table.clone());
                    }
                }
                Ok(tables)
            }
            EntityHome::Merged { table, .. } => Ok(vec![table.clone()]),
            other => Err(MappingError::Unsupported(format!(
                "folded relationship on entity with home {other:?}"
            ))),
        }
    }

    /// The most specific type of an instance (probing subclass storage).
    pub fn type_of(&self, cat: &Catalog, entity: &str, key: &[Value]) -> MappingResult<Option<String>> {
        let root = self.lw.schema.hierarchy_root(entity)?.name.clone();
        // Single-table hierarchy: the root's table carries a `_type`
        // discriminator (the root's own home is `Table`, so detect the
        // merged case by the column).
        if let EntityHome::Table { table, .. } | EntityHome::Merged { table, .. } =
            self.lw.entity_home(&root)?
        {
            let t = cat.table(table)?;
            if let Some(ty_col) = t.schema().column_index(TYPE_COL) {
                let Some((_, row)) = t.lookup_pk(&Self::key_value(key)) else {
                    return Ok(None);
                };
                return Ok(row[ty_col].as_str().map(String::from));
            }
        }
        match self.lw.entity_home(&root)? {
            EntityHome::Merged { table, .. } => {
                let t = cat.table(table)?;
                let Some((_, row)) = t.lookup_pk(&Self::key_value(key)) else {
                    return Ok(None);
                };
                let ty_col = t.schema().require_column(TYPE_COL)?;
                Ok(row[ty_col].as_str().map(String::from))
            }
            _ => {
                // Probe from the leaves upward: deepest table containing the
                // key wins.
                let mut best: Option<(usize, String)> = None;
                let mut stack = vec![root.clone()];
                while let Some(cur) = stack.pop() {
                    let depth = self.lw.schema.ancestry(&cur)?.len();
                    let present = match self.lw.entity_home(&cur)? {
                        EntityHome::Table { table, .. } => {
                            cat.table(table)?.lookup_pk(&Self::key_value(key)).is_some()
                        }
                        EntityHome::CoLocated { table, side, format } => match format {
                            CoFormat::Factorized => {
                                let ft = cat.factorized(table)?;
                                let member = match side {
                                    Side::Left => ft.left(),
                                    Side::Right => ft.right(),
                                };
                                member.lookup_pk(&Self::key_value(key)).is_some()
                            }
                            CoFormat::Denormalized => {
                                self.locate_plain(cat, &cur, key)?.is_some()
                            }
                        },
                        _ => false,
                    };
                    if present && best.as_ref().map(|(d, _)| depth > *d).unwrap_or(true) {
                        best = Some((depth, cur.clone()));
                    }
                    for d in self.lw.schema.subclasses(&cur) {
                        stack.push(d.name.clone());
                    }
                }
                Ok(best.map(|(_, n)| n))
            }
        }
    }
}

/// Build the struct value representing a folded weak instance.
fn weak_struct(es: &EntitySet, data: &EntityData) -> MappingResult<Value> {
    let mut vals = Vec::with_capacity(es.attributes.len());
    for a in &es.attributes {
        let v = data.get(&a.name).cloned().unwrap_or(Value::Null);
        if v.is_null() && es.key.contains(&a.name) {
            return Err(MappingError::BadPayload(format!(
                "weak instance missing partial key '{}'",
                a.name
            )));
        }
        vals.push(v);
    }
    Ok(Value::Struct(vals))
}

/// If `col` belongs to `side` of a denormalized co-located table, return
/// the unprefixed name.
fn strip_side(col: &str, side: Side) -> Option<&str> {
    match side {
        Side::Left => col.strip_prefix("l__"),
        Side::Right => col.strip_prefix("r__"),
    }
}
