//! Mapping validity: the paper's two requirements, made checkable.
//!
//! "There are two key requirements: (1) The mapping must be uniquely
//! reversible ... and (2) We must be able to map any inserts/updates/
//! deletes to the entities and relationships to the database."
//!
//! Reversibility is guaranteed structurally: every E/R-graph node must be
//! covered, every fragment must induce a connected subgraph (the paper's
//! cover conditions), and every entity set, relationship, and multi-valued
//! attribute must have exactly **one home** — the structure its instances
//! are recovered from. (Redundant copies are permitted by the model; the
//! present validator is conservative and requires the homes themselves to
//! be unambiguous.) CRUD well-definedness then follows because
//! [`crate::crud`] implements the translation for every home kind.

use crate::error::{MappingError, MappingResult};
use crate::fragment::{CoFormat, Fragment, HierarchyLayout, Mapping};
use erbium_model::{ErGraph, ErSchema};
use rustc_hash::FxHashMap;

/// Validate a mapping against a schema. Returns the first violation found.
pub fn validate(schema: &ErSchema, mapping: &Mapping) -> MappingResult<()> {
    schema.validate()?;
    let graph = ErGraph::from_schema(schema)?;

    // -- cover conditions ----------------------------------------------------
    let mut all_nodes = Vec::new();
    for frag in &mapping.fragments {
        let nodes = frag.nodes(schema)?;
        if nodes.is_empty() {
            return Err(MappingError::InvalidCover(format!(
                "fragment '{}' covers no nodes",
                frag.table()
            )));
        }
        if !graph.is_connected_subgraph(&nodes)? {
            return Err(MappingError::InvalidCover(format!(
                "fragment '{}' does not induce a connected subgraph",
                frag.table()
            )));
        }
        all_nodes.push(nodes);
    }
    let uncovered = graph.uncovered(&all_nodes);
    if let Some(n) = uncovered.first() {
        return Err(MappingError::InvalidCover(format!(
            "node {n} is not covered by any fragment ({} uncovered in total)",
            uncovered.len()
        )));
    }

    // -- unique table names ----------------------------------------------------
    let mut names: Vec<&str> = mapping.fragments.iter().map(Fragment::table).collect();
    names.sort_unstable();
    for w in names.windows(2) {
        if w[0] == w[1] {
            return Err(MappingError::InvalidCover(format!("duplicate table name '{}'", w[0])));
        }
    }

    // -- home uniqueness ----------------------------------------------------
    let mut entity_claims: FxHashMap<&str, usize> = FxHashMap::default();
    let mut rel_claims: FxHashMap<&str, usize> = FxHashMap::default();
    let mut mv_claims: FxHashMap<(String, String), usize> = FxHashMap::default();

    for frag in &mapping.fragments {
        match frag {
            Fragment::Entity {
                table,
                entity,
                layout,
                merged_subclasses,
                inline_multivalued,
                folded_weak,
                folded_relationships,
            } => {
                *entity_claims.entry(entity).or_default() += 1;
                let es = schema.require_entity(entity)?;

                if !merged_subclasses.is_empty() {
                    if es.is_subclass() {
                        return Err(MappingError::InvalidCover(format!(
                            "merged fragment '{table}' must anchor at a hierarchy root"
                        )));
                    }
                    if *layout != HierarchyLayout::Delta {
                        return Err(MappingError::InvalidCover(format!(
                            "merged fragment '{table}' must use delta layout"
                        )));
                    }
                    let mut expected: Vec<String> =
                        schema.descendants(entity).iter().map(|e| e.name.clone()).collect();
                    let mut got = merged_subclasses.clone();
                    expected.sort();
                    got.sort();
                    if expected != got {
                        return Err(MappingError::InvalidCover(format!(
                            "merged fragment '{table}' must merge the whole subtree of '{entity}'"
                        )));
                    }
                    for m in merged_subclasses {
                        *entity_claims.entry(m).or_default() += 1;
                    }
                }

                // Inline multi-valued attributes must exist on a covered
                // entity and be multi-valued.
                let mut covered: Vec<&str> = vec![entity.as_str()];
                if *layout == HierarchyLayout::Full {
                    covered = schema.ancestry(entity)?.iter().map(|e| e.name.as_str()).collect();
                }
                covered.extend(merged_subclasses.iter().map(String::as_str));
                for mv in inline_multivalued {
                    let owner = covered
                        .iter()
                        .find(|e| {
                            schema
                                .entity(e)
                                .and_then(|es| es.attribute(mv))
                                .map(|a| a.multi_valued)
                                .unwrap_or(false)
                        })
                        .ok_or_else(|| {
                            MappingError::InvalidCover(format!(
                                "inline attribute '{mv}' of fragment '{table}' is not a \
                                 multi-valued attribute of a covered entity"
                            ))
                        })?;
                    *mv_claims.entry((owner.to_string(), mv.clone())).or_default() += 1;
                }
                // Full layout additionally claims inline mv homes for
                // inherited attributes only when listed; nothing implicit.

                for w in folded_weak {
                    let wes = schema.require_entity(w)?;
                    let info = wes.weak.as_ref().ok_or_else(|| {
                        MappingError::InvalidCover(format!(
                            "folded '{w}' in fragment '{table}' is not a weak entity set"
                        ))
                    })?;
                    if info.owner != *entity {
                        return Err(MappingError::InvalidCover(format!(
                            "weak entity '{w}' folded into '{table}' but owned by '{}'",
                            info.owner
                        )));
                    }
                    *entity_claims.entry(w).or_default() += 1;
                    // The weak entity's mv attributes travel inside the
                    // folded struct — they must not also have side tables.
                    for a in wes.attributes.iter().filter(|a| a.multi_valued) {
                        *mv_claims.entry((w.clone(), a.name.clone())).or_default() += 1;
                    }
                }

                for r in folded_relationships {
                    let rel = schema.require_relationship(r)?;
                    if is_identifying(schema, r) {
                        return Err(MappingError::InvalidCover(format!(
                            "identifying relationship '{r}' must not be folded explicitly"
                        )));
                    }
                    let many = rel.many_end().ok_or_else(|| {
                        MappingError::InvalidCover(format!(
                            "folded relationship '{r}' in '{table}' is not many-to-one"
                        ))
                    })?;
                    // The fold must live where the many-side entity lives.
                    let home_ok = many.entity == *entity
                        || merged_subclasses.contains(&many.entity);
                    if !home_ok {
                        return Err(MappingError::InvalidCover(format!(
                            "relationship '{r}' folded into '{table}' but its many side \
                             '{}' does not live there",
                            many.entity
                        )));
                    }
                    *rel_claims.entry(r).or_default() += 1;
                }
            }
            Fragment::MultiValued { table, entity, attribute } => {
                let es = schema.require_entity(entity)?;
                let a = es.attribute(attribute).ok_or_else(|| {
                    MappingError::InvalidCover(format!(
                        "side table '{table}' references unknown attribute '{entity}.{attribute}'"
                    ))
                })?;
                if !a.multi_valued {
                    return Err(MappingError::InvalidCover(format!(
                        "side table '{table}' for single-valued attribute '{entity}.{attribute}'"
                    )));
                }
                *mv_claims.entry((entity.clone(), attribute.clone())).or_default() += 1;
            }
            Fragment::Relationship { table, relationship } => {
                if is_identifying(schema, relationship) {
                    return Err(MappingError::InvalidCover(format!(
                        "identifying relationship '{relationship}' must not have a join table \
                         ('{table}'): it is implicit in the weak entity's key"
                    )));
                }
                schema.require_relationship(relationship)?;
                *rel_claims.entry(relationship).or_default() += 1;
            }
            Fragment::CoLocated { table, relationship, format } => {
                let rel = schema.require_relationship(relationship)?;
                if is_identifying(schema, relationship) {
                    return Err(MappingError::InvalidCover(format!(
                        "identifying relationship '{relationship}' cannot be co-located"
                    )));
                }
                if rel.from.entity == rel.to.entity {
                    return Err(MappingError::InvalidCover(format!(
                        "self-relationship '{relationship}' cannot be co-located"
                    )));
                }
                if *format == CoFormat::Factorized && !rel.attributes.is_empty() {
                    return Err(MappingError::InvalidCover(format!(
                        "factorized co-location of '{relationship}' does not support \
                         relationship attributes"
                    )));
                }
                let _ = table;
                // Multi-valued attributes of co-located entities stay in
                // side tables (their MultiValued fragments are counted by
                // the uniqueness check below).
                for end in [&rel.from.entity, &rel.to.entity] {
                    schema.require_entity(end)?;
                    *entity_claims.entry(end).or_default() += 1;
                }
                *rel_claims.entry(relationship).or_default() += 1;
            }
        }
    }

    for e in schema.entities() {
        let claims = entity_claims.get(e.name.as_str()).copied().unwrap_or(0);
        if claims != 1 {
            return Err(MappingError::InvalidCover(format!(
                "entity '{}' has {claims} homes (need exactly 1)",
                e.name
            )));
        }
    }
    for r in schema.relationships() {
        let claims = rel_claims.get(r.name.as_str()).copied().unwrap_or(0);
        let expected = if is_identifying(schema, &r.name) { 0 } else { 1 };
        if claims != expected {
            return Err(MappingError::InvalidCover(format!(
                "relationship '{}' has {claims} homes (need exactly {expected})",
                r.name
            )));
        }
    }
    for e in schema.entities() {
        for a in e.attributes.iter().filter(|a| a.multi_valued) {
            let claims =
                mv_claims.get(&(e.name.clone(), a.name.clone())).copied().unwrap_or(0);
            if claims != 1 {
                return Err(MappingError::InvalidCover(format!(
                    "multi-valued attribute '{}.{}' has {claims} homes (need exactly 1)",
                    e.name, a.name
                )));
            }
        }
    }

    // -- hierarchy layout homogeneity -----------------------------------------
    for root in schema.entities().iter().filter(|e| !e.is_subclass()) {
        let members: Vec<&str> = std::iter::once(root.name.as_str())
            .chain(schema.descendants(&root.name).iter().map(|e| e.name.as_str()))
            .collect();
        if members.len() == 1 {
            continue;
        }
        let mut any_full = false;
        let mut any_merged = false;
        let mut any_delta_subclass = false;
        for m in &members {
            for frag in &mapping.fragments {
                match frag {
                    Fragment::Entity { entity, layout, merged_subclasses, .. } if entity == m => {
                        match layout {
                            HierarchyLayout::Full => any_full = true,
                            HierarchyLayout::Delta => {
                                if !merged_subclasses.is_empty() {
                                    any_merged = true;
                                } else if *m != root.name {
                                    any_delta_subclass = true;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if any_full && (any_merged || any_delta_subclass) {
            return Err(MappingError::InvalidCover(format!(
                "hierarchy of '{}' mixes full-layout tables with other layouts",
                root.name
            )));
        }
        if any_merged && any_delta_subclass {
            return Err(MappingError::InvalidCover(format!(
                "hierarchy of '{}' mixes merged and per-entity tables",
                root.name
            )));
        }
    }

    Ok(())
}

fn is_identifying(schema: &ErSchema, rel: &str) -> bool {
    schema.entities().iter().any(|e| {
        e.weak.as_ref().map(|w| w.identifying_relationship == rel).unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{self, paper};
    use erbium_model::fixtures;

    #[test]
    fn all_paper_mappings_validate() {
        let s = fixtures::experiment();
        validate(&s, &paper::m1(&s)).unwrap();
        validate(&s, &paper::m2(&s)).unwrap();
        validate(&s, &paper::m3(&s)).unwrap();
        validate(&s, &paper::m4(&s)).unwrap();
        validate(&s, &paper::m5(&s).unwrap()).unwrap();
        validate(&s, &paper::m6(&s, CoFormat::Factorized).unwrap()).unwrap();
        validate(&s, &paper::m6(&s, CoFormat::Denormalized).unwrap()).unwrap();
    }

    #[test]
    fn university_mappings_validate() {
        let s = fixtures::university();
        validate(&s, &presets::normalized(&s)).unwrap();
        validate(&s, &presets::inline_all_multivalued(presets::normalized(&s), &s)).unwrap();
        validate(&s, &presets::merge_hierarchy(presets::normalized(&s), &s, "person")).unwrap();
    }

    #[test]
    fn missing_fragment_is_uncovered() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        m.fragments.retain(|f| f.table() != "R3");
        let err = validate(&s, &m).unwrap_err();
        assert!(matches!(err, MappingError::InvalidCover(_)));
    }

    #[test]
    fn double_home_rejected() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        // Duplicate the S fragment under a new table name → S has 2 homes.
        m.fragments.push(Fragment::Entity {
            table: "S_dup".into(),
            entity: "S".into(),
            layout: HierarchyLayout::Delta,
            merged_subclasses: vec![],
            inline_multivalued: vec![],
            folded_weak: vec![],
            folded_relationships: vec![],
        });
        let err = validate(&s, &m).unwrap_err();
        assert!(err.to_string().contains("2 homes"), "{err}");
    }

    #[test]
    fn duplicate_table_name_rejected() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        m.fragments.push(Fragment::MultiValued {
            table: "R__r_mv1".into(),
            entity: "R".into(),
            attribute: "r_mv2".into(),
        });
        let err = validate(&s, &m).unwrap_err();
        assert!(err.to_string().contains("duplicate table name"), "{err}");
    }

    #[test]
    fn partial_hierarchy_merge_rejected() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        // Merge only R1 into R (leaving R3 with its own table): invalid.
        m.fragments.retain(|f| f.table() != "R1");
        for f in &mut m.fragments {
            if let Fragment::Entity { entity, merged_subclasses, .. } = f {
                if entity == "R" {
                    *merged_subclasses = vec!["R1".into()];
                }
            }
        }
        assert!(validate(&s, &m).is_err());
    }

    #[test]
    fn mixed_hierarchy_layout_rejected() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        for f in &mut m.fragments {
            if let Fragment::Entity { entity, layout, .. } = f {
                if entity == "R3" {
                    *layout = HierarchyLayout::Full;
                }
            }
        }
        let err = validate(&s, &m).unwrap_err();
        assert!(err.to_string().contains("mixes"), "{err}");
    }

    #[test]
    fn side_table_for_single_valued_rejected() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        m.fragments.push(Fragment::MultiValued {
            table: "bad".into(),
            entity: "R".into(),
            attribute: "r_a".into(),
        });
        assert!(validate(&s, &m).is_err());
    }

    #[test]
    fn identifying_relationship_join_table_rejected() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        m.fragments.push(Fragment::Relationship {
            table: "s_s1_join".into(),
            relationship: "s_s1".into(),
        });
        assert!(validate(&s, &m).is_err());
    }

    #[test]
    fn folded_weak_wrong_owner_rejected() {
        let s = fixtures::experiment();
        let mut m = paper::m1(&s);
        m.fragments.retain(|f| f.table() != "S1");
        for f in &mut m.fragments {
            if let Fragment::Entity { entity, folded_weak, .. } = f {
                if entity == "R" {
                    folded_weak.push("S1".into());
                }
            }
        }
        // Rejected either by the connectivity check (R and S1 are not
        // adjacent) or by the ownership check.
        assert!(validate(&s, &m).is_err());
    }
}
