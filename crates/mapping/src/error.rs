//! Mapping-layer errors.

use erbium_engine::EngineError;
use erbium_model::ModelError;
use erbium_storage::StorageError;
use std::fmt;

/// Errors raised while validating, lowering, or using a mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    Model(ModelError),
    Storage(StorageError),
    Engine(EngineError),
    /// The mapping is not a valid cover of the E/R graph.
    InvalidCover(String),
    /// A logical operation cannot be translated under this mapping.
    Unsupported(String),
    /// Name-resolution failure while rewriting a query.
    Binding(String),
    /// A CRUD payload is malformed (missing key, wrong value shape, ...).
    BadPayload(String),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Model(e) => write!(f, "model error: {e}"),
            MappingError::Storage(e) => write!(f, "storage error: {e}"),
            MappingError::Engine(e) => write!(f, "engine error: {e}"),
            MappingError::InvalidCover(m) => write!(f, "invalid mapping cover: {m}"),
            MappingError::Unsupported(m) => write!(f, "unsupported under this mapping: {m}"),
            MappingError::Binding(m) => write!(f, "binding error: {m}"),
            MappingError::BadPayload(m) => write!(f, "bad payload: {m}"),
        }
    }
}

impl std::error::Error for MappingError {}

impl From<ModelError> for MappingError {
    fn from(e: ModelError) -> Self {
        MappingError::Model(e)
    }
}

impl From<StorageError> for MappingError {
    fn from(e: StorageError) -> Self {
        MappingError::Storage(e)
    }
}

impl From<EngineError> for MappingError {
    fn from(e: EngineError) -> Self {
        MappingError::Engine(e)
    }
}

impl From<MappingError> for erbium_model::DbError {
    fn from(e: MappingError) -> Self {
        // Dispatch nested layer errors to their own categories so a
        // duplicate key reports `Storage` whether it surfaced through the
        // mapping layer or directly.
        match e {
            MappingError::Model(m) => m.into(),
            MappingError::Storage(s) => s.into(),
            MappingError::Engine(en) => en.into(),
            other => erbium_model::DbError::Mapping(other.to_string()),
        }
    }
}

/// Result alias for mapping operations.
pub type MappingResult<T> = Result<T, MappingError>;
