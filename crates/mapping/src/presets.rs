//! Preset mappings and mapping transformations.
//!
//! [`normalized`] produces the fully normalized mapping (the paper's M1)
//! for *any* E/R schema; the transformation functions then derive the other
//! designs the paper evaluates:
//!
//! | paper | construction |
//! |-------|--------------|
//! | M1 | `normalized(schema)` |
//! | M2 | `inline_all_multivalued(m1, schema)` |
//! | M3 | `merge_hierarchy(m1, schema, "R")` |
//! | M4 | `split_hierarchy_full(m1, schema, "R")` |
//! | M5 | `fold_weak(fold_weak(m1, schema, "S1"), schema, "S2")` |
//! | M6 | `colocate(m1, schema, "r2_s1", format)` |
//!
//! Every transformation is a *local move* on the cover — the same moves the
//! [`erbium-advisor`](../../advisor) crate searches over.

use crate::error::{MappingError, MappingResult};
use crate::fragment::{CoFormat, Fragment, HierarchyLayout, Mapping};
use erbium_model::ErSchema;

/// Name of the entity table for `entity`.
pub fn entity_table(entity: &str) -> String {
    entity.to_string()
}

/// Name of the side table for a multi-valued attribute.
pub fn mv_table(entity: &str, attr: &str) -> String {
    format!("{entity}__{attr}")
}

/// Name of the join table for a relationship.
pub fn rel_table(rel: &str) -> String {
    rel.to_string()
}

/// Name of a co-located structure.
pub fn co_table(rel: &str) -> String {
    format!("{rel}__co")
}

/// The fully normalized mapping (M1): one delta table per entity set, one
/// side table per multi-valued attribute, many-to-one relationships folded
/// into the many side, every other relationship in its own join table.
pub fn normalized(schema: &ErSchema) -> Mapping {
    let mut fragments = Vec::new();
    for e in schema.entities() {
        let folded_relationships: Vec<String> = schema
            .relationships()
            .iter()
            .filter(|r| {
                r.is_many_to_one()
                    && r.many_end().map(|end| end.entity == e.name).unwrap_or(false)
                    && !is_identifying(schema, &r.name)
            })
            .map(|r| r.name.clone())
            .collect();
        fragments.push(Fragment::Entity {
            table: entity_table(&e.name),
            entity: e.name.clone(),
            layout: HierarchyLayout::Delta,
            merged_subclasses: vec![],
            inline_multivalued: vec![],
            folded_weak: vec![],
            folded_relationships,
        });
        for a in e.attributes.iter().filter(|a| a.multi_valued) {
            fragments.push(Fragment::MultiValued {
                table: mv_table(&e.name, &a.name),
                entity: e.name.clone(),
                attribute: a.name.clone(),
            });
        }
    }
    for r in schema.relationships() {
        let folded = r.is_many_to_one() && !is_identifying(schema, &r.name);
        if !folded && !is_identifying(schema, &r.name) {
            fragments.push(Fragment::Relationship {
                table: rel_table(&r.name),
                relationship: r.name.clone(),
            });
        }
    }
    Mapping::new("normalized", fragments)
}

fn is_identifying(schema: &ErSchema, rel: &str) -> bool {
    schema.entities().iter().any(|e| {
        e.weak.as_ref().map(|w| w.identifying_relationship == rel).unwrap_or(false)
    })
}

/// Store every multi-valued attribute inline as an array column in its
/// owner's home table (M2).
pub fn inline_all_multivalued(mut m: Mapping, schema: &ErSchema) -> Mapping {
    let mut moved: Vec<(String, String)> = Vec::new();
    m.fragments.retain(|f| match f {
        Fragment::MultiValued { entity, attribute, .. } => {
            moved.push((entity.clone(), attribute.clone()));
            false
        }
        _ => true,
    });
    for (entity, attr) in moved {
        attach_inline_mv(&mut m, schema, &entity, attr);
    }
    m.name = format!("{}+inline_mv", m.name);
    m
}

/// Store one multi-valued attribute inline (a finer-grained move).
pub fn inline_multivalued(mut m: Mapping, schema: &ErSchema, entity: &str, attr: &str) -> Mapping {
    m.fragments.retain(|f| {
        !matches!(f, Fragment::MultiValued { entity: e, attribute: a, .. } if e == entity && a == attr)
    });
    attach_inline_mv(&mut m, schema, entity, attr.to_string());
    m
}

fn attach_inline_mv(m: &mut Mapping, schema: &ErSchema, entity: &str, attr: String) {
    // The array column lives wherever the entity's data lives.
    let home = m.home_fragment(entity, schema).map(|f| f.table().to_string());
    if let Some(home_table) = home {
        for f in &mut m.fragments {
            if f.table() == home_table {
                if let Fragment::Entity { inline_multivalued, .. } = f {
                    inline_multivalued.push(attr);
                    return;
                }
            }
        }
    }
}

/// Map the whole hierarchy rooted at `root` to a single table with a
/// `_type` discriminator (M3).
pub fn merge_hierarchy(mut m: Mapping, schema: &ErSchema, root: &str) -> Mapping {
    let descendants: Vec<String> =
        schema.descendants(root).iter().map(|e| e.name.clone()).collect();
    // Collect what the removed subclass fragments were responsible for.
    let mut inherited_folds: Vec<String> = Vec::new();
    let mut inherited_inline: Vec<String> = Vec::new();
    m.fragments.retain(|f| match f {
        Fragment::Entity { entity, folded_relationships, inline_multivalued, .. }
            if descendants.contains(entity) =>
        {
            inherited_folds.extend(folded_relationships.iter().cloned());
            inherited_inline.extend(inline_multivalued.iter().cloned());
            false
        }
        _ => true,
    });
    for f in &mut m.fragments {
        if let Fragment::Entity { entity, merged_subclasses, folded_relationships, inline_multivalued, .. } = f
        {
            if entity == root {
                *merged_subclasses = descendants.clone();
                folded_relationships.append(&mut inherited_folds);
                inline_multivalued.append(&mut inherited_inline);
            }
        }
    }
    m.name = format!("{}+merge({root})", m.name);
    m
}

/// Map the hierarchy rooted at `root` to disjoint full-attribute tables,
/// one per entity set (M4).
pub fn split_hierarchy_full(mut m: Mapping, schema: &ErSchema, root: &str) -> Mapping {
    let members: Vec<String> = std::iter::once(root.to_string())
        .chain(schema.descendants(root).iter().map(|e| e.name.clone()))
        .collect();
    for f in &mut m.fragments {
        if let Fragment::Entity { entity, layout, .. } = f {
            if members.contains(entity) {
                *layout = HierarchyLayout::Full;
            }
        }
    }
    m.name = format!("{}+split({root})", m.name);
    m
}

/// Fold a weak entity set into its owner as an array-of-struct column (M5).
pub fn fold_weak(mut m: Mapping, schema: &ErSchema, weak: &str) -> MappingResult<Mapping> {
    let info = schema
        .require_entity(weak)?
        .weak
        .clone()
        .ok_or_else(|| MappingError::Unsupported(format!("'{weak}' is not a weak entity set")))?;
    let before = m.fragments.len();
    let mut orphaned_folds: Vec<String> = Vec::new();
    m.fragments.retain(|f| match f {
        Fragment::Entity { entity, folded_relationships, .. } if entity == weak => {
            orphaned_folds.extend(folded_relationships.iter().cloned());
            false
        }
        _ => true,
    });
    if m.fragments.len() == before {
        return Err(MappingError::Unsupported(format!(
            "weak entity '{weak}' has no table of its own to fold"
        )));
    }
    // Relationships that were folded into the removed table need a new
    // home: give each its own join table.
    for r in orphaned_folds {
        m.fragments.push(Fragment::Relationship { table: rel_table(&r), relationship: r });
    }
    let mut attached = false;
    for f in &mut m.fragments {
        if let Fragment::Entity { entity, folded_weak, .. } = f {
            if *entity == info.owner {
                folded_weak.push(weak.to_string());
                attached = true;
            }
        }
    }
    if !attached {
        return Err(MappingError::Unsupported(format!(
            "owner '{}' of '{weak}' has no entity table to fold into",
            info.owner
        )));
    }
    m.name = format!("{}+fold({weak})", m.name);
    Ok(m)
}

/// Co-locate the two ends of a relationship in one structure (M6).
pub fn colocate(
    mut m: Mapping,
    schema: &ErSchema,
    rel: &str,
    format: CoFormat,
) -> MappingResult<Mapping> {
    let r = schema.require_relationship(rel)?;
    let (left, right) = (r.from.entity.clone(), r.to.entity.clone());
    let mut orphaned_folds: Vec<String> = Vec::new();
    m.fragments.retain(|f| match f {
        Fragment::Entity { entity, folded_relationships, .. }
            if *entity == left || *entity == right =>
        {
            orphaned_folds.extend(folded_relationships.iter().cloned());
            false
        }
        Fragment::Relationship { relationship, .. } => relationship != rel,
        _ => true,
    });
    // If the co-located relationship itself was folded somewhere, unfold it.
    for f in &mut m.fragments {
        if let Fragment::Entity { folded_relationships, .. } = f {
            folded_relationships.retain(|x| x != rel);
        }
    }
    orphaned_folds.retain(|x| x != rel);
    for fr in orphaned_folds {
        m.fragments.push(Fragment::Relationship { table: rel_table(&fr), relationship: fr });
    }
    m.fragments.push(Fragment::CoLocated {
        table: co_table(rel),
        relationship: rel.to_string(),
        format,
    });
    m.name = format!("{}+co({rel})", m.name);
    Ok(m)
}

/// The six mappings of the paper's Section 6, built over the experiment
/// schema (or any schema with the same element names).
pub mod paper {
    use super::*;

    pub fn m1(schema: &ErSchema) -> Mapping {
        let mut m = normalized(schema);
        m.name = "M1".into();
        m
    }

    pub fn m2(schema: &ErSchema) -> Mapping {
        let mut m = inline_all_multivalued(normalized(schema), schema);
        m.name = "M2".into();
        m
    }

    pub fn m3(schema: &ErSchema) -> Mapping {
        let mut m = merge_hierarchy(normalized(schema), schema, "R");
        m.name = "M3".into();
        m
    }

    pub fn m4(schema: &ErSchema) -> Mapping {
        let mut m = split_hierarchy_full(normalized(schema), schema, "R");
        m.name = "M4".into();
        m
    }

    pub fn m5(schema: &ErSchema) -> MappingResult<Mapping> {
        let m = fold_weak(normalized(schema), schema, "S1")?;
        let mut m = fold_weak(m, schema, "S2")?;
        m.name = "M5".into();
        Ok(m)
    }

    pub fn m6(schema: &ErSchema, format: CoFormat) -> MappingResult<Mapping> {
        let mut m = colocate(normalized(schema), schema, "r2_s1", format)?;
        m.name = match format {
            CoFormat::Denormalized => "M6-denorm".into(),
            CoFormat::Factorized => "M6-fact".into(),
        };
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_model::fixtures;

    #[test]
    fn m1_shape() {
        let s = fixtures::experiment();
        let m = paper::m1(&s);
        // 8 entity tables + 3 mv side tables + r2_s1 + r1_r3 join tables
        // (r_s folded into R; s_s1/s_s2 implicit in weak tables).
        assert_eq!(m.fragments.len(), 8 + 3 + 2);
        let r_frag = m.home_fragment("R", &s).unwrap();
        assert!(matches!(r_frag, Fragment::Entity { folded_relationships, .. }
            if folded_relationships == &vec!["r_s".to_string()]));
    }

    #[test]
    fn m2_inlines_all_mvs() {
        let s = fixtures::experiment();
        let m = paper::m2(&s);
        assert!(!m.fragments.iter().any(|f| matches!(f, Fragment::MultiValued { .. })));
        match m.home_fragment("R", &s).unwrap() {
            Fragment::Entity { inline_multivalued, .. } => {
                assert_eq!(inline_multivalued.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn m3_merges_hierarchy() {
        let s = fixtures::experiment();
        let m = paper::m3(&s);
        // Subclass fragments gone; R fragment merged.
        assert!(m.home_fragment("R3", &s).is_some());
        match m.home_fragment("R3", &s).unwrap() {
            Fragment::Entity { entity, merged_subclasses, .. } => {
                assert_eq!(entity, "R");
                assert_eq!(merged_subclasses.len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.fragments.len(), 8 + 3 + 2 - 4);
    }

    #[test]
    fn m4_full_layout_everywhere_in_hierarchy() {
        let s = fixtures::experiment();
        let m = paper::m4(&s);
        for name in ["R", "R1", "R2", "R3", "R4"] {
            match m.home_fragment(name, &s).unwrap() {
                Fragment::Entity { layout, .. } => assert_eq!(*layout, HierarchyLayout::Full),
                other => panic!("unexpected {other:?}"),
            }
        }
        match m.home_fragment("S", &s).unwrap() {
            Fragment::Entity { layout, .. } => assert_eq!(*layout, HierarchyLayout::Delta),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn m5_folds_both_weak_sets() {
        let s = fixtures::experiment();
        let m = paper::m5(&s).unwrap();
        match m.home_fragment("S1", &s).unwrap() {
            Fragment::Entity { entity, folded_weak, .. } => {
                assert_eq!(entity, "S");
                assert_eq!(folded_weak, &vec!["S1".to_string(), "S2".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn m6_colocates() {
        let s = fixtures::experiment();
        let m = paper::m6(&s, CoFormat::Factorized).unwrap();
        assert!(matches!(m.home_fragment("R2", &s).unwrap(), Fragment::CoLocated { .. }));
        assert!(matches!(m.home_fragment("S1", &s).unwrap(), Fragment::CoLocated { .. }));
        assert!(m.home_fragment("R4", &s).is_some(), "subclass of co-located entity keeps table");
    }

    #[test]
    fn fold_weak_rejects_non_weak() {
        let s = fixtures::experiment();
        assert!(fold_weak(normalized(&s), &s, "S").is_err());
    }

    #[test]
    fn normalized_university() {
        let s = fixtures::university();
        let m = normalized(&s);
        // advisor + member_of folded; takes/teaches join tables; sec_of implicit.
        assert!(m.fragments.iter().any(
            |f| matches!(f, Fragment::Relationship { relationship, .. } if relationship == "takes")
        ));
        assert!(!m
            .fragments
            .iter()
            .any(|f| matches!(f, Fragment::Relationship { relationship, .. } if relationship == "advisor")));
        match m.home_fragment("student", &s).unwrap() {
            Fragment::Entity { folded_relationships, .. } => {
                assert_eq!(folded_relationships, &vec!["advisor".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
