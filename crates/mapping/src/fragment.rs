//! Fragments: typed connected subgraphs of the E/R graph.
//!
//! Each fragment becomes one physical table or data structure. Rather than
//! raw node sets, fragments are structured values whose layout options are
//! explicit; [`Fragment::nodes`] projects a fragment back onto the E/R
//! graph so that [`crate::validate`] can check the paper's formal
//! conditions (connected subgraphs, full coverage).

use erbium_model::{ErSchema, ModelResult, NodeId};
use serde::{Deserialize, Serialize};

/// How an entity table lays out inherited attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HierarchyLayout {
    /// Only the entity's own ("delta") attributes plus the inherited key;
    /// ancestors hold the rest (the paper's first hierarchy option).
    Delta,
    /// All attributes from the hierarchy root down to this entity; the
    /// table stores only instances whose most-specific type is this entity
    /// (the paper's "disjoint relations" option, mapping M4).
    Full,
}

/// Storage format of a co-located (multi-relation) fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoFormat {
    /// Materialized outer join in one table — one row per relationship
    /// pair, plus dangling rows for unmatched entities. Duplicates entity
    /// data ("significant duplication ... and also increases the cost of
    /// inserts/updates/deletes", as the paper notes for its
    /// PostgreSQL-based M6).
    Denormalized,
    /// Factorized: each entity stored once plus physical pointers — the
    /// compact multi-relation format the paper says is "needed to make a
    /// representation like M6 viable".
    Factorized,
}

/// One fragment of a mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fragment {
    /// A table anchored at one entity set.
    Entity {
        /// Physical table name.
        table: String,
        /// Anchor entity set.
        entity: String,
        /// Layout of inherited attributes.
        layout: HierarchyLayout,
        /// Descendant entity sets merged into this table (single-table
        /// hierarchy, mapping M3). A `_type` discriminator column is added
        /// when non-empty.
        merged_subclasses: Vec<String>,
        /// Multi-valued attributes (of the anchor or merged subclasses)
        /// stored inline as array columns; all other multi-valued
        /// attributes must have their own [`Fragment::MultiValued`].
        inline_multivalued: Vec<String>,
        /// Weak entity sets folded in as array-of-struct columns
        /// (mapping M5).
        folded_weak: Vec<String>,
        /// Many-to-one relationships (anchor on the many side) folded in
        /// as foreign-key columns.
        folded_relationships: Vec<String>,
    },
    /// A side table for one multi-valued attribute: owner key + one value
    /// per row (the fully normalized layout).
    MultiValued { table: String, entity: String, attribute: String },
    /// A join table for one relationship: both keys + relationship
    /// attributes.
    Relationship { table: String, relationship: String },
    /// Two entity sets and the relationship between them co-located in a
    /// single structure (mapping M6).
    CoLocated { table: String, relationship: String, format: CoFormat },
}

impl Fragment {
    /// Physical structure name.
    pub fn table(&self) -> &str {
        match self {
            Fragment::Entity { table, .. }
            | Fragment::MultiValued { table, .. }
            | Fragment::Relationship { table, .. }
            | Fragment::CoLocated { table, .. } => table,
        }
    }

    /// The E/R-graph nodes this fragment covers. Used by validation to
    /// check the paper's cover conditions.
    pub fn nodes(&self, schema: &ErSchema) -> ModelResult<Vec<NodeId>> {
        let mut out = Vec::new();
        match self {
            Fragment::Entity {
                entity,
                layout,
                merged_subclasses,
                inline_multivalued,
                folded_weak,
                folded_relationships,
                ..
            } => {
                let covered_entities: Vec<String> = match layout {
                    // Full layout physically stores ancestor attributes, so
                    // it covers the whole ancestry chain.
                    HierarchyLayout::Full => schema
                        .ancestry(entity)?
                        .into_iter()
                        .map(|e| e.name.clone())
                        .collect(),
                    HierarchyLayout::Delta => vec![entity.clone()],
                };
                let mut all = covered_entities;
                all.extend(merged_subclasses.iter().cloned());
                for e in &all {
                    out.push(NodeId::entity(e));
                    let es = schema.require_entity(e)?;
                    for a in &es.attributes {
                        if a.multi_valued && !inline_multivalued.contains(&a.name) {
                            continue; // lives in its own MultiValued fragment
                        }
                        out.push(NodeId::attribute(e, &a.name));
                    }
                }
                for w in folded_weak {
                    out.push(NodeId::entity(w));
                    let es = schema.require_entity(w)?;
                    for a in &es.attributes {
                        out.push(NodeId::attribute(w, &a.name));
                    }
                    if let Some(info) = &es.weak {
                        out.push(NodeId::relationship(&info.identifying_relationship));
                    }
                }
                for r in folded_relationships {
                    out.push(NodeId::relationship(r));
                    let rel = schema.require_relationship(r)?;
                    for a in &rel.attributes {
                        out.push(NodeId::attribute(r, &a.name));
                    }
                }
                // A weak entity's own table embeds the owner key, covering
                // the identifying relationship implicitly.
                if let Some(es) = schema.entity(entity) {
                    if let Some(info) = &es.weak {
                        out.push(NodeId::relationship(&info.identifying_relationship));
                    }
                }
            }
            Fragment::MultiValued { entity, attribute, .. } => {
                out.push(NodeId::attribute(entity, attribute));
                // The owner key is physically replicated; the entity node
                // itself is covered by the entity's home fragment. Including
                // the entity node keeps the subgraph connected, mirroring
                // the paper's Figure 2 where the `Ph` side table contains
                // both the attribute node and (the key of) the entity.
                out.push(NodeId::entity(entity));
            }
            Fragment::Relationship { relationship, .. } => {
                out.push(NodeId::relationship(relationship));
                let rel = schema.require_relationship(relationship)?;
                for a in &rel.attributes {
                    out.push(NodeId::attribute(relationship, &a.name));
                }
            }
            Fragment::CoLocated { relationship, .. } => {
                let rel = schema.require_relationship(relationship)?;
                out.push(NodeId::relationship(relationship));
                for a in &rel.attributes {
                    out.push(NodeId::attribute(relationship, &a.name));
                }
                for end in [&rel.from.entity, &rel.to.entity] {
                    out.push(NodeId::entity(end));
                    let es = schema.require_entity(end)?;
                    for a in &es.attributes {
                        out.push(NodeId::attribute(end, &a.name));
                    }
                    // Weak co-located entities embed their owner key.
                    if let Some(info) = &es.weak {
                        out.push(NodeId::relationship(&info.identifying_relationship));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }
}

/// A complete physical mapping: a named cover of the E/R graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    pub name: String,
    pub fragments: Vec<Fragment>,
}

impl Mapping {
    pub fn new(name: impl Into<String>, fragments: Vec<Fragment>) -> Mapping {
        Mapping { name: name.into(), fragments }
    }

    /// Find the fragment that is the *home* of an entity set: the one whose
    /// table stores the entity's rows (anchor, merged, folded weak, or
    /// co-located).
    pub fn home_fragment(&self, entity: &str, schema: &ErSchema) -> Option<&Fragment> {
        self.fragments.iter().find(|f| match f {
            Fragment::Entity { entity: anchor, merged_subclasses, folded_weak, .. } => {
                anchor == entity
                    || merged_subclasses.iter().any(|m| m == entity)
                    || folded_weak.iter().any(|w| w == entity)
            }
            Fragment::CoLocated { relationship, .. } => schema
                .relationship(relationship)
                .map(|r| r.involves(entity))
                .unwrap_or(false),
            _ => false,
        })
    }

    /// All physical structure names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.fragments.iter().map(Fragment::table).collect();
        names.sort();
        names
    }

    /// Serialize as the JSON document stored in the catalog (the paper:
    /// "the mapping of the E/R graph to physical tables ... is maintained
    /// in a table in the database as a JSON object").
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("mapping serialization is infallible")
    }

    /// Deserialize from the catalog JSON document.
    pub fn from_json(v: &serde_json::Value) -> Result<Mapping, serde_json::Error> {
        serde_json::from_value(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erbium_model::fixtures;

    #[test]
    fn entity_fragment_nodes_delta() {
        let s = fixtures::experiment();
        let f = Fragment::Entity {
            table: "r3".into(),
            entity: "R3".into(),
            layout: HierarchyLayout::Delta,
            merged_subclasses: vec![],
            inline_multivalued: vec![],
            folded_weak: vec![],
            folded_relationships: vec![],
        };
        let nodes = f.nodes(&s).unwrap();
        assert!(nodes.contains(&NodeId::entity("R3")));
        assert!(nodes.contains(&NodeId::attribute("R3", "r3_a")));
        assert!(!nodes.contains(&NodeId::entity("R1")), "delta covers only itself");
    }

    #[test]
    fn entity_fragment_nodes_full_cover_ancestry() {
        let s = fixtures::experiment();
        let f = Fragment::Entity {
            table: "r3_full".into(),
            entity: "R3".into(),
            layout: HierarchyLayout::Full,
            merged_subclasses: vec![],
            inline_multivalued: vec!["r_mv1".into(), "r_mv2".into(), "r_mv3".into()],
            folded_weak: vec![],
            folded_relationships: vec![],
        };
        let nodes = f.nodes(&s).unwrap();
        assert!(nodes.contains(&NodeId::entity("R")));
        assert!(nodes.contains(&NodeId::entity("R1")));
        assert!(nodes.contains(&NodeId::attribute("R", "r_a")));
        assert!(nodes.contains(&NodeId::attribute("R", "r_mv1")));
    }

    #[test]
    fn multivalued_exclusion() {
        let s = fixtures::experiment();
        let f = Fragment::Entity {
            table: "r".into(),
            entity: "R".into(),
            layout: HierarchyLayout::Delta,
            merged_subclasses: vec![],
            inline_multivalued: vec!["r_mv1".into()],
            folded_weak: vec![],
            folded_relationships: vec![],
        };
        let nodes = f.nodes(&s).unwrap();
        assert!(nodes.contains(&NodeId::attribute("R", "r_mv1")), "inline mv covered");
        assert!(!nodes.contains(&NodeId::attribute("R", "r_mv2")), "side-table mv not covered");
    }

    #[test]
    fn colocated_covers_both_entities_and_relationship() {
        let s = fixtures::experiment();
        let f = Fragment::CoLocated {
            table: "r2_s1_co".into(),
            relationship: "r2_s1".into(),
            format: CoFormat::Factorized,
        };
        let nodes = f.nodes(&s).unwrap();
        assert!(nodes.contains(&NodeId::relationship("r2_s1")));
        assert!(nodes.contains(&NodeId::entity("R2")));
        assert!(nodes.contains(&NodeId::entity("S1")));
        assert!(nodes.contains(&NodeId::relationship("s_s1")), "weak owner key embedded");
    }

    #[test]
    fn mapping_json_roundtrip() {
        let m = Mapping::new(
            "test",
            vec![Fragment::MultiValued {
                table: "r_mv1_t".into(),
                entity: "R".into(),
                attribute: "r_mv1".into(),
            }],
        );
        let back = Mapping::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }
}
