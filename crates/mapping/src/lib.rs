//! # erbium-mapping
//!
//! Graph-cover physical mappings — the heart of the paper's proposal.
//!
//! Section 4 of the paper: "we first view the E/R diagram as a graph where
//! each entity, relationship, and attribute is a separate node... A mapping
//! to physical storage representation can be seen as a **cover of this
//! graph using connected subgraphs**. Each connected subgraph corresponds
//! to a physical table or data structure."
//!
//! A [`Mapping`] is a list of [`Fragment`]s (typed connected subgraphs).
//! The two requirements the paper imposes on any mapping are enforced here:
//!
//! 1. **Unique reversibility** — the stored entities and relationships must
//!    be recoverable (the [`validate`] module checks coverage/homes;
//!    `EntityStore::extract_entities` performs the recovery and property
//!    tests in this crate assert round-tripping);
//! 2. **CRUD well-definedness** — every insert/update/delete of an entity
//!    or relationship maps to physical-table updates ([`crud`] implements
//!    the translation, atomically via storage transactions).
//!
//! The supported fragment layouts realize all three physical representation
//! targets of Section 4: 1NF tables with composite types, hierarchical
//! structures with arrays (of structs), and multi-relational compressed
//! (factorized) representations.
//!
//! [`rewrite`] translates ERQL queries over the logical E/R schema into
//! engine plans over whatever physical layout the installed mapping chose —
//! this is the logical data independence the paper is arguing for.

pub mod crud;
pub mod error;
pub mod fragment;
pub mod lower;
pub mod presets;
pub mod rewrite;
pub mod validate;

pub use crud::{BulkEntity, EntityData, EntityStore, RelInstance};
pub use error::{MappingError, MappingResult};
pub use fragment::{CoFormat, Fragment, HierarchyLayout, Mapping};
pub use lower::{EntityHome, Lowering, MvHome, RelHome, Side, TableSpec};
pub use rewrite::QueryRewriter;
