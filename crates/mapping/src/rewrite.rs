//! ERQL → physical plan rewriting.
//!
//! This module is where the paper's *logical data independence* happens: a
//! query written against the E/R schema ("SELECT r.r_mv1 FROM R r JOIN S s
//! VIA r_s WHERE ...") is translated into an engine [`Plan`] over whatever
//! physical tables the installed mapping chose. The same ERQL text
//! therefore runs — with identical results but very different costs —
//! against all of the paper's mappings M1–M6.
//!
//! Key translation rules:
//!
//! * **Entity access**: scanning an entity set produces its extent with all
//!   inherited attributes. Delta hierarchies join ancestor tables; merged
//!   hierarchies filter (or not) on `_type`; full/disjoint hierarchies union
//!   subtree tables (the paper's "5-relation union"); folded weak entities
//!   unnest the owner's array-of-struct column; co-located entities read
//!   one side of the shared structure (with `DISTINCT` for denormalized
//!   storage, since pair rows duplicate entity data).
//! * **Multi-valued attributes** are resolved lazily, in the layout's
//!   native shape: a bare reference yields an *array* (side tables are
//!   aggregated with `array_agg`; inline arrays are read directly), while
//!   `UNNEST(attr)` yields one row per value (side tables are joined
//!   directly — no aggregation; inline arrays go through the `Unnest`
//!   operator). Each distinct `(binding, attribute)` unnest becomes one
//!   plan column, so repeated `UNNEST(x)` references agree.
//! * **`JOIN ... VIA rel`** compiles to whatever the relationship's home
//!   dictates: FK equality for folded relationships, a join-table hop, a
//!   pointer-following [`FactorizedSide::Join`] scan for factorized
//!   co-location, a pair-row scan for denormalized co-location, or an
//!   owner-key equality for identifying relationships.
//! * **`NEST(...)`** lowers to `array_agg(struct_pack(...))` with grouping
//!   inferred from the remaining select items, as the paper proposes.

use crate::error::{MappingError, MappingResult};
use crate::fragment::{CoFormat, HierarchyLayout};
use crate::lower::{co_col, fk_col, join_col, EntityHome, Lowering, MvHome, RelHome, Side, TYPE_COL};
use erbium_engine::plan::FactorizedSide;
use erbium_engine::{AggCall, AggFunc, BinOp, Expr, Field, JoinKind, Plan, ScalarFunc, SortKey};
use erbium_model::{EntitySet, Relationship};
use erbium_query::{
    JoinClause, Literal, OrderItem, QAggFunc, QBinOp, QExpr, SelectItem, SelectStmt,
};
use erbium_storage::{Catalog, DataType, Value};

/// Provenance of one plan column in a query scope.
#[derive(Debug, Clone, PartialEq)]
struct ScopeCol {
    binding: String,
    /// Attribute name; physical-ish names (`rel__key`) for FK columns,
    /// `#unnest:attr` for unnest result columns.
    attr: String,
}

/// A partially-built query: a plan plus the provenance of its columns.
struct Scope {
    plan: Plan,
    cols: Vec<ScopeCol>,
    /// `(binding, entity)` pairs bound so far, in FROM/JOIN order.
    bindings: Vec<(String, String)>,
}

impl Scope {
    fn find(&self, binding: &str, attr: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.binding == binding && c.attr == attr)
    }

    fn find_unqualified(&self, attr: &str) -> MappingResult<Option<usize>> {
        let mut hits = self.cols.iter().enumerate().filter(|(_, c)| c.attr == attr);
        match (hits.next(), hits.next()) {
            (None, _) => Ok(None),
            (Some((i, _)), None) => Ok(Some(i)),
            (Some(_), Some(_)) => {
                Err(MappingError::Binding(format!("ambiguous attribute '{attr}'")))
            }
        }
    }

    fn entity_of(&self, binding: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|(b, _)| b == binding)
            .map(|(_, e)| e.as_str())
    }
}

/// Rewrites ERQL statements into engine plans under one lowered mapping.
pub struct QueryRewriter<'a> {
    lw: &'a Lowering,
    cat: &'a Catalog,
}

impl<'a> QueryRewriter<'a> {
    pub fn new(lw: &'a Lowering, cat: &'a Catalog) -> QueryRewriter<'a> {
        QueryRewriter { lw, cat }
    }

    /// Translate a SELECT statement to a physical plan. The plan's output
    /// fields carry the select-item names.
    pub fn rewrite(&self, stmt: &SelectStmt) -> MappingResult<Plan> {
        // FROM + JOINs.
        let mut scope = self.entity_access(stmt.from.binding(), &stmt.from.entity)?;
        for j in &stmt.joins {
            scope = self.apply_join(scope, j)?;
        }
        // Lazily resolve multi-valued attributes referenced anywhere.
        self.resolve_multivalued(&mut scope, stmt)?;
        // WHERE.
        if let Some(w) = &stmt.where_clause {
            let pred = self.expr(&scope, w)?;
            scope.plan = scope.plan.filter(pred);
        }
        // SELECT list (+ inferred grouping).
        let has_agg = stmt.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Nest { .. } => true,
            SelectItem::Wildcard { .. } => false,
        }) || !stmt.group_by.is_empty();

        let mut out_plan;
        let out_names: Vec<String>;
        if has_agg {
            (out_plan, out_names) = self.build_aggregate(&scope, stmt)?;
        } else {
            let mut exprs: Vec<(Expr, String)> = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard { qualifier } => {
                        for (e, n) in self.expand_wildcard(&scope, qualifier.as_deref())? {
                            exprs.push((e, n));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let e = self.expr(&scope, expr)?;
                        exprs.push((e, alias.clone().unwrap_or_else(|| item_name(expr))));
                    }
                    SelectItem::Nest { .. } => unreachable!("nest implies has_agg"),
                }
            }
            out_names = exprs.iter().map(|(_, n)| n.clone()).collect();
            out_plan = scope.plan.clone().project(exprs);
        }
        if stmt.distinct {
            out_plan = out_plan.distinct();
        }
        // ORDER BY against the output schema (aliases), falling back to
        // positions.
        if !stmt.order_by.is_empty() {
            let keys = stmt
                .order_by
                .iter()
                .map(|o| self.order_key(&out_plan, &out_names, o))
                .collect::<MappingResult<Vec<SortKey>>>()?;
            out_plan = out_plan.sort(keys);
        }
        if let Some(n) = stmt.limit {
            out_plan = out_plan.limit(n);
        }
        Ok(out_plan)
    }

    /// Rewrite and optimize.
    pub fn rewrite_optimized(&self, stmt: &SelectStmt) -> MappingResult<Plan> {
        let plan = self.rewrite(stmt)?;
        Ok(erbium_engine::optimizer::optimize(plan, self.cat)?)
    }

    fn order_key(
        &self,
        plan: &Plan,
        names: &[String],
        item: &OrderItem,
    ) -> MappingResult<SortKey> {
        // Simple column / alias references sort on the output column.
        if let QExpr::Column { qualifier: None, name } = &item.expr {
            if let Some(i) = names.iter().position(|n| n == name) {
                return Ok(SortKey { expr: Expr::Col(i), desc: item.desc });
            }
        }
        if let QExpr::Column { qualifier: Some(q), name } = &item.expr {
            let combined = format!("{q}.{name}");
            if let Some(i) =
                names.iter().position(|n| *n == combined || *n == *name)
            {
                return Ok(SortKey { expr: Expr::Col(i), desc: item.desc });
            }
        }
        let _ = plan;
        Err(MappingError::Binding(format!(
            "ORDER BY must reference a select-list column (got {:?})",
            item.expr
        )))
    }

    // ---- entity access -------------------------------------------------------

    /// Plan producing the extent of `entity` with key columns, resident
    /// (non-side-table) attributes of all ancestry levels, and FK columns of
    /// folded relationships.
    fn entity_access(&self, binding: &str, entity: &str) -> MappingResult<Scope> {
        let chain: Vec<EntitySet> =
            self.lw.schema.ancestry(entity)?.into_iter().cloned().collect();
        let most = chain.last().expect("nonempty");
        let scope = match self.lw.entity_home(&most.name)? {
            EntityHome::Merged { table, .. } => {
                self.access_merged(binding, entity, &chain, table)?
            }
            EntityHome::Table { layout: HierarchyLayout::Full, .. } => {
                self.access_full(binding, entity, &chain)?
            }
            EntityHome::FoldedWeak { owner, column } => {
                let owner = owner.clone();
                let column = column.clone();
                self.access_folded_weak(binding, entity, &owner, &column)?
            }
            _ => {
                // The root of a merged hierarchy is itself `Table`, but its
                // table carries `_type`; detect and reuse the merged path.
                if let EntityHome::Table { table, .. } = self.lw.entity_home(&most.name)? {
                    if self
                        .lw
                        .table_schema(table)
                        .map(|s| s.column_index(TYPE_COL).is_some())
                        .unwrap_or(false)
                    {
                        let table = table.clone();
                        return self.finish_access(
                            self.access_merged(binding, entity, &chain, &table)?,
                            binding,
                            entity,
                        );
                    }
                }
                self.access_delta(binding, entity, &chain)?
            }
        };
        self.finish_access(scope, binding, entity)
    }

    fn finish_access(&self, mut scope: Scope, binding: &str, entity: &str) -> MappingResult<Scope> {
        scope.bindings = vec![(binding.to_string(), entity.to_string())];
        Ok(scope)
    }

    /// Merged (single-table) hierarchy access.
    fn access_merged(
        &self,
        binding: &str,
        entity: &str,
        chain: &[EntitySet],
        table: &str,
    ) -> MappingResult<Scope> {
        let mut plan = Plan::scan(self.cat, table)?;
        // Restrict to the entity's subtree unless it is the root.
        if chain.len() > 1 {
            let ty_col = plan.require_column(TYPE_COL)?;
            let mut members = vec![Value::str(entity)];
            for d in self.lw.schema.descendants(entity) {
                members.push(Value::str(&d.name));
            }
            plan = plan.filter(Expr::in_set(Expr::Col(ty_col), members));
        }
        // Project to key + chain attributes + FK columns.
        let (exprs, cols) = self.visible_columns(binding, entity, chain, &plan, |n| n.to_string())?;
        let plan = plan.project(exprs);
        Ok(Scope { plan, cols, bindings: vec![] })
    }

    /// Full-layout (disjoint tables) hierarchy access: union of subtree
    /// tables projected to the entity's visible columns.
    fn access_full(&self, binding: &str, entity: &str, chain: &[EntitySet]) -> MappingResult<Scope> {
        let mut members = vec![entity.to_string()];
        members.extend(self.lw.schema.descendants(entity).iter().map(|e| e.name.clone()));
        let mut branches = Vec::new();
        let mut cols = Vec::new();
        for (i, m) in members.iter().enumerate() {
            let EntityHome::Table { table, .. } = self.lw.entity_home(m)? else {
                return Err(MappingError::Unsupported(format!(
                    "full-layout member '{m}' without its own table"
                )));
            };
            let plan = Plan::scan(self.cat, table)?;
            let (exprs, branch_cols) =
                self.visible_columns(binding, entity, chain, &plan, |n| n.to_string())?;
            if i == 0 {
                cols = branch_cols;
            }
            branches.push(plan.project(exprs));
        }
        let plan = if branches.len() == 1 {
            branches.pop().expect("single branch")
        } else {
            Plan::union(branches)?
        };
        Ok(Scope { plan, cols, bindings: vec![] })
    }

    /// Delta-layout access: join the entity's own table with its ancestors'
    /// tables (co-located levels read their side of the shared structure).
    fn access_delta(&self, binding: &str, entity: &str, chain: &[EntitySet]) -> MappingResult<Scope> {
        let key_names: Vec<String> =
            self.lw.key_columns(entity)?.into_iter().map(|(n, _)| n).collect();
        let mut plan: Option<Plan> = None;
        let mut cols: Vec<ScopeCol> = Vec::new();
        // Join from the most specific level upward: its table is the
        // smallest and determines the extent.
        for level in chain.iter().rev() {
            let (level_plan, level_cols) = self.level_access(binding, level)?;
            match plan {
                None => {
                    plan = Some(level_plan);
                    cols = level_cols;
                }
                Some(p) => {
                    // Join on the key columns (present in both).
                    let left_keys: Vec<Expr> = key_names
                        .iter()
                        .map(|k| {
                            Expr::Col(
                                cols.iter()
                                    .position(|c| c.attr == *k)
                                    .expect("key column present"),
                            )
                        })
                        .collect();
                    let right_keys: Vec<Expr> = key_names
                        .iter()
                        .map(|k| {
                            Expr::Col(
                                level_cols
                                    .iter()
                                    .position(|c| c.attr == *k)
                                    .expect("key column present"),
                            )
                        })
                        .collect();
                    let offset = p.fields.len();
                    plan = Some(p.join(level_plan, JoinKind::Inner, left_keys, right_keys));
                    // Drop the duplicated key columns of the right side from
                    // the visible set? Keep them (harmless) but do not
                    // register duplicates.
                    for (i, c) in level_cols.into_iter().enumerate() {
                        if key_names.contains(&c.attr) {
                            continue;
                        }
                        cols.push(c);
                        // Adjust: the pushed col's index is offset + i.
                        let idx = cols.len() - 1;
                        debug_assert!(idx <= offset + i);
                    }
                    // Rebuild cols to be index-accurate with a projection.
                    let p2 = plan.take().expect("set above");
                    let mut exprs = Vec::new();
                    let mut new_cols = Vec::new();
                    let mut seen = std::collections::HashSet::new();
                    for (i, f) in p2.fields.iter().enumerate() {
                        let attr = f.name.clone();
                        if !seen.insert(attr.clone()) {
                            continue; // duplicate key col from right side
                        }
                        exprs.push((Expr::Col(i), attr.clone()));
                        new_cols.push(ScopeCol { binding: binding.to_string(), attr });
                    }
                    plan = Some(p2.project(exprs));
                    cols = new_cols;
                }
            }
        }
        let plan = plan.expect("nonempty chain");
        // Deterministic column order regardless of join order: keys, then
        // root→leaf chain attributes, then FK columns — so that wildcard
        // expansion agrees across mappings.
        let mut order: Vec<String> = key_names.clone();
        for level in chain {
            for a in &level.attributes {
                if !order.contains(&a.name) {
                    order.push(a.name.clone());
                }
            }
            for rel_name in self.lw.folds_of(&level.name) {
                let rel = self.lw.schema.require_relationship(rel_name)?;
                let one = rel.one_end().expect("folded is m:1");
                for (k, _) in self.lw.key_columns(&one.entity)? {
                    order.push(fk_col(rel_name, &k));
                }
            }
            for weak in self.lw.schema.entities() {
                if weak.weak.as_ref().map(|w| w.owner == level.name).unwrap_or(false) {
                    order.push(format!("#fold:{}", weak.name));
                }
            }
        }
        let mut exprs = Vec::new();
        let mut out_cols = Vec::new();
        for attr in order {
            if let Some(i) = cols.iter().position(|c| c.attr == attr) {
                exprs.push((Expr::Col(i), attr.clone()));
                out_cols.push(ScopeCol { binding: binding.to_string(), attr });
            }
        }
        Ok(Scope { plan: plan.project(exprs), cols: out_cols, bindings: vec![] })
    }

    /// Access to one hierarchy level's own table / structure, exposing key
    /// columns + the level's resident attributes + its FK columns.
    fn level_access(&self, binding: &str, level: &EntitySet) -> MappingResult<(Plan, Vec<ScopeCol>)> {
        match self.lw.entity_home(&level.name)? {
            EntityHome::Table { table, .. } => {
                let plan = Plan::scan(self.cat, table)?;
                let (exprs, cols) = self.visible_columns(
                    binding,
                    &level.name,
                    std::slice::from_ref(level),
                    &plan,
                    |n| n.to_string(),
                )?;
                Ok((plan.project(exprs), cols))
            }
            EntityHome::CoLocated { table, side, format } => match format {
                CoFormat::Factorized => {
                    let plan = Plan::factorized_scan(
                        self.cat,
                        table,
                        match side {
                            Side::Left => FactorizedSide::Left,
                            Side::Right => FactorizedSide::Right,
                        },
                    )?;
                    let cols = plan
                        .fields
                        .iter()
                        .map(|f| ScopeCol { binding: binding.to_string(), attr: f.name.clone() })
                        .collect();
                    Ok((plan, cols))
                }
                CoFormat::Denormalized => {
                    // Pair rows duplicate entity data: filter to rows where
                    // this side is present, project the side's columns, and
                    // deduplicate — the cost the paper predicts for
                    // single-entity queries on M6.
                    let plan = Plan::scan(self.cat, table)?;
                    let key_names: Vec<String> =
                        self.lw.key_columns(&level.name)?.into_iter().map(|(n, _)| n).collect();
                    let first_key = plan.require_column(&co_col(*side, &key_names[0]))?;
                    let plan = plan.filter(Expr::IsNotNull(Box::new(Expr::Col(first_key))));
                    let mut exprs = Vec::new();
                    let mut cols = Vec::new();
                    for (i, f) in plan.fields.iter().enumerate() {
                        if let Some(stripped) = strip_side_name(&f.name, *side) {
                            exprs.push((Expr::Col(i), stripped.to_string()));
                            cols.push(ScopeCol {
                                binding: binding.to_string(),
                                attr: stripped.to_string(),
                            });
                        }
                    }
                    Ok((plan.project(exprs).distinct(), cols))
                }
            },
            other => Err(MappingError::Unsupported(format!(
                "level access for home {other:?}"
            ))),
        }
    }

    /// Folded weak entity access: owner scan → unnest the array-of-struct
    /// column → project owner key + struct fields.
    fn access_folded_weak(
        &self,
        binding: &str,
        entity: &str,
        owner: &str,
        column: &str,
    ) -> MappingResult<Scope> {
        let owner_scope = self.entity_access("@owner", owner)?;
        let es = self.lw.schema.require_entity(entity)?;
        // The folded column lives in the owner's home table but is NOT part
        // of the owner's visible attributes; re-scan with the raw table to
        // reach it.
        let EntityHome::Table { table, .. } = self.lw.entity_home(owner)? else {
            return Err(MappingError::Unsupported(
                "folded weak owner must have its own table".into(),
            ));
        };
        let _ = owner_scope;
        let plan = Plan::scan(self.cat, table)?;
        let col = plan.require_column(column)?;
        let plan = plan.unnest(col)?;
        let owner_keys: Vec<String> =
            self.lw.key_columns(owner)?.into_iter().map(|(n, _)| n).collect();
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for k in &owner_keys {
            let i = plan.require_column(k)?;
            exprs.push((Expr::Col(i), k.clone()));
            cols.push(ScopeCol { binding: binding.to_string(), attr: k.clone() });
        }
        for (fi, a) in es.attributes.iter().enumerate() {
            exprs.push((Expr::field(Expr::Col(col), fi), a.name.clone()));
            cols.push(ScopeCol { binding: binding.to_string(), attr: a.name.clone() });
        }
        Ok(Scope { plan: plan.project(exprs), cols, bindings: vec![] })
    }

    /// The visible (resident) columns of an access plan: keys, chain
    /// attributes present in the plan, FK columns of folded relationships.
    #[allow(clippy::type_complexity)]
    fn visible_columns(
        &self,
        binding: &str,
        entity: &str,
        chain: &[EntitySet],
        plan: &Plan,
        name_of: impl Fn(&str) -> String,
    ) -> MappingResult<(Vec<(Expr, String)>, Vec<ScopeCol>)> {
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        let push = |idx: usize, attr: String, exprs: &mut Vec<(Expr, String)>, cols: &mut Vec<ScopeCol>| {
            exprs.push((Expr::Col(idx), name_of(&attr)));
            cols.push(ScopeCol { binding: binding.to_string(), attr });
        };
        for (k, _) in self.lw.key_columns(entity)? {
            if let Some(i) = plan.column(&k) {
                push(i, k, &mut exprs, &mut cols);
            }
        }
        for level in chain {
            for a in &level.attributes {
                if cols.iter().any(|c| c.attr == a.name) {
                    continue; // key columns already pushed
                }
                if let Some(i) = plan.column(&a.name) {
                    push(i, a.name.clone(), &mut exprs, &mut cols);
                }
            }
            for rel_name in self.lw.folds_of(&level.name) {
                let rel = self.lw.schema.require_relationship(rel_name)?;
                let one = rel.one_end().expect("folded is m:1");
                for (k, _) in self.lw.key_columns(&one.entity)? {
                    let physical = fk_col(rel_name, &k);
                    if let Some(i) = plan.column(&physical) {
                        push(i, physical, &mut exprs, &mut cols);
                    }
                }
            }
            // Folded weak children travel with the owner row; expose them
            // as hidden columns so a later identifying-relationship join
            // can unnest in place instead of re-scanning the owner.
            for weak in self.lw.schema.entities() {
                if weak.weak.as_ref().map(|w| w.owner == level.name).unwrap_or(false) {
                    if let Some(i) = plan.column(&crate::lower::weak_col(&weak.name)) {
                        push(i, format!("#fold:{}", weak.name), &mut exprs, &mut cols);
                    }
                }
            }
        }
        Ok((exprs, cols))
    }

    // ---- joins ------------------------------------------------------------------

    fn apply_join(&self, scope: Scope, j: &JoinClause) -> MappingResult<Scope> {
        let binding = j.table.binding().to_string();
        let entity = j.table.entity.clone();
        if scope.bindings.iter().any(|(b, _)| *b == binding) {
            return Err(MappingError::Binding(format!("duplicate binding '{binding}'")));
        }
        let right = self.entity_access(&binding, &entity)?;
        let kind = if j.left { JoinKind::Left } else { JoinKind::Inner };
        let mut joined = match &j.via {
            Some(rel_name) => self.join_via(scope, right, rel_name, &entity, kind)?,
            None => {
                // Pure ON join (cartesian if no ON): join with no keys.
                let mut s = merge_scopes(scope, right, kind, vec![], vec![]);
                s.bindings.push((binding.clone(), entity.clone()));
                s
            }
        };
        if !joined.bindings.iter().any(|(b, _)| *b == binding) {
            joined.bindings.push((binding.clone(), entity.clone()));
        }
        if let Some(on) = &j.on {
            let pred = self.expr(&joined, on)?;
            joined.plan = joined.plan.filter(pred);
        }
        Ok(joined)
    }

    /// Identify which end of `rel` matches an existing binding, returning
    /// `(binding, its entity, end_is_from)`.
    fn match_end(
        &self,
        scope: &Scope,
        rel: &Relationship,
        new_entity: &str,
    ) -> MappingResult<(String, String, bool)> {
        // Two entity sets are join-compatible when one is an ancestor of
        // the other (they share key attributes).
        let compatible = |a: &str, b: &str| -> MappingResult<bool> {
            if a == b {
                return Ok(true);
            }
            Ok(self.lw.schema.ancestry(a)?.iter().any(|l| l.name == b)
                || self.lw.schema.ancestry(b)?.iter().any(|l| l.name == a))
        };
        // Which end does the NEW entity play?
        let from_ok = compatible(new_entity, &rel.from.entity)?;
        let to_ok = compatible(new_entity, &rel.to.entity)?;
        let new_is_from = match (from_ok, to_ok) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => {
                return Err(MappingError::Binding(format!(
                    "relationship '{}' is ambiguous for '{new_entity}'; \
                     use an explicit ON clause",
                    rel.name
                )))
            }
            (false, false) => {
                return Err(MappingError::Binding(format!(
                    "'{new_entity}' does not participate in relationship '{}'",
                    rel.name
                )))
            }
        };
        let existing_end = if new_is_from { &rel.to.entity } else { &rel.from.entity };
        for (b, e) in &scope.bindings {
            if compatible(e, existing_end)? {
                return Ok((b.clone(), e.clone(), !new_is_from));
            }
        }
        Err(MappingError::Binding(format!(
            "no bound entity matches the '{existing_end}' end of relationship '{}'",
            rel.name
        )))
    }

    fn join_via(
        &self,
        scope: Scope,
        right: Scope,
        rel_name: &str,
        new_entity: &str,
        kind: JoinKind,
    ) -> MappingResult<Scope> {
        let rel = self.lw.schema.require_relationship(rel_name)?.clone();
        let (bound_binding, _bound_entity, bound_is_from) =
            self.match_end(&scope, &rel, new_entity)?;
        let bound_end_entity =
            if bound_is_from { &rel.from.entity } else { &rel.to.entity };
        let new_end_entity = if bound_is_from { &rel.to.entity } else { &rel.from.entity };
        let bound_keys: Vec<String> =
            self.lw.key_columns(bound_end_entity)?.into_iter().map(|(n, _)| n).collect();
        let new_keys: Vec<String> =
            self.lw.key_columns(new_end_entity)?.into_iter().map(|(n, _)| n).collect();
        let new_binding = right.cols.first().map(|c| c.binding.clone()).unwrap_or_default();

        let key_exprs = |s: &Scope, binding: &str, keys: &[String]| -> MappingResult<Vec<Expr>> {
            keys.iter()
                .map(|k| {
                    s.find(binding, k)
                        .map(Expr::Col)
                        .ok_or_else(|| MappingError::Binding(format!("key '{k}' not in scope")))
                })
                .collect()
        };

        match self.lw.rel_home(rel_name)?.clone() {
            RelHome::Folded { many_entity, one_entity } => {
                // FK columns live with the many side; the bound side is the
                // many side iff its declared end is the relationship's many
                // end.
                let bound_is_many = self
                    .lw
                    .schema
                    .require_relationship(rel_name)?
                    .many_end()
                    .map(|e| e.entity == *bound_end_entity)
                    .unwrap_or(false);
                let _ = &many_entity;
                let one_key_names: Vec<String> =
                    self.lw.key_columns(&one_entity)?.into_iter().map(|(n, _)| n).collect();
                let fk_attr = |k: &str| fk_col(rel_name, k);
                if bound_is_many {
                    // bound side carries the FK.
                    let lk: Vec<Expr> = one_key_names
                        .iter()
                        .map(|k| {
                            scope.find(&bound_binding, &fk_attr(k)).map(Expr::Col).ok_or_else(
                                || MappingError::Binding(format!("FK '{}' not in scope", fk_attr(k))),
                            )
                        })
                        .collect::<MappingResult<_>>()?;
                    let rk = key_exprs(&right, &new_binding, &one_key_names)?;
                    Ok(merge_scopes(scope, right, kind, lk, rk))
                } else {
                    // new side carries the FK.
                    let lk = key_exprs(&scope, &bound_binding, &one_key_names)?;
                    let rk: Vec<Expr> = one_key_names
                        .iter()
                        .map(|k| {
                            right.find(&new_binding, &fk_attr(k)).map(Expr::Col).ok_or_else(
                                || MappingError::Binding(format!("FK '{}' not in scope", fk_attr(k))),
                            )
                        })
                        .collect::<MappingResult<_>>()?;
                    Ok(merge_scopes(scope, right, kind, lk, rk))
                }
            }
            RelHome::JoinTable { table } => {
                // scope ⋈ (rel table ⋈ right).
                let rel_plan = Plan::scan(self.cat, table.as_str())?;
                let (from_keys, to_keys) = (
                    self.lw.key_columns(&rel.from.entity)?,
                    self.lw.key_columns(&rel.to.entity)?,
                );
                let (bound_side_cols, new_side_cols): (Vec<String>, Vec<String>) = if bound_is_from
                {
                    (
                        from_keys.iter().map(|(k, _)| join_col(Side::Left, k)).collect(),
                        to_keys.iter().map(|(k, _)| join_col(Side::Right, k)).collect(),
                    )
                } else {
                    (
                        to_keys.iter().map(|(k, _)| join_col(Side::Right, k)).collect(),
                        from_keys.iter().map(|(k, _)| join_col(Side::Left, k)).collect(),
                    )
                };
                // rel ⋈ right first (inner), so LEFT joins stay correct.
                let rel_new_keys: Vec<Expr> = new_side_cols
                    .iter()
                    .map(|c| rel_plan.require_column(c).map(Expr::Col))
                    .collect::<Result<_, _>>()
                    .map_err(MappingError::Engine)?;
                let right_keys_e = key_exprs(&right, &new_binding, &new_keys)?;
                let rel_arity = rel_plan.fields.len();
                let combined = rel_plan.join(right.plan, JoinKind::Inner, rel_new_keys, right_keys_e);
                // Columns: rel table's, then right's.
                let mut combined_cols: Vec<ScopeCol> = (0..rel_arity)
                    .map(|i| ScopeCol {
                        binding: format!("@rel:{rel_name}"),
                        attr: combined.fields[i].name.clone(),
                    })
                    .collect();
                combined_cols.extend(right.cols.iter().cloned());
                let combined_scope =
                    Scope { plan: combined, cols: combined_cols, bindings: right.bindings.clone() };
                let lk = key_exprs(&scope, &bound_binding, &bound_keys)?;
                let rk: Vec<Expr> = bound_side_cols
                    .iter()
                    .map(|c| {
                        combined_scope
                            .cols
                            .iter()
                            .position(|sc| sc.attr == *c)
                            .map(Expr::Col)
                            .ok_or_else(|| {
                                MappingError::Binding(format!("join-table column '{c}' missing"))
                            })
                    })
                    .collect::<MappingResult<_>>()?;
                Ok(merge_scopes(scope, combined_scope, kind, lk, rk))
            }
            RelHome::CoLocated { table, format } => match format {
                CoFormat::Factorized => {
                    // Follow physical pointers: enumerate the stored join.
                    let pair_plan =
                        Plan::factorized_scan(self.cat, table.as_str(), FactorizedSide::Join)?;
                    let ft = self.cat.factorized(table.as_str())?;
                    let left_arity = ft.left().schema().arity();
                    // Provenance: left member cols belong to the from side.
                    let mut pair_cols = Vec::new();
                    for (i, f) in pair_plan.fields.iter().enumerate() {
                        let side_binding = if i < left_arity {
                            if bound_is_from { &bound_binding } else { &new_binding }
                        } else if bound_is_from {
                            &new_binding
                        } else {
                            &bound_binding
                        };
                        pair_cols.push(ScopeCol {
                            binding: side_binding.clone(),
                            attr: f.name.clone(),
                        });
                    }
                    let pair_scope =
                        Scope { plan: pair_plan, cols: pair_cols, bindings: right.bindings.clone() };
                    // Join the existing scope to the pair stream on the
                    // bound side's key.
                    let lk = key_exprs(&scope, &bound_binding, &bound_keys)?;
                    let rk = key_exprs(&pair_scope, &bound_binding, &bound_keys)?;
                    let mut merged = merge_scopes(scope, pair_scope, kind, lk, rk);
                    // The bound side's columns now appear twice (from the
                    // original scope and the pair stream); keep provenance
                    // on the first occurrence by renaming the duplicates.
                    dedupe_cols(&mut merged);
                    // The pair stream only carries the co-located level's
                    // (delta) columns; join the new entity's ancestor
                    // tables for inherited attributes.
                    self.join_new_ancestors(merged, &new_binding, new_end_entity)
                }
                CoFormat::Denormalized => {
                    // Pair rows: both sides present.
                    let plan = Plan::scan(self.cat, table.as_str())?;
                    let lkey0 = co_col(Side::Left, &self.lw.key_columns(&rel.from.entity)?[0].0);
                    let rkey0 = co_col(Side::Right, &self.lw.key_columns(&rel.to.entity)?[0].0);
                    let li = plan.require_column(&lkey0)?;
                    let ri = plan.require_column(&rkey0)?;
                    let plan = plan
                        .filter(Expr::IsNotNull(Box::new(Expr::Col(li))))
                        .filter(Expr::IsNotNull(Box::new(Expr::Col(ri))));
                    let mut pair_cols = Vec::new();
                    let mut exprs = Vec::new();
                    for (i, f) in plan.fields.iter().enumerate() {
                        let (attr, side_binding) =
                            if let Some(s) = strip_side_name(&f.name, Side::Left) {
                                (
                                    s.to_string(),
                                    if bound_is_from { &bound_binding } else { &new_binding },
                                )
                            } else if let Some(s) = strip_side_name(&f.name, Side::Right) {
                                (
                                    s.to_string(),
                                    if bound_is_from { &new_binding } else { &bound_binding },
                                )
                            } else {
                                // relationship attribute column
                                (f.name.clone(), &new_binding)
                            };
                        exprs.push((Expr::Col(i), attr.clone()));
                        pair_cols.push(ScopeCol { binding: side_binding.clone(), attr });
                    }
                    let pair_scope = Scope {
                        plan: plan.project(exprs),
                        cols: pair_cols,
                        bindings: right.bindings.clone(),
                    };
                    let lk = key_exprs(&scope, &bound_binding, &bound_keys)?;
                    let rk = key_exprs(&pair_scope, &bound_binding, &bound_keys)?;
                    let mut merged = merge_scopes(scope, pair_scope, kind, lk, rk);
                    dedupe_cols(&mut merged);
                    self.join_new_ancestors(merged, &new_binding, new_end_entity)
                }
            },
            RelHome::ImplicitWeak { weak } => {
                // The weak side's plan exposes the owner key attributes.
                let owner = self
                    .lw
                    .schema
                    .require_entity(&weak)?
                    .weak
                    .as_ref()
                    .expect("weak")
                    .owner
                    .clone();
                // Fast path (mapping M5): the weak entity is folded into the
                // bound owner — unnest the array column already in scope
                // instead of re-scanning the owner's table.
                let weak_is_new = self
                    .lw
                    .schema
                    .hierarchy_root(new_end_entity)?
                    .name
                    == weak;
                if weak_is_new {
                    if let Ok(EntityHome::FoldedWeak { .. }) = self.lw.entity_home(&weak) {
                        if let Some(fold_idx) =
                            scope.find(&bound_binding, &format!("#fold:{weak}"))
                        {
                            return self.unnest_fold_in_place(
                                scope,
                                fold_idx,
                                &weak,
                                &bound_binding,
                                &new_binding,
                                kind,
                            );
                        }
                    }
                }
                let owner_keys: Vec<String> =
                    self.lw.key_columns(&owner)?.into_iter().map(|(n, _)| n).collect();
                // Both sides expose the owner key attributes (the weak
                // side's full key embeds them), so the join condition is
                // symmetric regardless of which end is bound.
                let lk = key_exprs(&scope, &bound_binding, &owner_keys)?;
                let rk = key_exprs(&right, &new_binding, &owner_keys)?;
                Ok(merge_scopes(scope, right, kind, lk, rk))
            }
        }
    }

    /// In-place unnest of a folded weak entity's array column (M5 fast
    /// path): the scope's rows fan out per weak child, and the struct
    /// fields become the weak binding's attribute columns.
    fn unnest_fold_in_place(
        &self,
        scope: Scope,
        fold_idx: usize,
        weak: &str,
        bound_binding: &str,
        new_binding: &str,
        kind: JoinKind,
    ) -> MappingResult<Scope> {
        let es = self.lw.schema.require_entity(weak)?.clone();
        // Duplicate the fold column so other joins can still use it, then
        // unnest the duplicate.
        let mut exprs: Vec<(Expr, String)> = scope
            .plan
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (Expr::Col(i), f.name.clone()))
            .collect();
        exprs.push((Expr::Col(fold_idx), format!("#elem:{weak}")));
        let dup_idx = exprs.len() - 1;
        let Scope { plan, cols: scope_cols, bindings: scope_bindings } = scope;
        let find = |b: &str, a: &str| scope_cols.iter().position(|c| c.binding == b && c.attr == a);
        let plan = plan.project(exprs);
        let plan = match kind {
            JoinKind::Left => plan.unnest_outer(dup_idx)?,
            _ => plan.unnest(dup_idx)?,
        };
        // Extract the struct fields as columns for the weak binding.
        let mut exprs: Vec<(Expr, String)> = plan
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (Expr::Col(i), f.name.clone()))
            .collect();
        let mut cols = scope_cols.clone();
        cols.push(ScopeCol { binding: new_binding.to_string(), attr: format!("#elem:{weak}") });
        // Owner key columns visible under the weak binding too.
        let owner_keys: Vec<String> = self
            .lw
            .key_columns(&es.weak.as_ref().expect("weak").owner)?
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        for k in &owner_keys {
            if let Some(i) = find(bound_binding, k) {
                exprs.push((Expr::Col(i), format!("{new_binding}.{k}")));
                cols.push(ScopeCol { binding: new_binding.to_string(), attr: k.clone() });
            }
        }
        for (fi, a) in es.attributes.iter().enumerate() {
            exprs.push((Expr::field(Expr::Col(dup_idx), fi), a.name.clone()));
            cols.push(ScopeCol { binding: new_binding.to_string(), attr: a.name.clone() });
        }
        let mut bindings = scope_bindings;
        bindings.push((new_binding.to_string(), weak.to_string()));
        Ok(Scope { plan: plan.project(exprs), cols, bindings })
    }

    /// Join the ancestor levels of a co-located entity so that inherited
    /// attributes become visible.
    fn join_new_ancestors(
        &self,
        mut scope: Scope,
        new_binding: &str,
        new_entity: &str,
    ) -> MappingResult<Scope> {
        let chain: Vec<EntitySet> =
            self.lw.schema.ancestry(new_entity)?.into_iter().cloned().collect();
        if chain.len() <= 1 {
            return Ok(scope);
        }
        let key_names: Vec<String> =
            self.lw.key_columns(new_entity)?.into_iter().map(|(n, _)| n).collect();
        for level in chain[..chain.len() - 1].iter().rev() {
            let (level_plan, level_cols) = self.level_access(new_binding, level)?;
            let lk: Vec<Expr> = key_names
                .iter()
                .map(|k| {
                    scope.find(new_binding, k).map(Expr::Col).ok_or_else(|| {
                        MappingError::Binding(format!("key '{k}' not in scope"))
                    })
                })
                .collect::<MappingResult<_>>()?;
            let rk: Vec<Expr> = key_names
                .iter()
                .map(|k| {
                    level_cols
                        .iter()
                        .position(|c| c.attr == *k)
                        .map(Expr::Col)
                        .ok_or_else(|| {
                            MappingError::Binding(format!("key '{k}' missing in level table"))
                        })
                })
                .collect::<MappingResult<_>>()?;
            let level_scope = Scope { plan: level_plan, cols: level_cols, bindings: vec![] };
            scope = merge_scopes(scope, level_scope, JoinKind::Inner, lk, rk);
            dedupe_cols(&mut scope);
        }
        Ok(scope)
    }

    // ---- multi-valued resolution ---------------------------------------------

    /// Find every reference to a side-table multi-valued attribute in the
    /// statement and extend the scope with the columns it needs: an array
    /// column for bare references, a value column for `UNNEST`.
    ///
    /// Fast path: when the query touches a single entity and references
    /// nothing beyond its key and `UNNEST`ed side-table attributes, the
    /// side table(s) are scanned directly and the entity's home table is
    /// never read — the normalized layout's native unnested form, which is
    /// how the paper's M1 wins its unnest experiments (E2/E4).
    fn resolve_multivalued(&self, scope: &mut Scope, stmt: &SelectStmt) -> MappingResult<()> {
        let mut wanted: Vec<(String, String, bool)> = Vec::new(); // (binding, attr, unnest)
        for item in &stmt.items {
            match item {
                SelectItem::Expr { expr, .. } => {
                    self.collect_mv_refs(scope, expr, false, &mut wanted)?
                }
                SelectItem::Nest { items, .. } => {
                    for (e, _) in items {
                        self.collect_mv_refs(scope, e, false, &mut wanted)?;
                    }
                }
                SelectItem::Wildcard { qualifier } => {
                    // Wildcards include multi-valued attributes as arrays.
                    let bindings: Vec<(String, String)> = scope
                        .bindings
                        .iter()
                        .filter(|(b, _)| qualifier.as_deref().map(|q| q == b).unwrap_or(true))
                        .cloned()
                        .collect();
                    for (b, e) in bindings {
                        for level in self.lw.schema.ancestry(&e)? {
                            for a in level.attributes.iter().filter(|a| a.multi_valued) {
                                wanted.push((b.clone(), a.name.clone(), false));
                            }
                        }
                    }
                }
            }
        }
        if let Some(w) = &stmt.where_clause {
            self.collect_mv_refs(scope, w, false, &mut wanted)?;
        }
        for g in &stmt.group_by {
            self.collect_mv_refs(scope, g, false, &mut wanted)?;
        }
        for o in &stmt.order_by {
            self.collect_mv_refs(scope, &o.expr, false, &mut wanted)?;
        }
        wanted.sort();
        wanted.dedup();
        if self.try_side_scan_shortcut(scope, stmt, &wanted)? {
            return Ok(());
        }
        for (binding, attr, unnest) in wanted {
            self.add_mv_column(scope, &binding, &attr, unnest)?;
        }
        Ok(())
    }

    /// Attempt the direct side-table scan described on
    /// [`Self::resolve_multivalued`]. Returns `true` when applied.
    fn try_side_scan_shortcut(
        &self,
        scope: &mut Scope,
        stmt: &SelectStmt,
        wanted: &[(String, String, bool)],
    ) -> MappingResult<bool> {
        if scope.bindings.len() != 1 || !stmt.joins.is_empty() || wanted.is_empty() {
            return Ok(false);
        }
        // Every multi-valued reference must be UNNEST over a side table.
        let (binding, entity) = scope.bindings[0].clone();
        let mut side_tables: Vec<(String, String)> = Vec::new(); // (attr, table)
        for (b, attr, unnest) in wanted {
            if b != &binding || !*unnest {
                return Ok(false);
            }
            let owner = self
                .lw
                .schema
                .ancestry(&entity)?
                .into_iter()
                .find(|l| l.attribute(attr).map(|a| a.multi_valued).unwrap_or(false));
            let Some(owner) = owner else { return Ok(false) };
            match self.lw.mv_home(&owner.name, attr)? {
                MvHome::SideTable { table } => side_tables.push((attr.clone(), table.clone())),
                MvHome::Inline { .. } => return Ok(false),
            }
        }
        // Everything referenced must be a key attribute or a wanted attr.
        let key_names: Vec<String> =
            self.lw.key_columns(&entity)?.into_iter().map(|(n, _)| n).collect();
        let allowed = |name: &str| {
            key_names.iter().any(|k| k == name)
                || wanted.iter().any(|(_, a, _)| a == name)
        };
        let mut refs: Vec<String> = Vec::new();
        collect_column_refs_stmt(stmt, &mut refs);
        if !refs.iter().all(|r| allowed(r)) {
            return Ok(false);
        }
        // Base: scan the first side table; join the rest on the owner key.
        let klen = key_names.len();
        let (first_attr, first_table) = &side_tables[0];
        let mut plan = Plan::scan(self.cat, first_table)?;
        let mut cols: Vec<ScopeCol> = key_names
            .iter()
            .map(|k| ScopeCol { binding: binding.clone(), attr: k.clone() })
            .collect();
        cols.push(ScopeCol { binding: binding.clone(), attr: format!("#unnest:{first_attr}") });
        for (attr, table) in &side_tables[1..] {
            let side = Plan::scan(self.cat, table)?;
            let lk: Vec<Expr> = (0..klen).map(Expr::Col).collect();
            let rk: Vec<Expr> = (0..klen).map(Expr::Col).collect();
            plan = plan.join(side, JoinKind::Inner, lk, rk);
            for i in 0..klen {
                cols.push(ScopeCol { binding: binding.clone(), attr: format!("#sidekey:{table}:{i}") });
            }
            cols.push(ScopeCol { binding: binding.clone(), attr: format!("#unnest:{attr}") });
        }
        scope.plan = plan;
        scope.cols = cols;
        Ok(true)
    }

    fn collect_mv_refs(
        &self,
        scope: &Scope,
        e: &QExpr,
        in_unnest: bool,
        out: &mut Vec<(String, String, bool)>,
    ) -> MappingResult<()> {
        match e {
            QExpr::Column { qualifier, name } => {
                let targets: Vec<(String, String)> = match qualifier {
                    Some(q) => scope
                        .entity_of(q)
                        .map(|ent| vec![(q.clone(), ent.to_string())])
                        .unwrap_or_default(),
                    None => scope.bindings.clone(),
                };
                for (b, ent) in targets {
                    for level in self.lw.schema.ancestry(&ent)? {
                        if let Some(a) = level.attribute(name) {
                            if a.multi_valued {
                                out.push((b.clone(), name.clone(), in_unnest));
                            }
                        }
                    }
                }
                Ok(())
            }
            QExpr::Unnest(inner) => self.collect_mv_refs(scope, inner, true, out),
            QExpr::Lit(_) | QExpr::Param(_) => Ok(()),
            QExpr::FieldAccess { base, .. } => self.collect_mv_refs(scope, base, in_unnest, out),
            QExpr::Binary { left, right, .. } => {
                self.collect_mv_refs(scope, left, in_unnest, out)?;
                self.collect_mv_refs(scope, right, in_unnest, out)
            }
            QExpr::Not(x) | QExpr::Neg(x) => self.collect_mv_refs(scope, x, in_unnest, out),
            QExpr::Agg { arg, .. } => match arg {
                Some(a) => self.collect_mv_refs(scope, a, in_unnest, out),
                None => Ok(()),
            },
            QExpr::Call { args, .. } => {
                for a in args {
                    self.collect_mv_refs(scope, a, in_unnest, out)?;
                }
                Ok(())
            }
            QExpr::InList { expr, .. } => self.collect_mv_refs(scope, expr, in_unnest, out),
            QExpr::IsNull(x) | QExpr::IsNotNull(x) => {
                self.collect_mv_refs(scope, x, in_unnest, out)
            }
        }
    }

    /// Extend the scope with an array column (`unnest == false`) or a
    /// per-value column (`unnest == true`) for one multi-valued attribute.
    fn add_mv_column(
        &self,
        scope: &mut Scope,
        binding: &str,
        attr: &str,
        unnest: bool,
    ) -> MappingResult<()> {
        let target_attr =
            if unnest { format!("#unnest:{attr}") } else { attr.to_string() };
        if scope.find(binding, &target_attr).is_some() {
            return Ok(()); // already resolved (e.g. inline array column)
        }
        let entity = scope
            .entity_of(binding)
            .ok_or_else(|| MappingError::Binding(format!("unknown binding '{binding}'")))?
            .to_string();
        // Which ancestry level owns this attribute?
        let owner_level = self
            .lw
            .schema
            .ancestry(&entity)?
            .into_iter()
            .find(|l| l.attribute(attr).map(|a| a.multi_valued).unwrap_or(false))
            .map(|l| l.name.clone())
            .ok_or_else(|| {
                MappingError::Binding(format!("'{attr}' is not a multi-valued attribute"))
            })?;
        match self.lw.mv_home(&owner_level, attr)?.clone() {
            MvHome::Inline { .. } => {
                // Inline arrays are already visible; only unnest needs work.
                if !unnest {
                    return Ok(());
                }
                let array_idx = scope.find(binding, attr).ok_or_else(|| {
                    MappingError::Binding(format!("inline array '{attr}' missing from scope"))
                })?;
                // Duplicate the array column, then unnest the duplicate so a
                // bare reference to the attribute still sees the array.
                let mut exprs: Vec<(Expr, String)> = scope
                    .plan
                    .fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (Expr::Col(i), f.name.clone()))
                    .collect();
                exprs.push((Expr::Col(array_idx), target_attr.clone()));
                let plan = scope.plan.clone().project(exprs);
                let new_idx = plan.fields.len() - 1;
                scope.plan = plan.unnest(new_idx)?;
                scope.cols.push(ScopeCol { binding: binding.to_string(), attr: target_attr });
                Ok(())
            }
            MvHome::SideTable { table } => {
                let key_names: Vec<String> =
                    self.lw.key_columns(&owner_level)?.into_iter().map(|(n, _)| n).collect();
                let side = Plan::scan(self.cat, &table)?;
                let klen = key_names.len();
                let lk: Vec<Expr> = key_names
                    .iter()
                    .map(|k| {
                        scope.find(binding, k).map(Expr::Col).ok_or_else(|| {
                            MappingError::Binding(format!("key '{k}' not in scope"))
                        })
                    })
                    .collect::<MappingResult<_>>()?;
                if unnest {
                    // Direct join: one row per value — the side table is the
                    // native unnested form.
                    let rk: Vec<Expr> = (0..klen).map(Expr::Col).collect();
                    let offset = scope.plan.fields.len();
                    let value_idx = offset + klen; // key cols then value
                    scope.plan =
                        scope.plan.clone().join(side, JoinKind::Inner, lk, rk);
                    // Register only the value column.
                    for i in offset..scope.plan.fields.len() {
                        let attr_name = if i == value_idx {
                            target_attr.clone()
                        } else {
                            format!("#mvkey:{}:{}", table, i - offset)
                        };
                        scope.cols.push(ScopeCol {
                            binding: binding.to_string(),
                            attr: attr_name,
                        });
                    }
                } else {
                    // Aggregate the side table per owner, then left join so
                    // owners with no values still appear (empty array).
                    let group: Vec<(Expr, String)> = (0..klen)
                        .map(|i| (Expr::Col(i), format!("k{i}")))
                        .collect();
                    let agg = side.aggregate(
                        group,
                        vec![(
                            AggCall::new(AggFunc::ArrayAgg, Expr::Col(klen)),
                            "vals".to_string(),
                        )],
                    );
                    let rk: Vec<Expr> = (0..klen).map(Expr::Col).collect();
                    let offset = scope.plan.fields.len();
                    scope.plan = scope.plan.clone().join(agg, JoinKind::Left, lk, rk);
                    for i in offset..scope.plan.fields.len() {
                        let attr_name = if i == offset + klen {
                            target_attr.clone()
                        } else {
                            format!("#mvkey:{}:{}", table, i - offset)
                        };
                        scope.cols.push(ScopeCol {
                            binding: binding.to_string(),
                            attr: attr_name,
                        });
                    }
                    // A left-join miss leaves NULL; normalize to [] via a
                    // projection? Keep NULL — SQL array_agg over no rows is
                    // NULL too, and extraction treats both as empty.
                }
                Ok(())
            }
        }
    }

    // ---- aggregation ----------------------------------------------------------

    fn build_aggregate(
        &self,
        scope: &Scope,
        stmt: &SelectStmt,
    ) -> MappingResult<(Plan, Vec<String>)> {
        // Classify items.
        enum Slot {
            Group(usize),
            Agg(usize),
        }
        let mut group: Vec<(Expr, String)> = Vec::new();
        let mut aggs: Vec<(AggCall, String)> = Vec::new();
        let mut slots: Vec<Slot> = Vec::new();
        let mut names: Vec<String> = Vec::new();

        if !stmt.group_by.is_empty() {
            for g in &stmt.group_by {
                let e = self.expr(scope, g)?;
                group.push((e, format!("g{}", group.len())));
            }
        }

        for item in &stmt.items {
            match item {
                SelectItem::Wildcard { .. } => {
                    return Err(MappingError::Unsupported(
                        "wildcard select with aggregates".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| item_name(expr));
                    names.push(name.clone());
                    if let QExpr::Agg { func, arg, distinct } = expr {
                        let call = self.agg_call(scope, *func, arg.as_deref(), *distinct)?;
                        slots.push(Slot::Agg(aggs.len()));
                        aggs.push((call, name));
                    } else if expr.contains_aggregate() {
                        return Err(MappingError::Unsupported(
                            "aggregates must be top-level select items".into(),
                        ));
                    } else {
                        let e = self.expr(scope, expr)?;
                        if stmt.group_by.is_empty() {
                            slots.push(Slot::Group(group.len()));
                            group.push((e, name));
                        } else {
                            // Must match an explicit group-by expression.
                            let pos = group
                                .iter()
                                .position(|(ge, _)| *ge == e)
                                .ok_or_else(|| {
                                    MappingError::Binding(format!(
                                        "select item '{name}' is not in GROUP BY"
                                    ))
                                })?;
                            slots.push(Slot::Group(pos));
                        }
                    }
                }
                SelectItem::Nest { items, alias } => {
                    let name = alias.clone().unwrap_or_else(|| "nest".to_string());
                    names.push(name.clone());
                    let packed: Vec<Expr> = items
                        .iter()
                        .map(|(e, _)| self.expr(scope, e))
                        .collect::<MappingResult<_>>()?;
                    let call = AggCall::new(
                        AggFunc::ArrayAgg,
                        Expr::func(ScalarFunc::StructPack, packed),
                    );
                    slots.push(Slot::Agg(aggs.len()));
                    aggs.push((call, name));
                }
            }
        }
        let n_group = group.len();
        let agg_plan = scope.plan.clone().aggregate(group, aggs);
        // Reorder to select order.
        let exprs: Vec<(Expr, String)> = slots
            .iter()
            .zip(names.iter())
            .map(|(slot, name)| {
                let idx = match slot {
                    Slot::Group(i) => *i,
                    Slot::Agg(i) => n_group + *i,
                };
                (Expr::Col(idx), name.clone())
            })
            .collect();
        Ok((agg_plan.project(exprs), names))
    }

    fn agg_call(
        &self,
        scope: &Scope,
        func: QAggFunc,
        arg: Option<&QExpr>,
        distinct: bool,
    ) -> MappingResult<AggCall> {
        let engine_func = match (func, distinct) {
            (QAggFunc::CountStar, _) => return Ok(AggCall::count_star()),
            (QAggFunc::Count, true) => AggFunc::CountDistinct,
            (QAggFunc::Count, false) => AggFunc::Count,
            (QAggFunc::Sum, _) => AggFunc::Sum,
            (QAggFunc::Avg, _) => AggFunc::Avg,
            (QAggFunc::Min, _) => AggFunc::Min,
            (QAggFunc::Max, _) => AggFunc::Max,
            (QAggFunc::ArrayAgg, _) => AggFunc::ArrayAgg,
        };
        let arg = arg.ok_or_else(|| {
            MappingError::Binding("aggregate function requires an argument".into())
        })?;
        Ok(AggCall::new(engine_func, self.expr(scope, arg)?))
    }

    // ---- expression translation ---------------------------------------------------

    fn expr(&self, scope: &Scope, e: &QExpr) -> MappingResult<Expr> {
        match e {
            QExpr::Column { qualifier, name } => {
                let idx = match qualifier {
                    Some(q) => scope.find(q, name).ok_or_else(|| {
                        MappingError::Binding(format!("unknown column '{q}.{name}'"))
                    })?,
                    None => scope.find_unqualified(name)?.ok_or_else(|| {
                        MappingError::Binding(format!("unknown column '{name}'"))
                    })?,
                };
                Ok(Expr::Col(idx))
            }
            QExpr::FieldAccess { base, field } => {
                let base_e = self.expr(scope, base)?;
                let base_t = erbium_engine::plan::infer_type(&base_e, &scope.plan.fields);
                match base_t {
                    DataType::Struct(fields) => {
                        let idx = fields.iter().position(|(n, _)| n == field).ok_or_else(|| {
                            MappingError::Binding(format!("unknown struct field '{field}'"))
                        })?;
                        Ok(Expr::field(base_e, idx))
                    }
                    other => Err(MappingError::Binding(format!(
                        "field access '{field}' on non-composite type {other}"
                    ))),
                }
            }
            QExpr::Lit(l) => Ok(Expr::Lit(lit_value(l))),
            QExpr::Param(n) => Ok(Expr::Param(*n)),
            QExpr::Binary { op, left, right } => Ok(Expr::binary(
                bin_op(*op),
                self.expr(scope, left)?,
                self.expr(scope, right)?,
            )),
            QExpr::Not(x) => Ok(Expr::not(self.expr(scope, x)?)),
            QExpr::Neg(x) => Ok(Expr::Unary {
                op: erbium_engine::UnOp::Neg,
                expr: Box::new(self.expr(scope, x)?),
            }),
            QExpr::Agg { .. } => Err(MappingError::Unsupported(
                "aggregate in a non-aggregate position".into(),
            )),
            QExpr::Call { name, args } => {
                let func = match name.as_str() {
                    "array_contains" => ScalarFunc::ArrayContains,
                    "array_intersect" => ScalarFunc::ArrayIntersect,
                    "array_len" => ScalarFunc::ArrayLen,
                    "coalesce" => ScalarFunc::Coalesce,
                    "concat" => ScalarFunc::Concat,
                    "abs" => ScalarFunc::Abs,
                    "lower" => ScalarFunc::Lower,
                    "upper" => ScalarFunc::Upper,
                    other => {
                        return Err(MappingError::Unsupported(format!(
                            "unknown function '{other}'"
                        )))
                    }
                };
                let args = args
                    .iter()
                    .map(|a| self.expr(scope, a))
                    .collect::<MappingResult<Vec<_>>>()?;
                Ok(Expr::func(func, args))
            }
            QExpr::Unnest(inner) => {
                // Resolved to a dedicated per-value column during
                // resolve_multivalued; find it.
                let QExpr::Column { qualifier, name } = inner.as_ref() else {
                    return Err(MappingError::Unsupported(
                        "UNNEST argument must be a multi-valued attribute reference".into(),
                    ));
                };
                let target = format!("#unnest:{name}");
                let idx = match qualifier {
                    Some(q) => scope.find(q, &target),
                    None => scope
                        .cols
                        .iter()
                        .position(|c| c.attr == target),
                };
                idx.map(Expr::Col).ok_or_else(|| {
                    MappingError::Binding(format!("UNNEST({name}) was not resolved"))
                })
            }
            QExpr::InList { expr, list } => {
                let inner = self.expr(scope, expr)?;
                Ok(Expr::in_set(inner, list.iter().map(lit_value)))
            }
            QExpr::IsNull(x) => Ok(Expr::IsNull(Box::new(self.expr(scope, x)?))),
            QExpr::IsNotNull(x) => Ok(Expr::IsNotNull(Box::new(self.expr(scope, x)?))),
        }
    }

    fn expand_wildcard(
        &self,
        scope: &Scope,
        qualifier: Option<&str>,
    ) -> MappingResult<Vec<(Expr, String)>> {
        // Expand in logical schema order (keys, then ancestry attributes in
        // declaration order) so the output does not depend on the mapping.
        let mut out = Vec::new();
        for (b, entity) in &scope.bindings {
            if let Some(q) = qualifier {
                if b != q {
                    continue;
                }
            }
            let mut attrs: Vec<String> =
                self.lw.key_columns(entity)?.into_iter().map(|(n, _)| n).collect();
            for level in self.lw.schema.ancestry(entity)? {
                for a in &level.attributes {
                    if !attrs.contains(&a.name) {
                        attrs.push(a.name.clone());
                    }
                }
            }
            for attr in attrs {
                let Some(i) = scope.find(b, &attr) else { continue };
                let name = if qualifier.is_some() || scope.bindings.len() == 1 {
                    attr.clone()
                } else {
                    format!("{b}.{attr}")
                };
                out.push((Expr::Col(i), name));
            }
        }
        if out.is_empty() {
            return Err(MappingError::Binding("wildcard expanded to no columns".into()));
        }
        Ok(out)
    }
}

/// Helper used by [`crate::EntityStore`]-level consumers: run an ERQL query string
/// end-to-end under a lowering.
pub fn run_query(
    lw: &Lowering,
    cat: &Catalog,
    sql: &str,
) -> MappingResult<(Vec<Field>, Vec<erbium_storage::Row>)> {
    let stmt = erbium_query::parse_single(sql)
        .map_err(|e| MappingError::Binding(format!("parse error: {e}")))?;
    let erbium_query::Statement::Select(sel) = stmt else {
        return Err(MappingError::Unsupported("run_query expects a SELECT".into()));
    };
    let rewriter = QueryRewriter::new(lw, cat);
    let plan = rewriter.rewrite_optimized(&sel)?;
    // Pull-based streaming execution: operators exchange batches and a
    // LIMIT plan stops pulling (and scanning) as soon as it is satisfied.
    let rows = {
        let mut stream =
            erbium_engine::execute_streaming(&plan, cat, &erbium_engine::ExecContext::default())?;
        stream.drain()?
    };
    Ok((plan.fields, rows))
}

fn merge_scopes(
    left: Scope,
    right: Scope,
    kind: JoinKind,
    lk: Vec<Expr>,
    rk: Vec<Expr>,
) -> Scope {
    let mut bindings = left.bindings.clone();
    for b in &right.bindings {
        if !bindings.contains(b) {
            bindings.push(b.clone());
        }
    }
    let plan = left.plan.join(right.plan, kind, lk, rk);
    let mut cols = left.cols;
    cols.extend(right.cols);
    Scope { plan, cols, bindings }
}

/// After joining a scope with a pair stream that repeats the bound side's
/// columns, mark later duplicates as internal so unqualified resolution
/// stays unambiguous.
fn dedupe_cols(scope: &mut Scope) {
    let mut seen: Vec<(String, String)> = Vec::new();
    for c in scope.cols.iter_mut() {
        let key = (c.binding.clone(), c.attr.clone());
        if seen.contains(&key) {
            c.attr = format!("#dup:{}", c.attr);
        } else {
            seen.push(key);
        }
    }
}

/// Collect every column name referenced anywhere in a statement.
fn collect_column_refs_stmt(stmt: &SelectStmt, out: &mut Vec<String>) {
    for item in &stmt.items {
        match item {
            SelectItem::Expr { expr, .. } => collect_column_refs(expr, out),
            SelectItem::Nest { items, .. } => {
                for (e, _) in items {
                    collect_column_refs(e, out);
                }
            }
            SelectItem::Wildcard { .. } => out.push("*".to_string()),
        }
    }
    if let Some(w) = &stmt.where_clause {
        collect_column_refs(w, out);
    }
    for g in &stmt.group_by {
        collect_column_refs(g, out);
    }
    for o in &stmt.order_by {
        collect_column_refs(&o.expr, out);
    }
}

fn collect_column_refs(e: &QExpr, out: &mut Vec<String>) {
    match e {
        QExpr::Column { name, .. } => out.push(name.clone()),
        QExpr::Lit(_) | QExpr::Param(_) => {}
        QExpr::FieldAccess { base, .. } => collect_column_refs(base, out),
        QExpr::Binary { left, right, .. } => {
            collect_column_refs(left, out);
            collect_column_refs(right, out);
        }
        QExpr::Not(x) | QExpr::Neg(x) | QExpr::Unnest(x) => collect_column_refs(x, out),
        QExpr::Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_column_refs(a, out);
            }
        }
        QExpr::Call { args, .. } => {
            for a in args {
                collect_column_refs(a, out);
            }
        }
        QExpr::InList { expr, .. } => collect_column_refs(expr, out),
        QExpr::IsNull(x) | QExpr::IsNotNull(x) => collect_column_refs(x, out),
    }
}

fn strip_side_name(col: &str, side: Side) -> Option<&str> {
    match side {
        Side::Left => col.strip_prefix("l__"),
        Side::Right => col.strip_prefix("r__"),
    }
}

fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
        Literal::Str(s) => Value::str(s),
    }
}

fn bin_op(op: QBinOp) -> BinOp {
    match op {
        QBinOp::Add => BinOp::Add,
        QBinOp::Sub => BinOp::Sub,
        QBinOp::Mul => BinOp::Mul,
        QBinOp::Div => BinOp::Div,
        QBinOp::Mod => BinOp::Mod,
        QBinOp::Eq => BinOp::Eq,
        QBinOp::Ne => BinOp::Ne,
        QBinOp::Lt => BinOp::Lt,
        QBinOp::Le => BinOp::Le,
        QBinOp::Gt => BinOp::Gt,
        QBinOp::Ge => BinOp::Ge,
        QBinOp::And => BinOp::And,
        QBinOp::Or => BinOp::Or,
    }
}

/// Default output name for a select item.
fn item_name(e: &QExpr) -> String {
    match e {
        QExpr::Column { qualifier: _, name } => name.clone(),
        QExpr::Unnest(inner) => match inner.as_ref() {
            QExpr::Column { name, .. } => name.clone(),
            _ => "unnest".to_string(),
        },
        QExpr::Agg { func, .. } => format!("{func:?}").to_lowercase(),
        QExpr::FieldAccess { field, .. } => field.clone(),
        QExpr::Call { name, .. } => name.clone(),
        _ => "expr".to_string(),
    }
}
