//! Lowering a mapping to physical schemas.
//!
//! [`Lowering::build`] validates a [`Mapping`] against an [`ErSchema`] and
//! computes, for every schema element, *where its data lives*:
//!
//! * [`EntityHome`] — the structure storing an entity set's instances;
//! * [`RelHome`] — the structure storing a relationship's instances;
//! * [`MvHome`] — where each multi-valued attribute lives (inline array
//!   column vs. side table);
//!
//! plus the full physical [`TableSpec`]s. [`Lowering::install`] creates the
//! tables in a [`Catalog`] and persists the schema + mapping as JSON
//! catalog metadata, exactly as the paper's prototype does.

use crate::error::{MappingError, MappingResult};
use crate::fragment::{CoFormat, Fragment, HierarchyLayout, Mapping};
use crate::validate;
use erbium_model::{AttrType, Attribute, ErSchema, Participation, ScalarType};
use erbium_storage::{
    Catalog, Column, DataType, FactorizedTable, IndexKind, Table, TableSchema,
};
use rustc_hash::FxHashMap;

/// Catalog metadata key for the persisted E/R schema.
pub const META_SCHEMA: &str = "er_schema";
/// Catalog metadata key for the persisted mapping.
pub const META_MAPPING: &str = "mapping";

/// The discriminator column added to single-table hierarchies.
pub const TYPE_COL: &str = "_type";

/// Column name for a folded foreign key.
pub fn fk_col(rel: &str, key: &str) -> String {
    format!("{rel}__{key}")
}

/// Column name for a relationship attribute stored beside a foreign key or
/// in a join table.
pub fn rel_attr_col(rel: &str, attr: &str) -> String {
    format!("{rel}__{attr}")
}

/// Column name for a folded weak entity set.
pub fn weak_col(weak: &str) -> String {
    format!("_w_{weak}")
}

/// Column prefix for one side of a denormalized co-located table.
pub fn co_col(side: Side, name: &str) -> String {
    match side {
        Side::Left => format!("l__{name}"),
        Side::Right => format!("r__{name}"),
    }
}

/// Join-table column name for one end's key attribute.
pub fn join_col(end: Side, key: &str) -> String {
    match end {
        Side::Left => format!("from__{key}"),
        Side::Right => format!("to__{key}"),
    }
}

/// Which end of a two-sided structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Where an entity set's instances live.
#[derive(Debug, Clone, PartialEq)]
pub enum EntityHome {
    /// Its own table (delta or full layout).
    Table { table: String, layout: HierarchyLayout },
    /// Merged into a single-table hierarchy (row discriminated by `_type`).
    Merged { table: String, root: String },
    /// Folded into the owner's table as an array-of-struct column.
    FoldedWeak { owner: String, column: String },
    /// One side of a co-located structure.
    CoLocated { table: String, side: Side, format: CoFormat },
}

impl EntityHome {
    /// The physical structure holding this entity's rows.
    pub fn table(&self) -> Option<&str> {
        match self {
            EntityHome::Table { table, .. }
            | EntityHome::Merged { table, .. }
            | EntityHome::CoLocated { table, .. } => Some(table),
            EntityHome::FoldedWeak { .. } => None,
        }
    }
}

/// Where a relationship's instances live.
#[derive(Debug, Clone, PartialEq)]
pub enum RelHome {
    /// Foreign-key columns folded into the many side's home table(s). For
    /// full-layout (disjoint) hierarchies the FK columns appear in every
    /// table of the many side's subtree, since each stores part of the
    /// extent.
    Folded { many_entity: String, one_entity: String },
    /// A join table.
    JoinTable { table: String },
    /// A co-located structure.
    CoLocated { table: String, format: CoFormat },
    /// Identifying relationship of a weak entity set: the owner key is
    /// embedded wherever the weak entity lives.
    ImplicitWeak { weak: String },
}

/// Where a multi-valued attribute lives.
#[derive(Debug, Clone, PartialEq)]
pub enum MvHome {
    Inline { table: String, column: String },
    SideTable { table: String },
}

/// An index to create on a physical table.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSpec {
    pub name: String,
    pub columns: Vec<String>,
    pub kind: IndexKind,
}

/// One physical structure.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSpec {
    Plain { schema: TableSchema, indexes: Vec<IndexSpec> },
    Factorized { name: String, left: TableSchema, right: TableSchema },
}

impl TableSpec {
    pub fn name(&self) -> &str {
        match self {
            TableSpec::Plain { schema, .. } => &schema.name,
            TableSpec::Factorized { name, .. } => name,
        }
    }
}

/// A validated, lowered mapping: homes for every schema element plus the
/// physical table specifications.
#[derive(Debug, Clone)]
pub struct Lowering {
    pub schema: ErSchema,
    pub mapping: Mapping,
    entity_homes: FxHashMap<String, EntityHome>,
    rel_homes: FxHashMap<String, RelHome>,
    mv_homes: FxHashMap<(String, String), MvHome>,
    /// Folded relationships keyed by their many-side entity.
    folds_by_entity: FxHashMap<String, Vec<String>>,
    /// Inline multi-valued attributes keyed by their owning entity.
    inline_by_entity: FxHashMap<String, Vec<String>>,
    pub tables: Vec<TableSpec>,
}

impl Lowering {
    /// Validate the mapping and compute the physical design.
    pub fn build(schema: &ErSchema, mapping: &Mapping) -> MappingResult<Lowering> {
        validate::validate(schema, mapping)?;
        let mut lw = Lowering {
            schema: schema.clone(),
            mapping: mapping.clone(),
            entity_homes: FxHashMap::default(),
            rel_homes: FxHashMap::default(),
            mv_homes: FxHashMap::default(),
            folds_by_entity: FxHashMap::default(),
            inline_by_entity: FxHashMap::default(),
            tables: Vec::new(),
        };
        // Identifying relationships are implicit.
        for e in schema.entities() {
            if let Some(w) = &e.weak {
                lw.rel_homes.insert(
                    w.identifying_relationship.clone(),
                    RelHome::ImplicitWeak { weak: e.name.clone() },
                );
            }
        }
        // Pre-pass: collect folded relationships (keyed by many-side
        // entity) and inline multi-valued attributes (keyed by owner), so
        // full-layout subtree tables can replicate FK and array columns.
        for frag in &mapping.fragments {
            if let Fragment::Entity {
                entity, layout, merged_subclasses, folded_relationships, inline_multivalued, ..
            } = frag
            {
                for r in folded_relationships {
                    let rel = schema.require_relationship(r)?;
                    let many = rel.many_end().ok_or_else(|| {
                        MappingError::InvalidCover(format!(
                            "folded relationship '{r}' is not many-to-one"
                        ))
                    })?;
                    lw.folds_by_entity.entry(many.entity.clone()).or_default().push(r.clone());
                }
                if !inline_multivalued.is_empty() {
                    let mut covered: Vec<String> = match layout {
                        HierarchyLayout::Full => schema
                            .ancestry(entity)?
                            .into_iter()
                            .map(|e| e.name.clone())
                            .collect(),
                        HierarchyLayout::Delta => vec![entity.clone()],
                    };
                    covered.extend(merged_subclasses.iter().cloned());
                    for mv in inline_multivalued {
                        let owner = covered.iter().find(|e| {
                            schema
                                .entity(e)
                                .and_then(|es| es.attribute(mv))
                                .map(|a| a.multi_valued)
                                .unwrap_or(false)
                        });
                        if let Some(owner) = owner {
                            lw.inline_by_entity
                                .entry(owner.clone())
                                .or_default()
                                .push(mv.clone());
                        }
                    }
                }
            }
        }
        for frag in &mapping.fragments {
            lw.lower_fragment(frag)?;
        }
        Ok(lw)
    }

    /// Create all physical structures in the catalog and persist the schema
    /// and mapping as catalog metadata.
    pub fn install(&self, cat: &mut Catalog) -> MappingResult<()> {
        for spec in &self.tables {
            match spec {
                TableSpec::Plain { schema, indexes } => {
                    let mut t = Table::new(schema.clone());
                    for ix in indexes {
                        let cols: Vec<usize> = ix
                            .columns
                            .iter()
                            .map(|c| schema.require_column(c))
                            .collect::<Result<_, _>>()?;
                        t.create_index(ix.name.clone(), cols, ix.kind)?;
                    }
                    cat.create_table(t)?;
                }
                TableSpec::Factorized { name, left, right } => {
                    cat.create_factorized(
                        name.clone(),
                        FactorizedTable::new(name.clone(), left.clone(), right.clone()),
                    )?;
                }
            }
        }
        cat.put_meta_typed(META_SCHEMA, &self.schema)?;
        cat.put_meta(META_MAPPING, self.mapping.to_json());
        Ok(())
    }

    /// Drop all physical structures of this mapping from the catalog.
    pub fn uninstall(&self, cat: &mut Catalog) -> MappingResult<()> {
        for spec in &self.tables {
            match spec {
                TableSpec::Plain { schema, .. } => {
                    cat.drop_table(&schema.name)?;
                }
                TableSpec::Factorized { name, .. } => {
                    cat.drop_factorized(name)?;
                }
            }
        }
        Ok(())
    }

    pub fn entity_home(&self, entity: &str) -> MappingResult<&EntityHome> {
        self.entity_homes
            .get(entity)
            .ok_or_else(|| MappingError::InvalidCover(format!("entity '{entity}' has no home")))
    }

    pub fn rel_home(&self, rel: &str) -> MappingResult<&RelHome> {
        self.rel_homes
            .get(rel)
            .ok_or_else(|| MappingError::InvalidCover(format!("relationship '{rel}' has no home")))
    }

    pub fn mv_home(&self, entity: &str, attr: &str) -> MappingResult<&MvHome> {
        self.mv_homes.get(&(entity.to_string(), attr.to_string())).ok_or_else(|| {
            MappingError::InvalidCover(format!("multi-valued '{entity}.{attr}' has no home"))
        })
    }

    /// Relationships folded as FK columns whose many side is `entity`.
    pub fn folds_of(&self, entity: &str) -> &[String] {
        self.folds_by_entity.get(entity).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Physical schema of a plain table by name.
    pub fn table_schema(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find_map(|s| match s {
            TableSpec::Plain { schema, .. } if schema.name == name => Some(schema),
            _ => None,
        })
    }

    // ---- fragment lowering ---------------------------------------------------

    fn lower_fragment(&mut self, frag: &Fragment) -> MappingResult<()> {
        match frag {
            Fragment::Entity {
                table,
                entity,
                layout,
                merged_subclasses,
                inline_multivalued,
                folded_weak,
                folded_relationships,
            } => {
                // Full-layout tables replicate the FK columns of every
                // relationship folded anywhere in their ancestry, because
                // each disjoint table stores part of the extent.
                let effective_folds: Vec<String> = match layout {
                    HierarchyLayout::Delta => folded_relationships.clone(),
                    HierarchyLayout::Full => {
                        let mut out = Vec::new();
                        for anc in self.schema.ancestry(entity)? {
                            if let Some(folds) = self.folds_by_entity.get(&anc.name) {
                                out.extend(folds.iter().cloned());
                            }
                        }
                        out.sort();
                        out.dedup();
                        out
                    }
                };
                // Full-layout tables likewise replicate inline array
                // columns declared anywhere in their ancestry.
                let effective_inline: Vec<String> = match layout {
                    HierarchyLayout::Delta => inline_multivalued.clone(),
                    HierarchyLayout::Full => {
                        let mut out = inline_multivalued.clone();
                        for anc in self.schema.ancestry(entity)? {
                            if let Some(mvs) = self.inline_by_entity.get(&anc.name) {
                                out.extend(mvs.iter().cloned());
                            }
                        }
                        out.sort();
                        out.dedup();
                        out
                    }
                };
                let (schema_cols, pk) = self.entity_table_columns(
                    entity,
                    *layout,
                    merged_subclasses,
                    &effective_inline,
                    folded_weak,
                    &effective_folds,
                )?;
                // Homes.
                self.entity_homes.insert(
                    entity.clone(),
                    EntityHome::Table { table: table.clone(), layout: *layout },
                );
                for m in merged_subclasses {
                    self.entity_homes.insert(
                        m.clone(),
                        EntityHome::Merged { table: table.clone(), root: entity.clone() },
                    );
                }
                for w in folded_weak {
                    self.entity_homes.insert(
                        w.clone(),
                        EntityHome::FoldedWeak { owner: entity.clone(), column: weak_col(w) },
                    );
                }
                for r in folded_relationships {
                    let rel = self.schema.require_relationship(r)?;
                    let many = rel.many_end().ok_or_else(|| {
                        MappingError::InvalidCover(format!(
                            "folded relationship '{r}' is not many-to-one"
                        ))
                    })?;
                    let one = rel.one_end().expect("many_end implies one_end");
                    self.rel_homes.insert(
                        r.clone(),
                        RelHome::Folded {
                            many_entity: many.entity.clone(),
                            one_entity: one.entity.clone(),
                        },
                    );
                }
                // Multi-valued homes for inline arrays.
                let covered = self.covered_entities(entity, *layout, merged_subclasses)?;
                for ce in &covered {
                    let es = self.schema.require_entity(ce)?;
                    for a in es.attributes.iter().filter(|a| a.multi_valued) {
                        if effective_inline.contains(&a.name) {
                            self.mv_homes.insert(
                                (ce.clone(), a.name.clone()),
                                MvHome::Inline { table: table.clone(), column: a.name.clone() },
                            );
                        }
                    }
                }
                let mut indexes = Vec::new();
                // Folded FKs get hash indexes: the physical pointer the
                // one side needs for reverse navigation.
                for r in &effective_folds {
                    let rel = self.schema.require_relationship(r)?;
                    let one = rel.one_end().expect("validated");
                    let cols: Vec<String> = self
                        .key_columns(&one.entity)?
                        .into_iter()
                        .map(|(k, _)| fk_col(r, &k))
                        .collect();
                    indexes.push(IndexSpec {
                        name: format!("{table}__{r}_fk"),
                        columns: cols,
                        kind: IndexKind::Hash,
                    });
                }
                self.tables.push(TableSpec::Plain {
                    schema: TableSchema::new(table.clone(), schema_cols, pk),
                    indexes,
                });
            }
            Fragment::MultiValued { table, entity, attribute } => {
                let keys = self.key_columns(entity)?;
                let es = self.schema.require_entity(entity)?;
                let attr = es.attribute(attribute).ok_or_else(|| {
                    MappingError::InvalidCover(format!("unknown attribute '{entity}.{attribute}'"))
                })?;
                let mut cols: Vec<Column> =
                    keys.iter().map(|(n, t)| Column::not_null(n.clone(), t.clone())).collect();
                cols.push(Column::new("value", base_datatype(attr)));
                // Deliberately no index on the owner key: mirrors the
                // paper's observation that point lookups on the normalized
                // M1 could not use an index. An ablation bench adds one.
                self.mv_homes.insert(
                    (entity.clone(), attribute.clone()),
                    MvHome::SideTable { table: table.clone() },
                );
                self.tables.push(TableSpec::Plain {
                    schema: TableSchema::new(table.clone(), cols, vec![]),
                    indexes: vec![],
                });
            }
            Fragment::Relationship { table, relationship } => {
                let rel = self.schema.require_relationship(relationship)?;
                let from_keys = self.key_columns(&rel.from.entity)?;
                let to_keys = self.key_columns(&rel.to.entity)?;
                let mut cols: Vec<Column> = Vec::new();
                for (k, t) in &from_keys {
                    cols.push(Column::not_null(join_col(Side::Left, k), t.clone()));
                }
                for (k, t) in &to_keys {
                    cols.push(Column::not_null(join_col(Side::Right, k), t.clone()));
                }
                for a in &rel.attributes {
                    cols.push(Column::new(a.name.clone(), attr_datatype(a)));
                }
                let pk: Vec<usize> = (0..from_keys.len() + to_keys.len()).collect();
                let indexes = vec![
                    IndexSpec {
                        name: format!("{table}__from"),
                        columns: from_keys.iter().map(|(k, _)| join_col(Side::Left, k)).collect(),
                        kind: IndexKind::Hash,
                    },
                    IndexSpec {
                        name: format!("{table}__to"),
                        columns: to_keys.iter().map(|(k, _)| join_col(Side::Right, k)).collect(),
                        kind: IndexKind::Hash,
                    },
                ];
                self.rel_homes
                    .insert(relationship.clone(), RelHome::JoinTable { table: table.clone() });
                self.tables.push(TableSpec::Plain {
                    schema: TableSchema::new(table.clone(), cols, pk),
                    indexes,
                });
            }
            Fragment::CoLocated { table, relationship, format } => {
                let rel = self.schema.require_relationship(relationship)?;
                let left_schema =
                    self.entity_member_schema(&rel.from.entity, &format!("{table}__l"))?;
                let right_schema =
                    self.entity_member_schema(&rel.to.entity, &format!("{table}__r"))?;
                self.entity_homes.insert(
                    rel.from.entity.clone(),
                    EntityHome::CoLocated { table: table.clone(), side: Side::Left, format: *format },
                );
                self.entity_homes.insert(
                    rel.to.entity.clone(),
                    EntityHome::CoLocated { table: table.clone(), side: Side::Right, format: *format },
                );
                self.rel_homes.insert(
                    relationship.clone(),
                    RelHome::CoLocated { table: table.clone(), format: *format },
                );
                match format {
                    CoFormat::Factorized => {
                        self.tables.push(TableSpec::Factorized {
                            name: table.clone(),
                            left: left_schema,
                            right: right_schema,
                        });
                    }
                    CoFormat::Denormalized => {
                        // Materialized full outer join: all columns nullable,
                        // prefixed by side; no primary key.
                        let mut cols = Vec::new();
                        for c in &left_schema.columns {
                            cols.push(Column::new(co_col(Side::Left, &c.name), c.dtype.clone()));
                        }
                        for c in &right_schema.columns {
                            cols.push(Column::new(co_col(Side::Right, &c.name), c.dtype.clone()));
                        }
                        for a in &rel.attributes {
                            cols.push(Column::new(a.name.clone(), attr_datatype(a)));
                        }
                        let mut indexes = Vec::new();
                        let lkeys: Vec<String> = left_schema
                            .primary_key
                            .iter()
                            .map(|&i| co_col(Side::Left, &left_schema.columns[i].name))
                            .collect();
                        let rkeys: Vec<String> = right_schema
                            .primary_key
                            .iter()
                            .map(|&i| co_col(Side::Right, &right_schema.columns[i].name))
                            .collect();
                        indexes.push(IndexSpec {
                            name: format!("{table}__l"),
                            columns: lkeys,
                            kind: IndexKind::Hash,
                        });
                        indexes.push(IndexSpec {
                            name: format!("{table}__r"),
                            columns: rkeys,
                            kind: IndexKind::Hash,
                        });
                        self.tables.push(TableSpec::Plain {
                            schema: TableSchema::new(table.clone(), cols, vec![]),
                            indexes,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Entity sets whose attributes a fragment's table physically stores.
    fn covered_entities(
        &self,
        entity: &str,
        layout: HierarchyLayout,
        merged: &[String],
    ) -> MappingResult<Vec<String>> {
        let mut out: Vec<String> = match layout {
            HierarchyLayout::Full => {
                self.schema.ancestry(entity)?.into_iter().map(|e| e.name.clone()).collect()
            }
            HierarchyLayout::Delta => vec![entity.to_string()],
        };
        out.extend(merged.iter().cloned());
        Ok(out)
    }

    /// Full-key columns (names + storage types) of an entity, owner keys
    /// first for weak entity sets.
    pub fn key_columns(&self, entity: &str) -> MappingResult<Vec<(String, DataType)>> {
        key_columns_of(&self.schema, entity)
    }

    fn entity_table_columns(
        &self,
        entity: &str,
        layout: HierarchyLayout,
        merged: &[String],
        inline_mv: &[String],
        folded_weak: &[String],
        folded_rels: &[String],
    ) -> MappingResult<(Vec<Column>, Vec<usize>)> {
        let keys = self.key_columns(entity)?;
        let key_names: Vec<&str> = keys.iter().map(|(n, _)| n.as_str()).collect();
        let mut cols: Vec<Column> =
            keys.iter().map(|(n, t)| Column::not_null(n.clone(), t.clone())).collect();
        let pk: Vec<usize> = (0..cols.len()).collect();
        if !merged.is_empty() {
            cols.push(Column::not_null(TYPE_COL, DataType::Text));
        }
        let covered = self.covered_entities(entity, layout, merged)?;
        for ce in &covered {
            let es = self.schema.require_entity(ce)?;
            let force_nullable = merged.contains(ce);
            for a in &es.attributes {
                if key_names.contains(&a.name.as_str()) {
                    continue; // already emitted as a key column
                }
                if a.multi_valued && !inline_mv.contains(&a.name) {
                    continue; // lives in a side table
                }
                let dtype = attr_datatype(a);
                if cols.iter().any(|c| c.name == a.name) {
                    return Err(MappingError::InvalidCover(format!(
                        "column name collision on '{}' in table for '{entity}'",
                        a.name
                    )));
                }
                cols.push(if a.optional || force_nullable {
                    Column::new(a.name.clone(), dtype)
                } else {
                    Column::not_null(a.name.clone(), dtype)
                });
            }
        }
        for w in folded_weak {
            let es = self.schema.require_entity(w)?;
            let mut fields: Vec<(String, DataType)> = Vec::new();
            for a in &es.attributes {
                fields.push((a.name.clone(), attr_datatype(a)));
            }
            cols.push(Column::new(
                weak_col(w),
                DataType::Array(Box::new(DataType::Struct(fields))),
            ));
        }
        for r in folded_rels {
            let rel = self.schema.require_relationship(r)?;
            let many = rel.many_end().ok_or_else(|| {
                MappingError::InvalidCover(format!("folded relationship '{r}' is not many-to-one"))
            })?;
            let one = rel.one_end().expect("checked");
            // Total participation keeps the FK NOT NULL — unless the fold
            // was hoisted into a merged single-table hierarchy, where rows
            // of other subclasses legitimately hold NULL.
            let nullable = many.participation == Participation::Partial
                || merged.contains(&many.entity);
            for (k, t) in self.key_columns(&one.entity)? {
                let name = fk_col(r, &k);
                cols.push(if nullable {
                    Column::new(name, t)
                } else {
                    Column::not_null(name, t)
                });
            }
            for a in &rel.attributes {
                cols.push(Column::new(rel_attr_col(r, &a.name), attr_datatype(a)));
            }
        }
        Ok((cols, pk))
    }

    /// Delta-layout schema of one entity, used as the member schema of
    /// co-located structures.
    fn entity_member_schema(&self, entity: &str, name: &str) -> MappingResult<TableSchema> {
        let keys = self.key_columns(entity)?;
        let key_names: Vec<&str> = keys.iter().map(|(n, _)| n.as_str()).collect();
        let mut cols: Vec<Column> =
            keys.iter().map(|(n, t)| Column::not_null(n.clone(), t.clone())).collect();
        let pk: Vec<usize> = (0..cols.len()).collect();
        let es = self.schema.require_entity(entity)?;
        for a in &es.attributes {
            if key_names.contains(&a.name.as_str()) || a.multi_valued {
                continue;
            }
            let dtype = attr_datatype(a);
            cols.push(if a.optional {
                Column::new(a.name.clone(), dtype)
            } else {
                Column::not_null(a.name.clone(), dtype)
            });
        }
        Ok(TableSchema::new(name, cols, pk))
    }
}

/// Storage type of an attribute including multi-valued wrapping.
pub fn attr_datatype(a: &Attribute) -> DataType {
    let base = base_datatype(a);
    if a.multi_valued {
        DataType::Array(Box::new(base))
    } else {
        base
    }
}

/// Storage type of an attribute ignoring the outer multi-valued wrapper.
pub fn base_datatype(a: &Attribute) -> DataType {
    match &a.ty {
        AttrType::Scalar(s) => scalar_datatype(*s),
        AttrType::Composite(fields) => DataType::Struct(
            fields.iter().map(|f| (f.name.clone(), attr_datatype(f))).collect(),
        ),
    }
}

/// Storage type of a model scalar.
pub fn scalar_datatype(s: ScalarType) -> DataType {
    match s {
        ScalarType::Int => DataType::Int,
        ScalarType::Float => DataType::Float,
        ScalarType::Text => DataType::Text,
        ScalarType::Bool => DataType::Bool,
    }
}

/// Full-key columns (names + storage types) of an entity.
pub fn key_columns_of(schema: &ErSchema, entity: &str) -> MappingResult<Vec<(String, DataType)>> {
    let root = schema.hierarchy_root(entity)?;
    let mut out = Vec::new();
    if let Some(w) = &root.weak {
        out.extend(key_columns_of(schema, &w.owner)?);
    }
    for k in &root.key {
        let a = root.attribute(k).ok_or_else(|| {
            MappingError::Model(erbium_model::ModelError::UnknownAttribute {
                owner: root.name.clone(),
                attribute: k.clone(),
            })
        })?;
        out.push((k.clone(), base_datatype(a)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{self, paper};
    use erbium_model::fixtures;

    #[test]
    fn m1_lowering_shapes() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m1(&s)).unwrap();

        let r = lw.table_schema("R").unwrap();
        // r_id key + r_a + r_b + folded r_s FK (no mv columns).
        assert_eq!(r.primary_key, vec![0]);
        assert!(r.column_index("r_mv1").is_none());
        assert!(r.column_index(&fk_col("r_s", "s_id")).is_some());

        let r3 = lw.table_schema("R3").unwrap();
        assert_eq!(r3.columns.len(), 2, "r_id + r3_a delta only");

        let mv = lw.table_schema("R__r_mv1").unwrap();
        assert_eq!(mv.columns.len(), 2);
        assert!(mv.primary_key.is_empty());

        let s1 = lw.table_schema("S1").unwrap();
        assert_eq!(s1.column_index("s_id"), Some(0), "owner key embedded");
        assert_eq!(s1.primary_key, vec![0, 1]);

        let j = lw.table_schema("r2_s1").unwrap();
        assert!(j.column_index("from__r_id").is_some());
        assert!(j.column_index("to__s_id").is_some());
        assert!(j.column_index("to__s1_no").is_some());
    }

    #[test]
    fn m2_arrays_inline() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m2(&s)).unwrap();
        let r = lw.table_schema("R").unwrap();
        assert_eq!(
            r.columns[r.column_index("r_mv1").unwrap()].dtype,
            DataType::Int.array_of()
        );
        assert!(lw.table_schema("R__r_mv1").is_none());
        assert!(matches!(lw.mv_home("R", "r_mv1").unwrap(), MvHome::Inline { .. }));
    }

    #[test]
    fn m3_single_table_with_type() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m3(&s)).unwrap();
        let r = lw.table_schema("R").unwrap();
        assert!(r.column_index(TYPE_COL).is_some());
        assert!(r.column_index("r3_a").is_some());
        assert!(r.columns[r.column_index("r1_a").unwrap()].nullable);
        assert!(lw.table_schema("R3").is_none());
        assert!(matches!(lw.entity_home("R3").unwrap(), EntityHome::Merged { .. }));
    }

    #[test]
    fn m4_full_tables() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m4(&s)).unwrap();
        let r3 = lw.table_schema("R3").unwrap();
        // r_id, r_a, r_b (mv in side tables), r1_a, r1_b, r3_a
        assert!(r3.column_index("r_a").is_some());
        assert!(r3.column_index("r1_b").is_some());
        assert!(r3.column_index("r3_a").is_some());
        assert!(r3.column_index("r2_a").is_none());
    }

    #[test]
    fn m5_folded_weak_columns() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m5(&s).unwrap()).unwrap();
        let st = lw.table_schema("S").unwrap();
        let c = &st.columns[st.column_index(&weak_col("S1")).unwrap()];
        match &c.dtype {
            DataType::Array(inner) => match inner.as_ref() {
                DataType::Struct(fields) => {
                    assert_eq!(fields[0].0, "s1_no");
                }
                other => panic!("expected struct, got {other}"),
            },
            other => panic!("expected array, got {other}"),
        }
        assert!(lw.table_schema("S1").is_none());
        assert!(matches!(lw.entity_home("S1").unwrap(), EntityHome::FoldedWeak { .. }));
    }

    #[test]
    fn m6_factorized_members() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m6(&s, CoFormat::Factorized).unwrap()).unwrap();
        let spec = lw
            .tables
            .iter()
            .find(|t| matches!(t, TableSpec::Factorized { .. }))
            .expect("factorized spec");
        match spec {
            TableSpec::Factorized { left, right, .. } => {
                assert!(left.column_index("r_id").is_some());
                assert!(left.column_index("r2_a").is_some());
                assert!(right.column_index("s_id").is_some());
                assert!(right.column_index("s1_a").is_some());
            }
            _ => unreachable!(),
        }
        assert!(matches!(
            lw.rel_home("r2_s1").unwrap(),
            RelHome::CoLocated { format: CoFormat::Factorized, .. }
        ));
    }

    #[test]
    fn m6_denormalized_prefixed_columns() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m6(&s, CoFormat::Denormalized).unwrap()).unwrap();
        let t = lw.table_schema("r2_s1__co").unwrap();
        assert!(t.column_index("l__r_id").is_some());
        assert!(t.column_index("r__s_id").is_some());
        assert!(t.primary_key.is_empty(), "outer-join rows: no PK");
    }

    #[test]
    fn install_creates_all_tables() {
        let s = fixtures::experiment();
        let lw = Lowering::build(&s, &paper::m1(&s)).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        assert_eq!(cat.table_names().len(), 13);
        assert!(cat.get_meta(META_MAPPING).is_some());
        let back: ErSchema = cat.get_meta_typed(META_SCHEMA).unwrap().unwrap();
        assert_eq!(back, s);
        lw.uninstall(&mut cat).unwrap();
        assert_eq!(cat.table_names().len(), 0);
    }

    #[test]
    fn university_normalized_lowering() {
        let s = fixtures::university();
        let lw = Lowering::build(&s, &presets::normalized(&s)).unwrap();
        let person = lw.table_schema("person").unwrap();
        // Composite address is a struct column in 1NF-with-composites.
        match &person.columns[person.column_index("address").unwrap()].dtype {
            DataType::Struct(fields) => assert_eq!(fields.len(), 2),
            other => panic!("expected struct, got {other}"),
        }
        // phone is multi-valued → side table.
        assert!(person.column_index("phone").is_none());
        assert!(lw.table_schema("person__phone").is_some());
        // student folds advisor.
        let student = lw.table_schema("student").unwrap();
        assert!(student.column_index(&fk_col("advisor", "id")).is_some());
        // weak section embeds course_id.
        let section = lw.table_schema("section").unwrap();
        assert_eq!(section.column_index("course_id"), Some(0));
    }

    #[test]
    fn folded_fk_nullable_tracks_participation() {
        let s = fixtures::university();
        let lw = Lowering::build(&s, &presets::normalized(&s)).unwrap();
        let student = lw.table_schema("student").unwrap();
        let advisor_fk = &student.columns[student.column_index(&fk_col("advisor", "id")).unwrap()];
        assert!(advisor_fk.nullable, "partial participation");
        let instructor = lw.table_schema("instructor").unwrap();
        let dept_fk =
            &instructor.columns[instructor.column_index(&fk_col("member_of", "dept_name")).unwrap()];
        assert!(!dept_fk.nullable, "total participation");
    }
}
