//! Reversibility: the paper's requirement (1) — "the entities and
//! relationships stored in the database must be recoverable" — must hold
//! under EVERY mapping. These tests populate the same logical instance
//! through the CRUD translator under all seven mappings (M1, M2, M3, M4,
//! M5, M6-denormalized, M6-factorized) and assert that extraction recovers
//! identical logical content.

use erbium_mapping::presets::paper;
use erbium_mapping::{CoFormat, EntityData, EntityStore, Lowering, Mapping};
use erbium_model::fixtures;
use erbium_model::ErSchema;
use erbium_storage::{Catalog, Transaction, Value};

fn all_mappings(s: &ErSchema) -> Vec<Mapping> {
    vec![
        paper::m1(s),
        paper::m2(s),
        paper::m3(s),
        paper::m4(s),
        paper::m5(s).unwrap(),
        paper::m6(s, CoFormat::Denormalized).unwrap(),
        paper::m6(s, CoFormat::Factorized).unwrap(),
    ]
}

fn data(pairs: &[(&str, Value)]) -> EntityData {
    pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

fn ints(vals: &[i64]) -> Value {
    Value::Array(vals.iter().map(|&v| Value::Int(v)).collect())
}

/// Populate a small instance of the experiment schema.
fn populate(cat: &mut Catalog, store: &EntityStore<'_>) {
    let mut txn = Transaction::new();
    // S entities.
    for sid in 1..=3i64 {
        store
            .insert(
                cat,
                &mut txn,
                "S",
                &data(&[
                    ("s_id", Value::Int(sid)),
                    ("s_a", Value::str(format!("s{sid}"))),
                    ("s_b", Value::Int(sid * 10)),
                ]),
                &[],
            )
            .unwrap();
    }
    // Weak entities S1 (two per S), S2 (one per S).
    for sid in 1..=3i64 {
        for no in 1..=2i64 {
            store
                .insert(
                    cat,
                    &mut txn,
                    "S1",
                    &data(&[
                        ("s_id", Value::Int(sid)),
                        ("s1_no", Value::Int(no)),
                        ("s1_a", Value::Int(sid * 100 + no)),
                        ("s1_b", Value::str(format!("w{sid}-{no}"))),
                    ]),
                    &[],
                )
                .unwrap();
        }
        store
            .insert(
                cat,
                &mut txn,
                "S2",
                &data(&[
                    ("s_id", Value::Int(sid)),
                    ("s2_no", Value::Int(1)),
                    ("s2_a", Value::str(format!("z{sid}"))),
                ]),
                &[],
            )
            .unwrap();
    }
    // Hierarchy instances: one plain R, one R1, one R2, one R3, one R4.
    let base = |id: i64| {
        data(&[
            ("r_id", Value::Int(id)),
            ("r_a", Value::str(format!("r{id}"))),
            ("r_b", Value::Int(id * 2)),
            ("r_mv1", ints(&[id, id + 1])),
            ("r_mv2", ints(&[id * 7])),
            ("r_mv3", Value::Array(vec![Value::str("x"), Value::str("y")])),
        ])
    };
    let link_s = |sid: i64| vec![("r_s", vec![Value::Int(sid)])];

    store.insert(cat, &mut txn, "R", &base(10), &link_s(1)).unwrap();
    let mut r1 = base(11);
    r1.insert("r1_a".into(), Value::Int(111));
    r1.insert("r1_b".into(), Value::str("one"));
    store.insert(cat, &mut txn, "R1", &r1, &link_s(2)).unwrap();
    let mut r2 = base(12);
    r2.insert("r2_a".into(), Value::Int(222));
    r2.insert("r2_b".into(), Value::str("two"));
    store.insert(cat, &mut txn, "R2", &r2, &link_s(3)).unwrap();
    let mut r3 = base(13);
    r3.insert("r1_a".into(), Value::Int(311));
    r3.insert("r1_b".into(), Value::str("three-one"));
    r3.insert("r3_a".into(), Value::Int(333));
    store.insert(cat, &mut txn, "R3", &r3, &link_s(1)).unwrap();
    let mut r4 = base(14);
    r4.insert("r2_a".into(), Value::Int(422));
    r4.insert("r2_b".into(), Value::str("four-two"));
    r4.insert("r4_a".into(), Value::str("fff"));
    store.insert(cat, &mut txn, "R4", &r4, &link_s(2)).unwrap();

    // Many-to-many links.
    store
        .link(cat, &mut txn, "r2_s1", &[Value::Int(12)], &[Value::Int(1), Value::Int(1)], &EntityData::default())
        .unwrap();
    store
        .link(cat, &mut txn, "r2_s1", &[Value::Int(12)], &[Value::Int(2), Value::Int(2)], &EntityData::default())
        .unwrap();
    store
        .link(cat, &mut txn, "r2_s1", &[Value::Int(14)], &[Value::Int(3), Value::Int(1)], &EntityData::default())
        .unwrap();
    store
        .link(cat, &mut txn, "r1_r3", &[Value::Int(11)], &[Value::Int(13)], &EntityData::default())
        .unwrap();
    txn.commit();
}

/// Canonical form of an extent for comparison: sorted key→sorted attrs.
type CanonRow = Vec<(String, Value)>;

fn canon_entities(store: &EntityStore<'_>, cat: &Catalog, entity: &str) -> Vec<CanonRow> {
    let mut rows: Vec<CanonRow> = store
        .extract_entities(cat, entity)
        .unwrap()
        .into_iter()
        .map(|d| {
            let mut kv: Vec<(String, Value)> = d
                .into_iter()
                .map(|(k, mut v)| {
                    // Multi-valued attributes are sets: order-insensitive.
                    if let Value::Array(vs) = &mut v {
                        vs.sort();
                    }
                    (k, v)
                })
                .collect();
            kv.sort();
            kv
        })
        .collect();
    rows.sort();
    rows
}

type KeyPair = (Vec<Value>, Vec<Value>);

fn canon_rel(store: &EntityStore<'_>, cat: &Catalog, rel: &str) -> Vec<KeyPair> {
    let mut rows: Vec<KeyPair> = store
        .extract_relationship(cat, rel)
        .unwrap()
        .into_iter()
        .map(|i| (i.from_key, i.to_key))
        .collect();
    rows.sort();
    rows
}

#[test]
fn extents_identical_across_all_mappings() {
    let schema = fixtures::experiment();
    let mut reference: Option<Vec<(String, Vec<CanonRow>)>> = None;
    for mapping in all_mappings(&schema) {
        let lw = Lowering::build(&schema, &mapping).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        let store = EntityStore::new(&lw);
        populate(&mut cat, &store);

        let snapshot: Vec<(String, Vec<CanonRow>)> = schema
            .entities()
            .iter()
            .map(|e| (e.name.clone(), canon_entities(&store, &cat, &e.name)))
            .collect();
        match &reference {
            None => reference = Some(snapshot),
            Some(reference) => {
                for ((name, expect), (name2, got)) in reference.iter().zip(snapshot.iter()) {
                    assert_eq!(name, name2);
                    assert_eq!(
                        expect, got,
                        "extent of '{name}' differs under mapping '{}'",
                        mapping.name
                    );
                }
            }
        }
    }
}

#[test]
fn relationships_identical_across_all_mappings() {
    let schema = fixtures::experiment();
    let mut reference: Option<Vec<(String, Vec<KeyPair>)>> = None;
    for mapping in all_mappings(&schema) {
        let lw = Lowering::build(&schema, &mapping).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        let store = EntityStore::new(&lw);
        populate(&mut cat, &store);

        let snapshot: Vec<(String, Vec<KeyPair>)> = schema
            .relationships()
            .iter()
            .map(|r| (r.name.clone(), canon_rel(&store, &cat, &r.name)))
            .collect();
        match &reference {
            None => reference = Some(snapshot),
            Some(reference) => {
                for ((name, expect), (name2, got)) in reference.iter().zip(snapshot.iter()) {
                    assert_eq!(name, name2);
                    assert_eq!(
                        expect, got,
                        "relationship '{name}' differs under mapping '{}'",
                        mapping.name
                    );
                }
            }
        }
    }
}

#[test]
fn get_update_delete_under_each_mapping() {
    let schema = fixtures::experiment();
    for mapping in all_mappings(&schema) {
        let lw = Lowering::build(&schema, &mapping).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        let store = EntityStore::new(&lw);
        populate(&mut cat, &store);
        let m = &mapping.name;

        // get: R3 sees inherited + own attributes.
        let r3 = store.get(&cat, "R3", &[Value::Int(13)]).unwrap().expect("r3 exists");
        assert_eq!(r3.get("r_a"), Some(&Value::str("r13")), "mapping {m}");
        assert_eq!(r3.get("r1_a"), Some(&Value::Int(311)), "mapping {m}");
        assert_eq!(r3.get("r3_a"), Some(&Value::Int(333)), "mapping {m}");
        match r3.get("r_mv1") {
            Some(Value::Array(vs)) => assert_eq!(vs.len(), 2, "mapping {m}"),
            other => panic!("mapping {m}: expected array, got {other:?}"),
        }

        // get at superclass level sees only R attributes but same instance.
        let as_r = store.get(&cat, "R", &[Value::Int(13)]).unwrap().expect("visible as R");
        assert_eq!(as_r.get("r_a"), Some(&Value::str("r13")), "mapping {m}");

        // type_of identifies the most specific type.
        assert_eq!(store.type_of(&cat, "R", &[Value::Int(13)]).unwrap().as_deref(), Some("R3"));
        assert_eq!(store.type_of(&cat, "R", &[Value::Int(10)]).unwrap().as_deref(), Some("R"));

        // update: scalar + multi-valued + weak attribute.
        let mut txn = Transaction::new();
        store
            .update(&mut cat, &mut txn, "R3", &[Value::Int(13)], &data(&[
                ("r_b", Value::Int(999)),
                ("r_mv2", ints(&[1, 2, 3])),
                ("r3_a", Value::Int(42)),
            ]))
            .unwrap();
        store
            .update(&mut cat, &mut txn, "S1", &[Value::Int(1), Value::Int(2)], &data(&[
                ("s1_b", Value::str("updated")),
            ]))
            .unwrap();
        txn.commit();
        let r3 = store.get(&cat, "R3", &[Value::Int(13)]).unwrap().unwrap();
        assert_eq!(r3.get("r_b"), Some(&Value::Int(999)), "mapping {m}");
        assert_eq!(r3.get("r3_a"), Some(&Value::Int(42)), "mapping {m}");
        match r3.get("r_mv2") {
            Some(Value::Array(vs)) => assert_eq!(vs.len(), 3, "mapping {m}"),
            other => panic!("mapping {m}: expected array, got {other:?}"),
        }
        let s1 = store.get(&cat, "S1", &[Value::Int(1), Value::Int(2)]).unwrap().unwrap();
        assert_eq!(s1.get("s1_b"), Some(&Value::str("updated")), "mapping {m}");

        // delete R2 instance 12: hierarchy rows, mv rows, r2_s1 links gone.
        let mut txn = Transaction::new();
        store.delete(&mut cat, &mut txn, "R", &[Value::Int(12)]).unwrap();
        txn.commit();
        assert!(store.get(&cat, "R", &[Value::Int(12)]).unwrap().is_none(), "mapping {m}");
        assert!(store.get(&cat, "R2", &[Value::Int(12)]).unwrap().is_none(), "mapping {m}");
        let links = canon_rel(&store, &cat, "r2_s1");
        assert_eq!(links.len(), 1, "mapping {m}: only R4's link remains: {links:?}");
        // The S1 partners survive the unlink.
        assert!(store.get(&cat, "S1", &[Value::Int(1), Value::Int(1)]).unwrap().is_some());

        // delete S 1 cascades to its weak children and their links.
        let mut txn = Transaction::new();
        store.delete(&mut cat, &mut txn, "S", &[Value::Int(1)]).unwrap();
        txn.commit();
        assert!(store.get(&cat, "S1", &[Value::Int(1), Value::Int(1)]).unwrap().is_none());
        assert!(store.get(&cat, "S2", &[Value::Int(1), Value::Int(1)]).unwrap().is_none());
        // r_s links pointing at S 1 are gone (R 10 and R3 13 were linked).
        let rs = canon_rel(&store, &cat, "r_s");
        assert!(
            rs.iter().all(|(_, to)| to != &vec![Value::Int(1)]),
            "mapping {m}: dangling r_s link to deleted S: {rs:?}"
        );
    }
}

#[test]
fn transaction_rollback_spans_logical_insert() {
    let schema = fixtures::experiment();
    let mapping = paper::m1(&schema);
    let lw = Lowering::build(&schema, &mapping).unwrap();
    let mut cat = Catalog::new();
    lw.install(&mut cat).unwrap();
    let store = EntityStore::new(&lw);

    let mut txn = Transaction::new();
    let mut r3 = data(&[
        ("r_id", Value::Int(1)),
        ("r_a", Value::str("a")),
        ("r_b", Value::Int(1)),
        ("r_mv1", ints(&[1, 2, 3])),
        ("r1_a", Value::Int(1)),
        ("r3_a", Value::Int(3)),
    ]);
    r3.insert("r_mv2".into(), ints(&[]));
    r3.insert("r_mv3".into(), Value::Array(vec![]));
    store.insert(&mut cat, &mut txn, "R3", &r3, &[]).unwrap();
    assert!(txn.len() >= 4, "insert touched root, R1, R3 delta + mv rows");
    txn.rollback(&mut cat).unwrap();
    assert!(store.get(&cat, "R3", &[Value::Int(1)]).unwrap().is_none());
    assert_eq!(cat.table("R").unwrap().len(), 0);
    assert_eq!(cat.table("R__r_mv1").unwrap().len(), 0);
}

#[test]
fn university_roundtrip_normalized_vs_inline() {
    let schema = fixtures::university();
    let m1 = erbium_mapping::presets::normalized(&schema);
    let m2 = erbium_mapping::presets::inline_all_multivalued(
        erbium_mapping::presets::normalized(&schema),
        &schema,
    );
    let mut snapshots = Vec::new();
    for mapping in [m1, m2] {
        let lw = Lowering::build(&schema, &mapping).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        let store = EntityStore::new(&lw);
        let mut txn = Transaction::new();
        store
            .insert(
                &mut cat,
                &mut txn,
                "department",
                &data(&[("dept_name", Value::str("cs")), ("building", Value::str("AVW"))]),
                &[],
            )
            .unwrap();
        store
            .insert(
                &mut cat,
                &mut txn,
                "instructor",
                &data(&[
                    ("id", Value::Int(1)),
                    ("name", Value::str("ada")),
                    (
                        "address",
                        Value::Struct(vec![Value::str("Main St"), Value::str("College Park")]),
                    ),
                    ("phone", Value::Array(vec![Value::str("555-1"), Value::str("555-2")])),
                    ("rank", Value::str("prof")),
                ]),
                &[("member_of", vec![Value::str("cs")])],
            )
            .unwrap();
        store
            .insert(
                &mut cat,
                &mut txn,
                "student",
                &data(&[
                    ("id", Value::Int(2)),
                    ("name", Value::str("bob")),
                    ("phone", Value::Array(vec![])),
                    ("tot_credits", Value::Int(30)),
                ]),
                &[("advisor", vec![Value::Int(1)])],
            )
            .unwrap();
        txn.commit();
        let store_ref = &store;
        let snap: Vec<_> = ["person", "instructor", "student", "department"]
            .iter()
            .map(|e| canon_entities(store_ref, &cat, e))
            .collect();
        let advisors = canon_rel(store_ref, &cat, "advisor");
        snapshots.push((snap, advisors));
    }
    assert_eq!(snapshots[0], snapshots[1]);
}
