//! Logical data independence, tested: the same ERQL query must return the
//! same logical result under every valid mapping — this is the property the
//! whole paper rests on. We run the paper's query shapes (Section 6)
//! against all seven mappings and compare normalized results.

use erbium_mapping::presets::paper;
use erbium_mapping::rewrite::run_query;
use erbium_mapping::{CoFormat, EntityData, EntityStore, Lowering, Mapping};
use erbium_model::fixtures;
use erbium_model::ErSchema;
use erbium_storage::{Catalog, Row, Transaction, Value};

fn all_mappings(s: &ErSchema) -> Vec<Mapping> {
    vec![
        paper::m1(s),
        paper::m2(s),
        paper::m3(s),
        paper::m4(s),
        paper::m5(s).unwrap(),
        paper::m6(s, CoFormat::Denormalized).unwrap(),
        paper::m6(s, CoFormat::Factorized).unwrap(),
    ]
}

fn data(pairs: &[(&str, Value)]) -> EntityData {
    pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

fn ints(vals: &[i64]) -> Value {
    Value::Array(vals.iter().map(|&v| Value::Int(v)).collect())
}

/// Deterministic mid-size instance exercising every schema feature.
fn populate(cat: &mut Catalog, store: &EntityStore<'_>) {
    let mut txn = Transaction::new();
    let n_s = 10i64;
    for sid in 0..n_s {
        store
            .insert(
                cat,
                &mut txn,
                "S",
                &data(&[
                    ("s_id", Value::Int(sid)),
                    ("s_a", Value::str(format!("s{sid}"))),
                    ("s_b", Value::Int(sid % 4)),
                ]),
                &[],
            )
            .unwrap();
        for no in 0..(sid % 3 + 1) {
            store
                .insert(
                    cat,
                    &mut txn,
                    "S1",
                    &data(&[
                        ("s_id", Value::Int(sid)),
                        ("s1_no", Value::Int(no)),
                        ("s1_a", Value::Int(sid * 10 + no)),
                        ("s1_b", Value::str(format!("w{sid}-{no}"))),
                    ]),
                    &[],
                )
                .unwrap();
        }
        if sid % 2 == 0 {
            store
                .insert(
                    cat,
                    &mut txn,
                    "S2",
                    &data(&[
                        ("s_id", Value::Int(sid)),
                        ("s2_no", Value::Int(0)),
                        ("s2_a", Value::str(format!("z{sid}"))),
                    ]),
                    &[],
                )
                .unwrap();
        }
    }
    // 40 hierarchy instances cycling through the five types.
    for i in 0..40i64 {
        let mut d = data(&[
            ("r_id", Value::Int(i)),
            ("r_a", Value::str(format!("r{i}"))),
            ("r_b", Value::Int(i % 7)),
            ("r_mv1", ints(&[i % 5, i % 3 + 10])),
            ("r_mv2", ints(&[i % 5, i % 11 + 20])),
            ("r_mv3", Value::Array(vec![Value::str(format!("t{}", i % 4))])),
        ]);
        let ty = match i % 5 {
            0 => "R",
            1 => {
                d.insert("r1_a".into(), Value::Int(i * 2));
                d.insert("r1_b".into(), Value::str("b1"));
                "R1"
            }
            2 => {
                d.insert("r2_a".into(), Value::Int(i * 3));
                d.insert("r2_b".into(), Value::str("b2"));
                "R2"
            }
            3 => {
                d.insert("r1_a".into(), Value::Int(i * 2));
                d.insert("r1_b".into(), Value::str("b13"));
                d.insert("r3_a".into(), Value::Int(i * 4));
                "R3"
            }
            _ => {
                d.insert("r2_a".into(), Value::Int(i * 3));
                d.insert("r2_b".into(), Value::str("b24"));
                d.insert("r4_a".into(), Value::str(format!("f{i}")));
                "R4"
            }
        };
        let links = vec![("r_s", vec![Value::Int(i % n_s)])];
        store.insert(cat, &mut txn, ty, &d, &links).unwrap();
    }
    // r2_s1 links: each R2/R4 instance to one or two S1 instances.
    for i in (2..40i64).step_by(5) {
        store
            .link(cat, &mut txn, "r2_s1", &[Value::Int(i)], &[Value::Int(i % 10), Value::Int(0)], &EntityData::default())
            .unwrap();
    }
    for i in (4..40i64).step_by(5) {
        store
            .link(cat, &mut txn, "r2_s1", &[Value::Int(i)], &[Value::Int(i % 10), Value::Int(0)], &EntityData::default())
            .unwrap();
        if (i % 10) % 3 != 0 {
            store
                .link(
                    cat,
                    &mut txn,
                    "r2_s1",
                    &[Value::Int(i)],
                    &[Value::Int(i % 10), Value::Int(1)],
                    &EntityData::default(),
                )
                .unwrap();
        }
    }
    // r1_r3 links.
    for i in (1..40i64).step_by(5) {
        let target = ((i + 2) / 5) * 5 + 3;
        if target < 40 {
            store
                .link(cat, &mut txn, "r1_r3", &[Value::Int(i)], &[Value::Int(target)], &EntityData::default())
                .unwrap();
        }
    }
    txn.commit();
}

/// Normalize rows: sort arrays inside values, then sort rows.
fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    fn norm(v: &mut Value) {
        if let Value::Array(vs) = v {
            for x in vs.iter_mut() {
                norm(x);
            }
            vs.sort();
        }
        if let Value::Struct(vs) = v {
            for x in vs.iter_mut() {
                norm(x);
            }
        }
    }
    for r in rows.iter_mut() {
        for v in r.iter_mut() {
            norm(v);
            // Treat NULL arrays (left-join miss) and empty arrays alike.
            if matches!(v, Value::Array(a) if a.is_empty()) {
                *v = Value::Null;
            }
        }
    }
    rows.sort();
    rows
}

/// Run `sql` under every mapping and assert identical canonical results.
/// Returns the reference result for additional assertions.
fn assert_equivalent(sql: &str) -> Vec<Row> {
    let schema = fixtures::experiment();
    let mut reference: Option<(String, Vec<Row>)> = None;
    for mapping in all_mappings(&schema) {
        let lw = Lowering::build(&schema, &mapping).unwrap();
        let mut cat = Catalog::new();
        lw.install(&mut cat).unwrap();
        let store = EntityStore::new(&lw);
        populate(&mut cat, &store);
        let (_, rows) = run_query(&lw, &cat, sql)
            .unwrap_or_else(|e| panic!("mapping {}: query failed: {e}\nsql: {sql}", mapping.name));
        let rows = canon(rows);
        match &reference {
            None => reference = Some((mapping.name.clone(), rows)),
            Some((ref_name, expect)) => {
                assert_eq!(
                    expect, &rows,
                    "query results differ between '{ref_name}' and '{}' for: {sql}",
                    mapping.name
                );
            }
        }
    }
    reference.expect("at least one mapping").1
}

#[test]
fn e1_all_multivalued_attributes() {
    let rows = assert_equivalent("SELECT r.r_id, r.r_mv1, r.r_mv2, r.r_mv3 FROM R r");
    assert_eq!(rows.len(), 40);
}

#[test]
fn e2_unnest_one_attribute() {
    let rows = assert_equivalent("SELECT UNNEST(r.r_mv1) FROM R r");
    assert_eq!(rows.len(), 80, "two values per instance");
}

#[test]
fn e3_point_lookup() {
    let rows = assert_equivalent("SELECT r.r_mv1 FROM R r WHERE r.r_id = 17");
    assert_eq!(rows.len(), 1);
}

#[test]
fn e4_mv_intersection() {
    let rows = assert_equivalent(
        "SELECT r.r_id, UNNEST(r.r_mv1) AS v FROM R r \
         WHERE UNNEST(r.r_mv1) = UNNEST(r.r_mv2)",
    );
    // Every instance has i%5 in both mv1 and mv2.
    assert!(rows.len() >= 40, "at least the shared i%5 value per instance");
}

#[test]
fn e5_subclass_scan() {
    let rows =
        assert_equivalent("SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r");
    assert_eq!(rows.len(), 8);
}

#[test]
fn e6_join_r_s_with_predicates() {
    let rows = assert_equivalent(
        "SELECT r.r_id, s.s_id, s.s_a FROM R r JOIN S s VIA r_s \
         WHERE r.r_b = 2 AND s.s_b = 2",
    );
    assert!(!rows.is_empty());
}

#[test]
fn e7_weak_fetch_by_ids() {
    let rows = assert_equivalent(
        "SELECT s.s_id, s.s_a, w.s1_no, w.s1_a, z.s2_a \
         FROM S s JOIN S1 w VIA s_s1 LEFT JOIN S2 z VIA s_s2 \
         WHERE s.s_id IN (2, 4, 6)",
    );
    assert!(!rows.is_empty());
}

#[test]
fn e8_weak_join_r() {
    let rows = assert_equivalent(
        "SELECT w.s_id, w.s1_no, r.r_id, r.r_a FROM S1 w JOIN R2 r VIA r2_s1",
    );
    assert!(!rows.is_empty());
}

#[test]
fn e9_colocated_join() {
    let rows = assert_equivalent(
        "SELECT r.r_id, r.r2_a, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1 WHERE r.r_b >= 0",
    );
    assert!(!rows.is_empty());
}

#[test]
fn single_table_scan_on_colocated_entity() {
    // The "queries that only involve one of those two tables" case for M6.
    let rows = assert_equivalent("SELECT r.r_id, r.r2_a, r.r2_b FROM R2 r");
    assert_eq!(rows.len(), 16, "R2 + R4 instances");
    // sum over sid of (sid % 3 + 1) children = 19 instances.
    let rows = assert_equivalent("SELECT w.s_id, w.s1_no, w.s1_a FROM S1 w");
    assert_eq!(rows.len(), 19);
}

#[test]
fn superclass_polymorphic_scan() {
    let rows = assert_equivalent("SELECT r.r_id, r.r_a, r.r_b FROM R r WHERE r.r_b = 3");
    assert!(!rows.is_empty());
}

#[test]
fn aggregates_with_inferred_grouping() {
    let rows = assert_equivalent(
        "SELECT s.s_b, COUNT(*) AS n, AVG(r.r_b) AS avg_b \
         FROM S s JOIN R r VIA r_s GROUP BY s.s_b",
    );
    assert_eq!(rows.len(), 4);
    // Inferred grouping gives identical results.
    let rows2 = assert_equivalent(
        "SELECT s.s_b, COUNT(*) AS n, AVG(r.r_b) AS avg_b FROM S s JOIN R r VIA r_s",
    );
    assert_eq!(rows, rows2);
}

#[test]
fn nested_output() {
    let rows = assert_equivalent(
        "SELECT s.s_id, NEST(w.s1_no, w.s1_a) AS children FROM S s JOIN S1 w VIA s_s1",
    );
    assert_eq!(rows.len(), 10);
}

#[test]
fn order_by_and_limit() {
    let rows = assert_equivalent(
        "SELECT r.r_id, r.r_b FROM R r ORDER BY r_b DESC, r_id ASC LIMIT 5",
    );
    assert_eq!(rows.len(), 5);
}

#[test]
fn distinct_projection() {
    let rows = assert_equivalent("SELECT DISTINCT r.r_b FROM R r");
    assert_eq!(rows.len(), 7);
}

#[test]
fn wildcard_includes_multivalued() {
    let rows = assert_equivalent("SELECT * FROM R3 r WHERE r.r_id = 3");
    assert_eq!(rows.len(), 1);
    // r_id, r_a, r_b, 3 mv arrays, r1_a, r1_b, r3_a
    assert_eq!(rows[0].len(), 9);
}

#[test]
fn count_star_over_colocated_relationship() {
    let rows = assert_equivalent(
        "SELECT COUNT(*) AS n FROM R2 r JOIN S1 w VIA r2_s1",
    );
    assert_eq!(rows.len(), 1);
    let n = rows[0][0].as_int().unwrap();
    assert!(n > 0);
}
