//! Plan-shape tests: the rewriter must compile the same ERQL into the
//! physical shapes the paper reasons about — a 3-way join under the
//! normalized mapping, a `_type` filter under the merged mapping, a
//! 2-relation union under disjoint tables, a pointer-following factorized
//! scan under M6, and the direct side-table scan for unnest on M1.

use erbium_engine::{Plan, PlanKind};
use erbium_mapping::presets::paper;
use erbium_mapping::{CoFormat, Lowering, QueryRewriter};
use erbium_model::fixtures;
use erbium_storage::Catalog;

fn plan_for(mapping_name: &str, sql: &str) -> Plan {
    let schema = fixtures::experiment();
    let mapping = match mapping_name {
        "M1" => paper::m1(&schema),
        "M2" => paper::m2(&schema),
        "M3" => paper::m3(&schema),
        "M4" => paper::m4(&schema),
        "M5" => paper::m5(&schema).unwrap(),
        "M6f" => paper::m6(&schema, CoFormat::Factorized).unwrap(),
        other => panic!("unknown {other}"),
    };
    let lw = Lowering::build(&schema, &mapping).unwrap();
    let mut cat = Catalog::new();
    lw.install(&mut cat).unwrap();
    let stmt = erbium_query::parse_single(sql).unwrap();
    let erbium_query::Statement::Select(sel) = stmt else { panic!("expected select") };
    QueryRewriter::new(&lw, &cat).rewrite_optimized(&sel).unwrap()
}

fn count_nodes(plan: &Plan, pred: &dyn Fn(&PlanKind) -> bool) -> usize {
    let mut n = usize::from(pred(&plan.kind));
    match &plan.kind {
        PlanKind::Filter { input, .. }
        | PlanKind::Project { input, .. }
        | PlanKind::Aggregate { input, .. }
        | PlanKind::Unnest { input, .. }
        | PlanKind::Sort { input, .. }
        | PlanKind::Limit { input, .. }
        | PlanKind::Distinct { input } => n += count_nodes(input, pred),
        PlanKind::Join { left, right, .. } => {
            n += count_nodes(left, pred) + count_nodes(right, pred);
        }
        PlanKind::Union { inputs } => {
            for i in inputs {
                n += count_nodes(i, pred);
            }
        }
        _ => {}
    }
    n
}

const E5: &str = "SELECT r.r_id, r.r_a, r.r_b, r.r1_a, r.r1_b, r.r3_a FROM R3 r";

#[test]
fn r3_scan_is_three_way_join_under_m1() {
    let plan = plan_for("M1", E5);
    // R3 delta ⋈ R1 delta ⋈ R root: two join nodes.
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Join { .. })), 2, "{}", plan.explain());
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Scan { .. })), 3);
}

#[test]
fn r3_scan_is_type_filter_under_m3() {
    let plan = plan_for("M3", E5);
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Join { .. })), 0, "{}", plan.explain());
    // Single scan with the _type restriction pushed into it.
    let text = plan.explain();
    assert!(text.contains("IN <set of 1>"), "{text}");
}

#[test]
fn r3_scan_is_single_table_under_m4() {
    let plan = plan_for("M4", E5);
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Join { .. })), 0);
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Union { .. })), 0, "R3 has no subclasses");
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Scan { .. })), 1);
}

#[test]
fn superclass_scan_is_five_way_union_under_m4() {
    // The paper: "M4 requires a 5-relation union".
    let plan = plan_for("M4", "SELECT r.r_id, r.r_a FROM R r");
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Union { .. })), 1);
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Scan { .. })), 5, "{}", plan.explain());
}

#[test]
fn unnest_on_m1_reads_side_table_directly() {
    // The E2 fast path: no entity table in the plan at all.
    let plan = plan_for("M1", "SELECT UNNEST(r.r_mv1) FROM R r");
    let text = plan.explain();
    assert!(text.contains("Scan R__r_mv1"), "{text}");
    assert!(!text.contains("Scan R\n"), "entity table must not be read: {text}");
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Join { .. })), 0);
}

#[test]
fn unnest_on_m2_uses_unnest_operator() {
    let plan = plan_for("M2", "SELECT UNNEST(r.r_mv1) FROM R r");
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Unnest { .. })), 1, "{}", plan.explain());
}

#[test]
fn bare_mv_reference_aggregates_side_table_under_m1() {
    let plan = plan_for("M1", "SELECT r.r_id, r.r_mv1 FROM R r");
    assert!(count_nodes(&plan, &|k| matches!(k, PlanKind::Aggregate { .. })) >= 1, "{}", plan.explain());
    assert!(count_nodes(&plan, &|k| matches!(k, PlanKind::Join { .. })) >= 1);
}

#[test]
fn point_lookup_uses_index_under_m2_not_m1() {
    let q = "SELECT r.r_mv1 FROM R r WHERE r.r_id = 7";
    let m2 = plan_for("M2", q);
    assert!(count_nodes(&m2, &|k| matches!(k, PlanKind::IndexLookup { .. })) >= 1, "{}", m2.explain());
    let m1 = plan_for("M1", q);
    // M1 reaches R by index but must scan the side table (no index there).
    assert!(m1.explain().contains("Scan R__r_mv1"), "{}", m1.explain());
}

#[test]
fn via_join_follows_pointers_under_m6f() {
    let plan = plan_for("M6f", "SELECT r.r_id, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1");
    assert!(
        count_nodes(&plan, &|k| matches!(
            k,
            PlanKind::FactorizedScan { side: erbium_engine::plan::FactorizedSide::Join, .. }
        )) == 1,
        "{}",
        plan.explain()
    );
}

#[test]
fn via_join_uses_join_table_under_m1() {
    let plan = plan_for("M1", "SELECT r.r_id, w.s1_a FROM R2 r JOIN S1 w VIA r2_s1");
    assert!(plan.explain().contains("Scan r2_s1"), "{}", plan.explain());
}

#[test]
fn weak_join_unnests_in_place_under_m5() {
    let plan = plan_for("M5", "SELECT s.s_id, w.s1_a FROM S s JOIN S1 w VIA s_s1");
    // One scan of S, an unnest, no join.
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Join { .. })), 0, "{}", plan.explain());
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Unnest { .. })), 1);
}

#[test]
fn weak_join_is_plain_join_under_m1() {
    let plan = plan_for("M1", "SELECT s.s_id, w.s1_a FROM S s JOIN S1 w VIA s_s1");
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Join { .. })), 1);
    assert_eq!(count_nodes(&plan, &|k| matches!(k, PlanKind::Unnest { .. })), 0);
}
