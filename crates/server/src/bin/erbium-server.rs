//! Standalone ERSP server binary.
//!
//! ```text
//! erbium-server [--addr HOST:PORT] [--data-dir DIR] [--max-in-flight N]
//!               [--queue-depth N] [--idle-timeout-secs N]
//! ```
//!
//! With `--data-dir` the database is durable (WAL + checkpoints in DIR,
//! created if missing); without it the server runs in-memory — define a
//! schema over the wire with `Execute` and it lives for the process.

use erbium_core::{Database, DurabilityOptions};
use erbium_server::{Server, ServerOptions};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:5698".to_string();
    let mut data_dir: Option<String> = None;
    let mut opts = ServerOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--data-dir" => data_dir = Some(value("--data-dir")),
            "--max-in-flight" => opts.max_in_flight = parse_num(&value("--max-in-flight")),
            "--queue-depth" => opts.queue_depth = parse_num(&value("--queue-depth")),
            "--idle-timeout-secs" => {
                opts.idle_timeout = Duration::from_secs(parse_num(&value("--idle-timeout-secs")) as u64)
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: erbium-server [--addr HOST:PORT] [--data-dir DIR] \
                     [--max-in-flight N] [--queue-depth N] [--idle-timeout-secs N]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument '{other}' (see --help)");
                std::process::exit(2);
            }
        }
    }

    let db = match &data_dir {
        Some(dir) => Database::open_with(dir, DurabilityOptions::default())
            .unwrap_or_else(|e| {
                eprintln!("error: open {dir}: {e}");
                std::process::exit(1);
            }),
        None => Database::new(),
    };

    let server = Server::bind(addr.as_str(), db.into_shared(), opts).unwrap_or_else(|e| {
        eprintln!("error: bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "erbium-server listening on {} ({})",
        server.local_addr(),
        data_dir.as_deref().map(|d| format!("durable: {d}")).unwrap_or("in-memory".into())
    );

    // Serve until killed. The acceptor and session threads do the work;
    // this thread just keeps the process alive.
    loop {
        std::thread::park();
    }
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: expected a number, got '{s}'");
        std::process::exit(2);
    })
}
