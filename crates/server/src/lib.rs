//! # erbium-server
//!
//! The ERSP network front end: serves a [`SharedDatabase`] over TCP using
//! the frame protocol defined in [`erbium_client::protocol`].
//!
//! Design (see DESIGN.md §13):
//!
//! * **Thread-per-connection** over blocking sockets — no async runtime
//!   (std-only, like the rest of the workspace). The engine already
//!   parallelizes *inside* a query via its worker pool; connection threads
//!   only do protocol work and block on I/O, so one OS thread per session
//!   is the honest, simple model at this prototype's scale.
//! * **Sessions are `Connection`s.** Each accepted socket gets its own
//!   clone of the [`SharedDatabase`] handle, driven through the very same
//!   [`erbium_core::Connection`] trait the embedded API exposes. The
//!   server is a protocol shim, not a second execution path: `SET` options
//!   live in the clone's session context, prepared statements and pinned
//!   snapshots live in per-session tables, and dropping the connection
//!   drops them all.
//! * **Admission control**: at most `max_in_flight` requests execute
//!   concurrently; up to `queue_depth` more wait their turn; beyond that
//!   the server answers [`DbError::Overloaded`] *without* executing —
//!   load-shedding by refusal, never by unbounded queueing.
//! * **Idle timeout** via socket read timeouts; **graceful drain** stops
//!   the acceptor, lets in-flight requests finish, and wakes idle
//!   connections so their threads exit.

use erbium_client::protocol::{
    read_frame, write_frame, Request, Response, TxOp, WireError, MAX_FRAME, PROTOCOL_VERSION,
};
use erbium_core::{Connection, DbError, PreparedStatement, ReadSession, SharedDatabase, SnapshotReads};
use erbium_model::api::Rows;
use erbium_model::{DbResult, Value};
use std::sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---- metrics -----------------------------------------------------------------

fn m_connections() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_server_connections_total", "Client connections accepted")
    })
}

fn m_active() -> &'static erbium_obs::Gauge {
    static H: std::sync::OnceLock<Arc<erbium_obs::Gauge>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .gauge("erbium_server_active_sessions", "Currently connected sessions")
    })
}

fn m_requests() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global()
            .counter("erbium_server_requests_total", "Requests handled (all kinds)")
    })
}

fn m_overloaded() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_server_overloaded_total",
            "Requests refused by admission control",
        )
    })
}

fn m_frame_errors() -> &'static erbium_obs::Counter {
    static H: std::sync::OnceLock<Arc<erbium_obs::Counter>> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        erbium_obs::Registry::global().counter(
            "erbium_server_frame_errors_total",
            "Connections dropped on malformed frames",
        )
    })
}

// ---- options -----------------------------------------------------------------

/// Server tuning knobs, all with serve-a-benchmark-on-a-laptop defaults.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Requests allowed to execute concurrently before new arrivals queue.
    pub max_in_flight: usize,
    /// Requests allowed to *wait* for an execution slot; arrivals beyond
    /// in-flight + queued are refused with `DbError::Overloaded`.
    pub queue_depth: usize,
    /// Close a session after this long without receiving a frame.
    pub idle_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_in_flight: 32,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(300),
        }
    }
}

// ---- admission control -------------------------------------------------------

/// Bounded two-stage gate: `max_in_flight` executing, `queue_depth`
/// waiting, the rest refused. A condvar semaphore rather than a channel so
/// wakeup order is the lock's (roughly FIFO) and the refusal check is one
/// lock acquisition.
struct Admission {
    state: Mutex<AdmissionState>,
    freed: Condvar,
    max_in_flight: usize,
    queue_depth: usize,
}

struct AdmissionState {
    in_flight: usize,
    queued: usize,
}

struct AdmitGuard<'a> {
    adm: &'a Admission,
}

impl Admission {
    fn new(opts: &ServerOptions) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState { in_flight: 0, queued: 0 }),
            freed: Condvar::new(),
            max_in_flight: opts.max_in_flight.max(1),
            queue_depth: opts.queue_depth,
        }
    }

    /// Acquire an execution slot, waiting in the bounded queue if needed.
    /// `Err` means the queue was full — the caller must refuse the request.
    fn admit(&self) -> Result<AdmitGuard<'_>, ()> {
        let mut st = self.state.lock().unwrap();
        if st.in_flight < self.max_in_flight {
            st.in_flight += 1;
            return Ok(AdmitGuard { adm: self });
        }
        if st.queued >= self.queue_depth {
            return Err(());
        }
        st.queued += 1;
        while st.in_flight >= self.max_in_flight {
            st = self.freed.wait(st).unwrap();
        }
        st.queued -= 1;
        st.in_flight += 1;
        Ok(AdmitGuard { adm: self })
    }
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().unwrap();
        st.in_flight -= 1;
        drop(st);
        self.adm.freed.notify_one();
    }
}

// ---- server ------------------------------------------------------------------

/// Tracks live session threads so drain can wait for them.
struct ActiveSessions {
    count: Mutex<usize>,
    emptied: Condvar,
}

struct ServerShared {
    db: SharedDatabase,
    admission: Admission,
    opts: ServerOptions,
    shutdown: AtomicBool,
    active: ActiveSessions,
    next_session: AtomicU64,
}

/// A running ERSP server. Bind with [`Server::bind`]; stop with
/// [`Server::drain`].
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port — see
    /// [`Server::local_addr`]) and start accepting connections.
    pub fn bind(
        addr: impl std::net::ToSocketAddrs,
        db: SharedDatabase,
        opts: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            db,
            admission: Admission::new(&opts),
            opts,
            shutdown: AtomicBool::new(false),
            active: ActiveSessions { count: Mutex::new(0), emptied: Condvar::new() },
            next_session: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("ersp-acceptor".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn acceptor");
        Ok(Server { shared, addr: local, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected sessions.
    pub fn active_sessions(&self) -> usize {
        *self.shared.active.count.lock().unwrap()
    }

    /// Graceful drain: stop accepting, let every session finish its
    /// current request and disconnect, wait up to `timeout` for the last
    /// one to leave. Returns `true` if the server is fully drained.
    ///
    /// Sessions blocked in a read see the shutdown flag the next time
    /// their socket wakes (next request or read-timeout tick), so a drain
    /// with long-idle clients relies on the idle timeout unless those
    /// clients disconnect — the smoke tests close their clients first,
    /// which is the orderly path.
    pub fn drain(&mut self, timeout: Duration) -> bool {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor with a throwaway connection so it observes
        // the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let mut count = self.shared.active.count.lock().unwrap();
        let deadline = std::time::Instant::now() + timeout;
        while *count > 0 {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break;
            }
            let (next, _) = self.shared.active.emptied.wait_timeout(count, left).unwrap();
            count = next;
        }
        *count == 0
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.drain(Duration::from_secs(1));
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        m_connections().inc();
        let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        let session_shared = Arc::clone(&shared);
        *shared.active.count.lock().unwrap() += 1;
        m_active().add(1);
        let spawned = std::thread::Builder::new()
            .name(format!("ersp-session-{session_id}"))
            .spawn(move || {
                serve_session(stream, session_id, &session_shared);
                let mut count = session_shared.active.count.lock().unwrap();
                *count -= 1;
                if *count == 0 {
                    session_shared.active.emptied.notify_all();
                }
                drop(count);
                m_active().add(-1);
            });
        if spawned.is_err() {
            let mut count = shared.active.count.lock().unwrap();
            *count -= 1;
            drop(count);
            m_active().add(-1);
        }
    }
}

// ---- session -----------------------------------------------------------------

/// Per-connection state: its own `SharedDatabase` clone (= its own session
/// `ExecContext`), plus id-keyed prepared statements and pinned snapshots.
struct Session {
    conn: SharedDatabase,
    prepared: HashMap<u32, PreparedStatement>,
    snapshots: HashMap<u32, SnapshotReads>,
    next_id: u32,
}

fn serve_session(stream: TcpStream, session_id: u64, shared: &ServerShared) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(shared.opts.idle_timeout)).ok();
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    let mut session = Session {
        conn: shared.db.clone(),
        prepared: HashMap::new(),
        snapshots: HashMap::new(),
        next_id: 1,
    };
    let mut greeted = false;

    loop {
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            Err(WireError::Closed) => return,
            Err(WireError::Io(_)) => return, // includes idle timeout
            Err(WireError::Malformed(m)) => {
                // A stream that fails CRC or framing is unsynchronized:
                // report once, then hang up — resynchronizing a byte
                // stream after corruption is guesswork.
                m_frame_errors().inc();
                respond(&mut writer, &Response::from_error(&DbError::Protocol(m)));
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                m_frame_errors().inc();
                respond(&mut writer, &Response::from_error(&DbError::from(e)));
                return;
            }
        };
        m_requests().inc();

        // Handshake must come first and exactly once.
        match (&request, greeted) {
            (Request::Hello { version }, false) => {
                if *version != PROTOCOL_VERSION {
                    respond(
                        &mut writer,
                        &Response::from_error(&DbError::Protocol(format!(
                            "unsupported protocol version {version} (server: {PROTOCOL_VERSION})"
                        ))),
                    );
                    return;
                }
                greeted = true;
                if !respond(
                    &mut writer,
                    &Response::Hello { version: PROTOCOL_VERSION, session_id },
                ) {
                    return;
                }
                continue;
            }
            (Request::Hello { .. }, true) => {
                respond(
                    &mut writer,
                    &Response::from_error(&DbError::Protocol("duplicate Hello".into())),
                );
                return;
            }
            (_, false) => {
                respond(
                    &mut writer,
                    &Response::from_error(&DbError::Protocol(
                        "first message must be Hello".into(),
                    )),
                );
                return;
            }
            _ => {}
        }

        if matches!(request, Request::Close) {
            respond(&mut writer, &Response::Ack);
            return;
        }

        // Admission control guards the execution stage only: decode is
        // cheap and already bounded by MAX_FRAME, the database work is
        // what must not stampede.
        let response = match shared.admission.admit() {
            Ok(_guard) => handle(&mut session, request),
            Err(()) => {
                m_overloaded().inc();
                Response::from_error(&DbError::Overloaded)
            }
        };
        if !respond(&mut writer, &response) {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Draining: finish this response, then close so the client
            // sees an orderly EOF at a frame boundary.
            return;
        }
    }
}

/// Send one response; `false` means the connection is gone.
fn respond(writer: &mut BufWriter<TcpStream>, resp: &Response) -> bool {
    let payload = resp.encode();
    if payload.len() > MAX_FRAME {
        // A result set too large for one frame: report instead of
        // shipping a frame the client is required to reject.
        let err = Response::from_error(&DbError::Protocol(format!(
            "response of {} bytes exceeds the {MAX_FRAME}-byte frame limit",
            payload.len()
        )));
        return write_frame(writer, &err.encode()).is_ok() && writer.flush().is_ok();
    }
    write_frame(writer, &payload).is_ok() && writer.flush().is_ok()
}

fn rows_response(rows: Rows) -> Response {
    Response::Rows { columns: rows.columns, rows: rows.rows }
}

/// Execute one admitted request against the session. Every path funnels
/// through the same [`Connection`] trait the embedded API exposes.
fn handle(session: &mut Session, request: Request) -> Response {
    let outcome: DbResult<Response> = (|| match request {
        Request::Hello { .. } | Request::Close => unreachable!("handled by the session loop"),
        Request::Execute { script } => {
            Connection::execute(&mut session.conn, &script)?;
            Ok(Response::Ack)
        }
        Request::Query { sql, params } => {
            let rows = if params.is_empty() {
                Connection::query(&mut session.conn, &sql)?
            } else {
                Connection::query_params(&mut session.conn, &sql, &params)?
            };
            Ok(rows_response(rows))
        }
        Request::Prepare { sql } => {
            let stmt = Connection::prepare(&mut session.conn, &sql)?;
            let stmt_id = session.next_id;
            session.next_id += 1;
            session.prepared.insert(stmt_id, stmt);
            Ok(Response::Prepared { stmt_id })
        }
        Request::ExecutePrepared { stmt_id, params } => {
            let stmt = session
                .prepared
                .get(&stmt_id)
                .ok_or_else(|| {
                    DbError::Protocol(format!("unknown prepared statement id {stmt_id}"))
                })?
                .clone();
            let rows = Connection::execute_prepared(&mut session.conn, &stmt, &params)?;
            Ok(rows_response(rows))
        }
        Request::Transaction { ops } => {
            Connection::transaction(&mut session.conn, |tx| {
                for op in &ops {
                    apply_tx_op(tx, op)?;
                }
                Ok(())
            })?;
            Ok(Response::Ack)
        }
        Request::PinSnapshot => {
            let snap = Connection::snapshot(&mut session.conn)?;
            let snap_id = session.next_id;
            session.next_id += 1;
            session.snapshots.insert(snap_id, snap);
            Ok(Response::SnapshotPinned { snap_id })
        }
        Request::SnapshotQuery { snap_id, sql, params } => {
            let snap = session.snapshots.get_mut(&snap_id).ok_or_else(|| {
                DbError::Protocol(format!("unknown snapshot id {snap_id}"))
            })?;
            let rows = if params.is_empty() {
                snap.query(&sql)?
            } else {
                snap.query_params(&sql, &params)?
            };
            Ok(rows_response(rows))
        }
        Request::ReleaseSnapshot { snap_id } => {
            session.snapshots.remove(&snap_id).ok_or_else(|| {
                DbError::Protocol(format!("unknown snapshot id {snap_id}"))
            })?;
            Ok(Response::Ack)
        }
        Request::SetOption { key, value } => {
            Connection::set_option(&mut session.conn, &key, &value)?;
            Ok(Response::Ack)
        }
        Request::CacheStats => {
            let stats = Connection::cache_stats(&mut session.conn)?;
            Ok(Response::CacheStats { hits: stats.hits, misses: stats.misses })
        }
    })();
    match outcome {
        Ok(resp) => resp,
        Err(e) => Response::from_error(&e),
    }
}

fn apply_tx_op(tx: &mut dyn erbium_core::TxOps, op: &TxOp) -> DbResult<()> {
    fn borrow(named: &[(String, Value)]) -> Vec<(&str, Value)> {
        named.iter().map(|(k, v)| (k.as_str(), v.clone())).collect()
    }
    match op {
        TxOp::Insert { entity, data } => tx.insert(entity, &borrow(data)),
        TxOp::InsertLinked { entity, data, links } => {
            let links: Vec<(&str, Vec<Value>)> =
                links.iter().map(|(r, k)| (r.as_str(), k.clone())).collect();
            tx.insert_linked(entity, &borrow(data), &links)
        }
        TxOp::UpdateEntity { entity, key, changes } => {
            tx.update_entity(entity, key, &borrow(changes))
        }
        TxOp::DeleteEntity { entity, key } => tx.delete_entity(entity, key),
        TxOp::Link { rel, from, to, attrs } => tx.link(rel, from, to, &borrow(attrs)),
        TxOp::Unlink { rel, from, to } => tx.unlink(rel, from, to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(max_in_flight: usize, queue_depth: usize) -> ServerOptions {
        ServerOptions { max_in_flight, queue_depth, ..ServerOptions::default() }
    }

    #[test]
    fn admission_refuses_beyond_queue_depth() {
        let adm = Admission::new(&opts(2, 0));
        let a = adm.admit().expect("slot 1");
        let b = adm.admit().expect("slot 2");
        // Both slots busy, zero queue: the third must be refused, not
        // blocked — that refusal is what becomes DbError::Overloaded.
        assert!(adm.admit().is_err());
        drop(a);
        let c = adm.admit().expect("freed slot");
        drop(b);
        drop(c);
    }

    #[test]
    fn admission_queues_then_runs_when_a_slot_frees() {
        let adm = Arc::new(Admission::new(&opts(1, 1)));
        let guard = adm.admit().expect("slot");

        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || adm2.admit().map(|_| ()).is_ok());

        // Wait until the waiter is actually parked in the queue, so the
        // refusal below exercises queue-full and not a race.
        while adm.state.lock().unwrap().queued == 0 {
            std::thread::yield_now();
        }
        assert!(adm.admit().is_err(), "queue of 1 is occupied");

        drop(guard); // wakes the waiter
        assert!(waiter.join().unwrap(), "queued request must get the freed slot");
    }

    #[test]
    fn admit_guard_releases_on_drop() {
        let adm = Admission::new(&opts(1, 0));
        for _ in 0..100 {
            let g = adm.admit().expect("slot must be free again after each drop");
            drop(g);
        }
        let st = adm.state.lock().unwrap();
        assert_eq!(st.in_flight, 0);
        assert_eq!(st.queued, 0);
    }
}
