//! End-to-end ERSP: a real [`Server`] on an ephemeral port, driven by
//! [`RemoteClient`] through the same [`Connection`] trait the embedded
//! handles implement. The workload here mirrors
//! `crates/core/tests/connection.rs` on purpose — same shape, different
//! transport — plus wire-only concerns: stable error codes, per-session
//! `SET` isolation across sockets, protocol errors for stale ids, and
//! graceful drain.

use erbium_client::protocol::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use erbium_core::{Connection, Database, DbError, ReadSession, Rows};
use erbium_model::Value;
use erbium_server::{Server, ServerOptions};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const DDL: &str = "
    CREATE ENTITY person (id int KEY, name text, score int);
    CREATE ENTITY mentor EXTENDS person (rank text NULLABLE);
    CREATE RELATIONSHIP guides FROM person MANY TO mentor ONE;
";

fn seeded() -> Database {
    let mut db = Database::new();
    db.execute(DDL).unwrap();
    db.install_default().unwrap();
    for i in 0..50 {
        db.insert(
            "person",
            &[
                ("id", Value::Int(i)),
                ("name", Value::str(format!("p{i}"))),
                ("score", Value::Int(i * 10)),
            ],
        )
        .unwrap();
    }
    db
}

fn serve() -> Server {
    serve_with(ServerOptions::default())
}

fn serve_with(opts: ServerOptions) -> Server {
    Server::bind("127.0.0.1:0", seeded().into_shared(), opts).unwrap()
}

fn client(server: &Server) -> erbium_client::RemoteClient {
    erbium_client::RemoteClient::connect(server.local_addr()).unwrap()
}

/// The identical workload body that `core/tests/connection.rs` runs
/// against `Database` and `SharedDatabase` — here it runs over TCP.
fn workload<C: Connection>(conn: &mut C) {
    conn.transaction(|tx| {
        tx.insert(
            "person",
            &[("id", Value::Int(1000)), ("name", Value::str("tx")), ("score", Value::Int(7))],
        )
    })
    .unwrap();

    let rows = conn.query("SELECT p.name FROM person p WHERE p.id = 1000").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("tx")]]);

    let rows = conn
        .query_params("SELECT p.name FROM person p WHERE p.id = ?", &[Value::Int(1000)])
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("tx")]]);

    let stmt = conn.prepare("SELECT p.score FROM person p WHERE p.id = ?").unwrap();
    let a = conn.execute_prepared(&stmt, &[Value::Int(3)]).unwrap();
    let b = conn.execute_prepared(&stmt, &[Value::Int(4)]).unwrap();
    assert_eq!(a.rows, vec![vec![Value::Int(30)]]);
    assert_eq!(b.rows, vec![vec![Value::Int(40)]]);

    let mut snap = conn.snapshot().unwrap();
    conn.transaction(|tx| tx.delete_entity("person", &[Value::Int(1000)])).unwrap();
    let pinned = snap.query("SELECT p.name FROM person p WHERE p.id = 1000").unwrap();
    assert_eq!(pinned.rows.len(), 1, "snapshot must not see the later delete");
    let live = conn.query("SELECT p.name FROM person p WHERE p.id = 1000").unwrap();
    assert_eq!(live.rows.len(), 0);

    conn.set_option("threads", "1").unwrap();
    conn.set_option("batch_size", "64").unwrap();
    let rows: Rows = conn.query("SELECT COUNT(*) FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
}

#[test]
fn workload_runs_against_remote_client() {
    let server = serve();
    workload(&mut client(&server));
}

#[test]
fn remote_ddl_builds_a_database_from_nothing() {
    // An empty in-memory server, schema'd entirely over the wire — the
    // standalone-binary usage pattern.
    let server =
        Server::bind("127.0.0.1:0", Database::new().into_shared(), ServerOptions::default())
            .unwrap();
    let mut conn = client(&server);
    conn.execute(DDL).unwrap();
    conn.execute("INSTALL MAPPING DEFAULT").unwrap();
    conn.transaction(|tx| {
        tx.insert(
            "person",
            &[("id", Value::Int(1)), ("name", Value::str("ada")), ("score", Value::Int(1))],
        )
    })
    .unwrap();
    let rows = conn.query("SELECT p.name FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("ada")]]);
}

#[test]
fn remote_prepared_statements_hit_the_plan_cache() {
    let server = serve();
    let mut conn = client(&server);

    let before = conn.cache_stats().unwrap();
    let stmt = conn.prepare("SELECT p.name FROM person p WHERE p.score > ?").unwrap();
    const N: u64 = 10;
    for i in 0..N {
        conn.execute_prepared(&stmt, &[Value::Int(i as i64 * 50)]).unwrap();
    }
    let after = conn.cache_stats().unwrap();
    assert_eq!(after.misses - before.misses, 1, "template must plan exactly once");
    assert_eq!(after.hits - before.hits, N, "every wire execute must be a cache hit");
}

#[test]
fn copy_from_bulk_loads_over_the_wire() {
    let server = serve();
    let mut conn = client(&server);
    // One COPY script statement: the whole batch commits as a single
    // transaction server-side (one WAL group, one index pass).
    Connection::execute(
        &mut conn,
        "COPY person (id, name, score) FROM VALUES \
         (2000, 'bulk-a', 1), (2001, 'bulk-b', 2), (2002, 'bulk-c', 3)",
    )
    .unwrap();
    let rows = conn
        .query("SELECT COUNT(*) FROM person p WHERE p.id >= 2000")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(3)]]);
    // A duplicate key anywhere in the batch rejects the whole batch.
    let err = Connection::execute(
        &mut conn,
        "COPY person (id, name, score) FROM VALUES (3000, 'x', 0), (2001, 'dup', 0)",
    )
    .unwrap_err();
    assert!(matches!(err, DbError::Storage(_)), "{err:?}");
    let rows = conn
        .query("SELECT COUNT(*) FROM person p WHERE p.id >= 3000")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(0)]], "batch rolled back atomically");
}

#[test]
fn wire_errors_carry_stable_codes() {
    let server = serve();
    let mut conn = client(&server);

    // A storage failure (duplicate key) crosses the wire as the same
    // variant it was on the server.
    let err = conn
        .transaction(|tx| {
            tx.insert(
                "person",
                &[("id", Value::Int(1)), ("name", Value::str("dup")), ("score", Value::Int(0))],
            )
        })
        .unwrap_err();
    assert!(matches!(err, DbError::Storage(_)), "got {err:?}");
    assert!(err.to_string().contains("duplicate"), "{err}");

    // Mapping errors (prepare pre-validates syntax client-side, but
    // schema binding only the server can do).
    let err = conn.prepare("SELECT x.nope FROM person x WHERE x.id = ?").unwrap_err();
    assert!(matches!(err, DbError::Mapping(_)), "got {err:?}");

    // Parse errors never even reach the server.
    let err = conn.prepare("SELECT FROM WHERE").unwrap_err();
    assert!(matches!(err, DbError::Parse(_)), "got {err:?}");

    // Parameter arity is enforced with the same message as embedded.
    let err = conn
        .query_params("SELECT p.name FROM person p WHERE p.id = ?", &[])
        .unwrap_err();
    assert!(matches!(err, DbError::Engine(_)), "got {err:?}");
    assert!(err.to_string().contains("expects 1 parameter(s), got 0"), "{err}");

    // The session survives every one of those errors.
    let rows = conn.query("SELECT COUNT(*) FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
}

#[test]
fn transactions_are_atomic_over_the_wire() {
    let server = serve();
    let mut conn = client(&server);

    // Second op collides with a seeded key: the whole batch must vanish.
    let err = conn
        .transaction(|tx| {
            tx.insert(
                "person",
                &[("id", Value::Int(2000)), ("name", Value::str("a")), ("score", Value::Int(0))],
            )?;
            tx.insert(
                "person",
                &[("id", Value::Int(3)), ("name", Value::str("dup")), ("score", Value::Int(0))],
            )
        })
        .unwrap_err();
    assert!(matches!(err, DbError::Storage(_)), "got {err:?}");

    let rows = conn.query("SELECT p.name FROM person p WHERE p.id = 2000").unwrap();
    assert!(rows.rows.is_empty(), "failed transaction must leave no trace");
}

#[test]
fn set_option_is_isolated_between_wire_sessions() {
    let server = serve();
    let mut a = client(&server);
    let mut b = client(&server);
    assert_ne!(a.session_id(), b.session_id());

    a.set_option("threads", "1").unwrap();
    a.set_option("columnar", "off").unwrap();

    // Both sessions still answer correctly; B runs with defaults — the
    // override lives in A's server-side session, not in shared state.
    for conn in [&mut a, &mut b] {
        let rows = conn.query("SELECT COUNT(*) FROM person p").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
    }

    // Bad keys/values are rejected with a Parse error built server-side
    // and reconstructed from its wire code.
    let err = a.set_option("wal_voodoo", "1").unwrap_err();
    assert!(matches!(err, DbError::Parse(_)), "got {err:?}");
    let err = b.set_option("threads", "0").unwrap_err();
    assert!(matches!(err, DbError::Parse(_)), "got {err:?}");
}

#[test]
fn snapshots_use_a_dedicated_connection_and_release_cleanly() {
    let server = serve();
    let mut conn = client(&server);

    let mut snap = conn.snapshot().unwrap();
    // Snapshot reads and live queries interleave freely (separate sockets).
    for i in 0..3 {
        let pinned = snap
            .query_params("SELECT p.name FROM person p WHERE p.id = ?", &[Value::Int(i)])
            .unwrap();
        assert_eq!(pinned.rows, vec![vec![Value::str(format!("p{i}"))]]);
        let live = conn.query("SELECT COUNT(*) FROM person p").unwrap();
        assert_eq!(live.rows, vec![vec![Value::Int(50)]]);
    }
    drop(snap); // releases the pin and its socket

    let rows = conn.query("SELECT COUNT(*) FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
}

// ---- raw-protocol cases (things RemoteClient cannot be made to send) --------

/// A minimal hand-rolled ERSP client for sending requests the real client
/// refuses to construct.
struct RawConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RawConn {
    fn dial(addr: SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        RawConn { reader, writer: BufWriter::new(stream) }
    }

    fn call(&mut self, req: &Request) -> Response {
        write_frame(&mut self.writer, &req.encode()).unwrap();
        self.writer.flush().unwrap();
        Response::decode(&read_frame(&mut self.reader).unwrap()).unwrap()
    }
}

#[test]
fn unknown_ids_are_protocol_errors() {
    let server = serve();
    let mut raw = RawConn::dial(server.local_addr());
    assert!(matches!(
        raw.call(&Request::Hello { version: PROTOCOL_VERSION }),
        Response::Hello { .. }
    ));

    let resp = raw.call(&Request::ExecutePrepared { stmt_id: 999, params: vec![] });
    match resp {
        Response::Error { code, message } => {
            assert!(matches!(DbError::from_wire(code, message), DbError::Protocol(_)));
        }
        other => panic!("expected Error, got {other:?}"),
    }

    let resp = raw.call(&Request::SnapshotQuery {
        snap_id: 7,
        sql: "SELECT p.id FROM person p".into(),
        params: vec![],
    });
    assert!(matches!(resp, Response::Error { .. }));

    // The session is still usable after both protocol errors.
    let resp = raw.call(&Request::Query {
        sql: "SELECT COUNT(*) FROM person p".into(),
        params: vec![],
    });
    assert!(matches!(resp, Response::Rows { .. }));
}

#[test]
fn handshake_is_required_and_unrepeatable() {
    let server = serve();

    // A request before Hello is refused and the connection closed.
    let mut raw = RawConn::dial(server.local_addr());
    let resp = raw.call(&Request::Query { sql: "SELECT 1".into(), params: vec![] });
    assert!(matches!(resp, Response::Error { .. }), "got {resp:?}");

    // A second Hello on a greeted session likewise.
    let mut raw = RawConn::dial(server.local_addr());
    raw.call(&Request::Hello { version: PROTOCOL_VERSION });
    let resp = raw.call(&Request::Hello { version: PROTOCOL_VERSION });
    assert!(matches!(resp, Response::Error { .. }), "got {resp:?}");

    // A future protocol version is told the server's version and refused.
    let mut raw = RawConn::dial(server.local_addr());
    let resp = raw.call(&Request::Hello { version: PROTOCOL_VERSION + 40 });
    match resp {
        Response::Error { code, message } => {
            let err = DbError::from_wire(code, message);
            assert!(matches!(err, DbError::Protocol(_)), "got {err:?}");
            assert!(err.to_string().contains("version"), "{err}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn abrupt_disconnect_leaves_the_server_healthy() {
    let server = serve();
    // Drop sockets at every awkward stage: before Hello, after Hello,
    // mid-session with a prepared statement and a pinned snapshot held.
    drop(TcpStream::connect(server.local_addr()).unwrap());
    {
        let mut raw = RawConn::dial(server.local_addr());
        raw.call(&Request::Hello { version: PROTOCOL_VERSION });
        // dropped without Close
    }
    {
        let mut conn = client(&server);
        let _stmt = conn.prepare("SELECT p.id FROM person p WHERE p.id = ?").unwrap();
        let _snap = conn.snapshot().unwrap();
        // client and snapshot dropped; Drop impls say goodbye, but the
        // server must also survive if those frames never arrive
    }
    let mut conn = client(&server);
    let rows = conn.query("SELECT COUNT(*) FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
}

#[test]
fn drain_stops_accepting_and_reports_empty() {
    let mut server = serve();
    let addr = server.local_addr();

    let mut a = client(&server);
    let mut b = client(&server);
    let rows = Connection::query(&mut a, "SELECT COUNT(*) FROM person p").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
    Connection::query(&mut b, "SELECT COUNT(*) FROM person p").unwrap();

    // Orderly path: clients leave, then drain observes an empty house.
    drop(a);
    drop(b);
    assert!(server.drain(Duration::from_secs(10)), "drain must complete once clients left");
    assert_eq!(server.active_sessions(), 0);

    // Post-drain the port no longer serves ERSP: either the connection is
    // refused outright or the accepted socket is closed without a session.
    assert!(erbium_client::RemoteClient::connect(addr).is_err());
}
