//! Adversarial framing: a live server fed truncated, bit-flipped,
//! oversized, and garbage frames must answer with a clean protocol error
//! or hang up — never panic, never wedge — and must keep serving
//! well-behaved clients afterwards. Every property here drives a real
//! socket against a real [`Server`]; the post-case health check is the
//! actual assertion that nothing inside it broke.

use erbium_client::protocol::{
    crc32, read_frame, write_frame, Request, Response, WireError, MAX_FRAME, PROTOCOL_VERSION,
};
use erbium_client::RemoteClient;
use erbium_core::{Connection, Database};
use erbium_server::{Server, ServerOptions};
use proptest::prelude::*;
use proptest::collection::vec as pvec;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// One server for the whole test binary: surviving every case below *is*
/// the property. Short idle timeout so wedged sessions can't pile up.
fn server_addr() -> SocketAddr {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let mut db = Database::new();
            db.execute("CREATE ENTITY item (id int KEY, label text);").unwrap();
            db.install_default().unwrap();
            db.insert(
                "item",
                &[("id", erbium_core::Value::Int(1)), ("label", erbium_core::Value::str("x"))],
            )
            .unwrap();
            let opts = ServerOptions { idle_timeout: Duration::from_secs(5), ..Default::default() };
            Server::bind("127.0.0.1:0", db.into_shared(), opts).unwrap()
        })
        .local_addr()
}

/// Write raw bytes, close our write half, then read whatever the server
/// sends until EOF. Shutting down the write half means a server waiting
/// for the rest of a frame sees EOF immediately instead of sitting out
/// its idle timeout, so every case resolves promptly.
fn send_raw(bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(bytes).unwrap();
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Write).ok();
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf); // a reset instead of EOF is also a clean hangup
    buf
}

/// The server may reply with any number of complete, well-formed frames
/// before hanging up — but whatever bytes it sends must parse as exactly
/// that. Trailing partial frames or undecodable responses fail the test.
fn assert_clean_reply(bytes: &[u8]) {
    let mut cursor = bytes;
    while !cursor.is_empty() {
        let payload = match read_frame(&mut cursor) {
            Ok(p) => p,
            Err(e) => panic!("server sent a malformed frame: {e:?} (raw reply: {bytes:?})"),
        };
        Response::decode(&payload).expect("server frame must decode as a Response");
    }
}

/// A fresh well-behaved client still gets real service.
fn assert_server_healthy() {
    let mut conn = RemoteClient::connect(server_addr()).unwrap();
    let rows = conn.query("SELECT COUNT(*) FROM item i").unwrap();
    assert_eq!(rows.rows, vec![vec![erbium_core::Value::Int(1)]]);
}

fn hello_frame() -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, &Request::Hello { version: PROTOCOL_VERSION }.encode()).unwrap();
    out
}

fn query_frame() -> Vec<u8> {
    let mut out = Vec::new();
    let req = Request::Query { sql: "SELECT i.id FROM item i".into(), params: vec![] };
    write_frame(&mut out, &req.encode()).unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_garbage_never_panics_the_server(bytes in pvec(proptest::any::<u8>(), 0..256)) {
        let reply = send_raw(&bytes);
        assert_clean_reply(&reply);
        assert_server_healthy();
    }

    #[test]
    fn truncated_handshake_frames_disconnect_cleanly(cut in 0usize..1) {
        // `cut` is re-derived per case from the frame length; the strategy
        // argument only varies the seed position.
        let frame = hello_frame();
        let cut = cut + 1; // never empty, never whole
        for cut_at in [cut % (frame.len() - 1) + 1, frame.len() / 2, frame.len() - 1] {
            let reply = send_raw(&frame[..cut_at]);
            assert_clean_reply(&reply);
        }
        assert_server_healthy();
    }

    #[test]
    fn bit_flips_are_rejected_not_executed(flip_byte in 0usize..1000, flip_bit in 0u8..8) {
        let mut frame = hello_frame();
        frame.extend_from_slice(&query_frame());
        let idx = flip_byte % frame.len();
        frame[idx] ^= 1 << flip_bit;

        let reply = send_raw(&frame);
        assert_clean_reply(&reply);
        assert_server_healthy();
    }

    #[test]
    fn oversized_length_headers_are_refused_without_allocating(extra in 1u64..u32::MAX as u64) {
        // A header claiming MAX_FRAME+1..=u32::MAX bytes: the server must
        // refuse from the 8 header bytes alone (read_frame checks the
        // length before any payload allocation, so a lying header can't
        // be used to balloon memory).
        let len = (MAX_FRAME as u64 + extra).min(u32::MAX as u64) as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        let reply = send_raw(&bytes);
        assert_clean_reply(&reply);
        prop_assert!(!reply.is_empty(), "a lying length header deserves an error frame");
        assert_server_healthy();
    }

    #[test]
    fn garbage_after_valid_traffic_is_contained(bytes in pvec(proptest::any::<u8>(), 1..64)) {
        // A session that was perfectly healthy (Hello + Query) and then
        // goes bad: the good frames are answered, the corruption is
        // answered with an error or a hangup, and the server moves on.
        let mut stream = TcpStream::connect(server_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&hello_frame()).unwrap();
        stream.write_all(&query_frame()).unwrap();
        stream.flush().unwrap();

        // Read the two well-formed replies while the stream is still good.
        let mut reader = stream.try_clone().unwrap();
        let hello = Response::decode(&read_frame(&mut reader).unwrap()).unwrap();
        prop_assert!(matches!(hello, Response::Hello { .. }));
        let rows = Response::decode(&read_frame(&mut reader).unwrap()).unwrap();
        prop_assert!(matches!(rows, Response::Rows { .. }));

        // Now poison the stream. A correctly-framed garbage payload is
        // also fair game: CRC passes, Request::decode must refuse it.
        let mut poison = Vec::new();
        poison.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        poison.extend_from_slice(&crc32(&bytes).to_le_bytes());
        poison.extend_from_slice(&bytes);
        stream.write_all(&poison).unwrap();
        stream.flush().unwrap();
        stream.shutdown(Shutdown::Write).ok();

        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
        assert_clean_reply(&rest);
        assert_server_healthy();
    }
}

/// Not a property, but it belongs with the adversaries: the absolute
/// maximum legal frame is either served or refused in bounded memory,
/// and the session/connection ends in a defined state.
#[test]
fn max_frame_boundary_is_exact() {
    // len == MAX_FRAME must be accepted by framing (payload then fails
    // request decode — it's zeros — which is a clean protocol error).
    let payload = vec![0u8; MAX_FRAME];
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let reply = send_raw(&bytes);
    assert_clean_reply(&reply);
    assert!(!reply.is_empty(), "an in-bounds frame with a bad request gets an error frame");

    // len == MAX_FRAME + 1 must be rejected from the header alone.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    let reply = send_raw(&bytes);
    assert_clean_reply(&reply);
    assert_server_healthy();
}

/// The client-side mirror: a client that receives garbage instead of a
/// response errors cleanly rather than panicking or misreading.
#[test]
fn client_rejects_garbage_replies() {
    use std::net::TcpListener;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_server = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut reader = sock.try_clone().unwrap();
        let _ = read_frame(&mut reader); // swallow the Hello
        sock.write_all(b"\xFF\xFE not a frame at all \x00\x00").unwrap();
        sock.flush().unwrap();
        sock.shutdown(Shutdown::Both).ok();
    });
    let err = match RemoteClient::connect(addr) {
        Err(e) => e,
        Ok(_) => panic!("handshake against a garbage-spewing server must fail"),
    };
    let is_clean = matches!(
        err,
        erbium_core::DbError::Protocol(_)
            | erbium_core::DbError::Connection(_)
            | erbium_core::DbError::Internal(_)
    );
    assert!(is_clean, "client must fail with a wire error, got {err:?}");
    fake_server.join().unwrap();
}

/// WireError itself distinguishes orderly EOF from mid-frame truncation —
/// the server relies on that to tell "client left" from "stream broke".
#[test]
fn eof_classification_matches_reality() {
    let empty: &[u8] = &[];
    assert!(matches!(read_frame(&mut &empty[..]), Err(WireError::Closed)));

    let frame = hello_frame();
    let truncated = &frame[..frame.len() - 1];
    assert!(matches!(read_frame(&mut &truncated[..]), Err(WireError::Io(_) | WireError::Malformed(_))));
}
