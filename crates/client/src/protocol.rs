//! ERSP — the E/R Server Protocol.
//!
//! A length-framed, checksummed binary protocol over any `Read`/`Write`
//! byte stream (in practice TCP). Both peers exchange *frames*:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! `len` counts payload bytes only; `crc32` is the IEEE CRC-32 of the
//! payload, so a bit flip anywhere in the body is detected before the
//! payload is decoded (the header itself is covered indirectly: a
//! corrupted `len` misaligns the stream and the next CRC check fails, a
//! corrupted CRC fails immediately). Frames larger than [`MAX_FRAME`] are
//! rejected without allocating — a garbage length can't OOM the peer.
//!
//! The payload is one [`Request`] or [`Response`] message in a hand-rolled
//! tag-prefixed little-endian encoding (no serde on the wire: the format
//! is frozen by `PROTOCOL_VERSION`, not by Rust type layout). Every
//! [`Value`] round-trips losslessly, including nested arrays and structs.
//!
//! This module is deliberately I/O-agnostic and panic-free: malformed
//! input of any shape yields [`WireError`], never a panic — the server
//! feeds it bytes from the network, and the frame-robustness property
//! suite (crates/server/tests) hammers exactly that contract.

use erbium_model::{DbError, Value};
use std::io::{Read, Write};

/// Protocol version exchanged in the `Hello` handshake. Bump on any wire
/// format change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload (16 MiB). Large enough for any sane
/// result set in this prototype; small enough that a corrupted length
/// field cannot trigger a giant allocation.
pub const MAX_FRAME: usize = 16 << 20;

// ---- CRC-32 (IEEE 802.3, reflected) -----------------------------------------
//
// Reimplemented here rather than reusing the WAL's copy: the client crate
// must not depend on erbium-storage. Same polynomial, so nothing is
// gained by sharing it anyway.

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// IEEE CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- errors -----------------------------------------------------------------

/// Anything that can go wrong between the socket and a decoded message.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure (includes clean EOF mid-frame and read timeouts).
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary — the one
    /// *orderly* way a stream ends.
    Closed,
    /// Structurally invalid bytes: bad CRC, oversized length, truncated or
    /// trailing payload, unknown tags.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<WireError> for DbError {
    fn from(e: WireError) -> DbError {
        match e {
            WireError::Io(io) => DbError::Connection(io.to_string()),
            WireError::Closed => DbError::Connection("connection closed by peer".into()),
            WireError::Malformed(m) => DbError::Protocol(m),
        }
    }
}

// ---- framing ----------------------------------------------------------------

/// Write one frame: header (length + CRC) and payload, no flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame and verify its checksum. Returns [`WireError::Closed`]
/// on EOF at a frame boundary (the peer hung up cleanly), `Malformed` on
/// oversized length or CRC mismatch, `Io` on everything else including
/// EOF mid-frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 8];
    // Distinguish "no more frames" from "frame cut short": EOF on the
    // very first header byte is a clean close.
    match r.read(&mut header[..1])? {
        0 => return Err(WireError::Closed),
        1 => {}
        _ => unreachable!(),
    }
    r.read_exact(&mut header[1..])?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "frame length {len} exceeds maximum {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let actual = crc32(&payload);
    if actual != crc {
        return Err(WireError::Malformed(format!(
            "crc mismatch: header says {crc:#010x}, payload hashes to {actual:#010x}"
        )));
    }
    Ok(payload)
}

// ---- primitive encoding ------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over a received payload. All `take_*` methods are bounds-checked
/// — decoding attacker-controlled bytes must fail with an error, never
/// slice out of range.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, WireError>;

fn bad<T>(what: &str) -> DecodeResult<T> {
    Err(WireError::Malformed(what.to_string()))
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let end = match self.pos.checked_add(n) {
            Some(e) if e <= self.buf.len() => e,
            _ => return bad("truncated payload"),
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn take_u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn take_u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn take_u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn take_str(&mut self) -> DecodeResult<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => bad("string is not valid UTF-8"),
        }
    }

    /// A collection length. Bounded by what could physically fit in the
    /// remaining payload so a corrupt count can't pre-allocate gigabytes.
    fn take_len(&mut self) -> DecodeResult<usize> {
        let n = self.take_u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return bad("collection length exceeds payload");
        }
        Ok(n)
    }

    fn finish(&self) -> DecodeResult<()> {
        if self.pos != self.buf.len() {
            return bad("trailing bytes after message");
        }
        Ok(())
    }
}

// ---- Value codec -------------------------------------------------------------

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;
const V_ARRAY: u8 = 5;
const V_STRUCT: u8 = 6;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(V_NULL),
        Value::Bool(b) => {
            out.push(V_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(V_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(V_FLOAT);
            // Bit pattern, not text: NaN and -0.0 round-trip exactly.
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(V_STR);
            put_str(out, s);
        }
        Value::Array(items) => {
            out.push(V_ARRAY);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Struct(fields) => {
            out.push(V_STRUCT);
            put_u32(out, fields.len() as u32);
            for field in fields {
                put_value(out, field);
            }
        }
    }
}

fn take_value(c: &mut Cursor<'_>) -> DecodeResult<Value> {
    // Depth is naturally bounded: every nesting level consumes at least
    // one payload byte, and the payload is at most MAX_FRAME — but a
    // recursive decoder would still blow the stack long before that, so
    // cap nesting explicitly.
    take_value_depth(c, 0)
}

fn take_value_depth(c: &mut Cursor<'_>, depth: u32) -> DecodeResult<Value> {
    if depth > 64 {
        return bad("value nesting deeper than 64");
    }
    match c.take_u8()? {
        V_NULL => Ok(Value::Null),
        V_BOOL => match c.take_u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => bad(&format!("bool byte {b}")),
        },
        V_INT => Ok(Value::Int(i64::from_le_bytes(c.take(8)?.try_into().unwrap()))),
        V_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
            c.take(8)?.try_into().unwrap(),
        )))),
        V_STR => Ok(Value::str(c.take_str()?)),
        V_ARRAY => {
            let n = c.take_len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(take_value_depth(c, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        V_STRUCT => {
            let n = c.take_len()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(take_value_depth(c, depth + 1)?);
            }
            Ok(Value::Struct(fields))
        }
        t => bad(&format!("unknown value tag {t}")),
    }
}

fn put_values(out: &mut Vec<u8>, vs: &[Value]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        put_value(out, v);
    }
}

fn take_values(c: &mut Cursor<'_>) -> DecodeResult<Vec<Value>> {
    let n = c.take_len()?;
    let mut vs = Vec::with_capacity(n);
    for _ in 0..n {
        vs.push(take_value(c)?);
    }
    Ok(vs)
}

fn put_named_values(out: &mut Vec<u8>, nvs: &[(String, Value)]) {
    put_u32(out, nvs.len() as u32);
    for (name, v) in nvs {
        put_str(out, name);
        put_value(out, v);
    }
}

fn take_named_values(c: &mut Cursor<'_>) -> DecodeResult<Vec<(String, Value)>> {
    let n = c.take_len()?;
    let mut nvs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = c.take_str()?;
        nvs.push((name, take_value(c)?));
    }
    Ok(nvs)
}

// ---- transaction operations --------------------------------------------------

/// One buffered write inside a remote transaction — the wire mirror of the
/// [`erbium_model::TxOps`] surface. The client records these; the server
/// replays them inside a single embedded transaction, so the batch commits
/// or rolls back atomically exactly like an embedded closure.
#[derive(Debug, Clone, PartialEq)]
pub enum TxOp {
    Insert { entity: String, data: Vec<(String, Value)> },
    InsertLinked {
        entity: String,
        data: Vec<(String, Value)>,
        links: Vec<(String, Vec<Value>)>,
    },
    UpdateEntity { entity: String, key: Vec<Value>, changes: Vec<(String, Value)> },
    DeleteEntity { entity: String, key: Vec<Value> },
    Link { rel: String, from: Vec<Value>, to: Vec<Value>, attrs: Vec<(String, Value)> },
    Unlink { rel: String, from: Vec<Value>, to: Vec<Value> },
}

const OP_INSERT: u8 = 1;
const OP_INSERT_LINKED: u8 = 2;
const OP_UPDATE: u8 = 3;
const OP_DELETE: u8 = 4;
const OP_LINK: u8 = 5;
const OP_UNLINK: u8 = 6;

fn put_tx_op(out: &mut Vec<u8>, op: &TxOp) {
    match op {
        TxOp::Insert { entity, data } => {
            out.push(OP_INSERT);
            put_str(out, entity);
            put_named_values(out, data);
        }
        TxOp::InsertLinked { entity, data, links } => {
            out.push(OP_INSERT_LINKED);
            put_str(out, entity);
            put_named_values(out, data);
            put_u32(out, links.len() as u32);
            for (rel, key) in links {
                put_str(out, rel);
                put_values(out, key);
            }
        }
        TxOp::UpdateEntity { entity, key, changes } => {
            out.push(OP_UPDATE);
            put_str(out, entity);
            put_values(out, key);
            put_named_values(out, changes);
        }
        TxOp::DeleteEntity { entity, key } => {
            out.push(OP_DELETE);
            put_str(out, entity);
            put_values(out, key);
        }
        TxOp::Link { rel, from, to, attrs } => {
            out.push(OP_LINK);
            put_str(out, rel);
            put_values(out, from);
            put_values(out, to);
            put_named_values(out, attrs);
        }
        TxOp::Unlink { rel, from, to } => {
            out.push(OP_UNLINK);
            put_str(out, rel);
            put_values(out, from);
            put_values(out, to);
        }
    }
}

fn take_tx_op(c: &mut Cursor<'_>) -> DecodeResult<TxOp> {
    match c.take_u8()? {
        OP_INSERT => Ok(TxOp::Insert { entity: c.take_str()?, data: take_named_values(c)? }),
        OP_INSERT_LINKED => {
            let entity = c.take_str()?;
            let data = take_named_values(c)?;
            let n = c.take_len()?;
            let mut links = Vec::with_capacity(n);
            for _ in 0..n {
                let rel = c.take_str()?;
                links.push((rel, take_values(c)?));
            }
            Ok(TxOp::InsertLinked { entity, data, links })
        }
        OP_UPDATE => Ok(TxOp::UpdateEntity {
            entity: c.take_str()?,
            key: take_values(c)?,
            changes: take_named_values(c)?,
        }),
        OP_DELETE => Ok(TxOp::DeleteEntity { entity: c.take_str()?, key: take_values(c)? }),
        OP_LINK => Ok(TxOp::Link {
            rel: c.take_str()?,
            from: take_values(c)?,
            to: take_values(c)?,
            attrs: take_named_values(c)?,
        }),
        OP_UNLINK => Ok(TxOp::Unlink {
            rel: c.take_str()?,
            from: take_values(c)?,
            to: take_values(c)?,
        }),
        t => bad(&format!("unknown tx-op tag {t}")),
    }
}

// ---- requests ----------------------------------------------------------------

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake; must be the first message on a connection.
    Hello { version: u32 },
    /// Run an ERQL script (DDL and/or discarded SELECTs).
    Execute { script: String },
    /// One SELECT, optionally `?`-parameterized (`params` empty = none).
    Query { sql: String, params: Vec<Value> },
    /// Bind a `?`-template server-side, returning a statement id.
    Prepare { sql: String },
    /// Execute a previously prepared statement.
    ExecutePrepared { stmt_id: u32, params: Vec<Value> },
    /// Atomically apply a batch of buffered writes.
    Transaction { ops: Vec<TxOp> },
    /// Pin the current state, returning a snapshot id scoped to this
    /// session.
    PinSnapshot,
    /// Query a pinned snapshot.
    SnapshotQuery { snap_id: u32, sql: String, params: Vec<Value> },
    /// Release a pinned snapshot (dropping the connection releases all).
    ReleaseSnapshot { snap_id: u32 },
    /// Set a session-scoped option (never visible to other sessions).
    SetOption { key: String, value: String },
    /// Plan-cache counters of the serving database.
    CacheStats,
    /// Orderly goodbye; the server acknowledges and closes.
    Close,
}

const RQ_HELLO: u8 = 1;
const RQ_EXECUTE: u8 = 2;
const RQ_QUERY: u8 = 3;
const RQ_PREPARE: u8 = 4;
const RQ_EXECUTE_PREPARED: u8 = 5;
const RQ_TRANSACTION: u8 = 6;
const RQ_PIN_SNAPSHOT: u8 = 7;
const RQ_SNAPSHOT_QUERY: u8 = 8;
const RQ_RELEASE_SNAPSHOT: u8 = 9;
const RQ_SET_OPTION: u8 = 10;
const RQ_CACHE_STATS: u8 = 11;
const RQ_CLOSE: u8 = 12;

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { version } => {
                out.push(RQ_HELLO);
                put_u32(&mut out, *version);
            }
            Request::Execute { script } => {
                out.push(RQ_EXECUTE);
                put_str(&mut out, script);
            }
            Request::Query { sql, params } => {
                out.push(RQ_QUERY);
                put_str(&mut out, sql);
                put_values(&mut out, params);
            }
            Request::Prepare { sql } => {
                out.push(RQ_PREPARE);
                put_str(&mut out, sql);
            }
            Request::ExecutePrepared { stmt_id, params } => {
                out.push(RQ_EXECUTE_PREPARED);
                put_u32(&mut out, *stmt_id);
                put_values(&mut out, params);
            }
            Request::Transaction { ops } => {
                out.push(RQ_TRANSACTION);
                put_u32(&mut out, ops.len() as u32);
                for op in ops {
                    put_tx_op(&mut out, op);
                }
            }
            Request::PinSnapshot => out.push(RQ_PIN_SNAPSHOT),
            Request::SnapshotQuery { snap_id, sql, params } => {
                out.push(RQ_SNAPSHOT_QUERY);
                put_u32(&mut out, *snap_id);
                put_str(&mut out, sql);
                put_values(&mut out, params);
            }
            Request::ReleaseSnapshot { snap_id } => {
                out.push(RQ_RELEASE_SNAPSHOT);
                put_u32(&mut out, *snap_id);
            }
            Request::SetOption { key, value } => {
                out.push(RQ_SET_OPTION);
                put_str(&mut out, key);
                put_str(&mut out, value);
            }
            Request::CacheStats => out.push(RQ_CACHE_STATS),
            Request::Close => out.push(RQ_CLOSE),
        }
        out
    }

    /// Decode a frame payload. Rejects unknown tags, truncation, and
    /// trailing bytes.
    pub fn decode(payload: &[u8]) -> DecodeResult<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.take_u8()? {
            RQ_HELLO => Request::Hello { version: c.take_u32()? },
            RQ_EXECUTE => Request::Execute { script: c.take_str()? },
            RQ_QUERY => Request::Query { sql: c.take_str()?, params: take_values(&mut c)? },
            RQ_PREPARE => Request::Prepare { sql: c.take_str()? },
            RQ_EXECUTE_PREPARED => Request::ExecutePrepared {
                stmt_id: c.take_u32()?,
                params: take_values(&mut c)?,
            },
            RQ_TRANSACTION => {
                let n = c.take_len()?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(take_tx_op(&mut c)?);
                }
                Request::Transaction { ops }
            }
            RQ_PIN_SNAPSHOT => Request::PinSnapshot,
            RQ_SNAPSHOT_QUERY => Request::SnapshotQuery {
                snap_id: c.take_u32()?,
                sql: c.take_str()?,
                params: take_values(&mut c)?,
            },
            RQ_RELEASE_SNAPSHOT => Request::ReleaseSnapshot { snap_id: c.take_u32()? },
            RQ_SET_OPTION => {
                Request::SetOption { key: c.take_str()?, value: c.take_str()? }
            }
            RQ_CACHE_STATS => Request::CacheStats,
            RQ_CLOSE => Request::Close,
            t => return bad(&format!("unknown request tag {t}")),
        };
        c.finish()?;
        Ok(req)
    }
}

// ---- responses ---------------------------------------------------------------

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake reply carrying the server's protocol version and the
    /// session id (diagnostics; shows up in server logs and metrics).
    Hello { version: u32, session_id: u64 },
    /// Success with nothing to return.
    Ack,
    /// A query result.
    Rows { columns: Vec<String>, rows: Vec<Vec<Value>> },
    /// A prepared-statement id (session-scoped).
    Prepared { stmt_id: u32 },
    /// A pinned-snapshot id (session-scoped).
    SnapshotPinned { snap_id: u32 },
    /// Plan-cache counters.
    CacheStats { hits: u64, misses: u64 },
    /// Any failure, as a stable numeric code + message — decoded back
    /// into a [`DbError`] on the client via [`DbError::from_wire`].
    Error { code: u16, message: String },
}

const RS_HELLO: u8 = 1;
const RS_ACK: u8 = 2;
const RS_ROWS: u8 = 3;
const RS_PREPARED: u8 = 4;
const RS_SNAPSHOT: u8 = 5;
const RS_CACHE_STATS: u8 = 6;
const RS_ERROR: u8 = 7;

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Hello { version, session_id } => {
                out.push(RS_HELLO);
                put_u32(&mut out, *version);
                put_u64(&mut out, *session_id);
            }
            Response::Ack => out.push(RS_ACK),
            Response::Rows { columns, rows } => {
                out.push(RS_ROWS);
                put_u32(&mut out, columns.len() as u32);
                for col in columns {
                    put_str(&mut out, col);
                }
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_values(&mut out, row);
                }
            }
            Response::Prepared { stmt_id } => {
                out.push(RS_PREPARED);
                put_u32(&mut out, *stmt_id);
            }
            Response::SnapshotPinned { snap_id } => {
                out.push(RS_SNAPSHOT);
                put_u32(&mut out, *snap_id);
            }
            Response::CacheStats { hits, misses } => {
                out.push(RS_CACHE_STATS);
                put_u64(&mut out, *hits);
                put_u64(&mut out, *misses);
            }
            Response::Error { code, message } => {
                out.push(RS_ERROR);
                out.extend_from_slice(&code.to_le_bytes());
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> DecodeResult<Response> {
        let mut c = Cursor::new(payload);
        let resp = match c.take_u8()? {
            RS_HELLO => Response::Hello { version: c.take_u32()?, session_id: c.take_u64()? },
            RS_ACK => Response::Ack,
            RS_ROWS => {
                let ncols = c.take_len()?;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(c.take_str()?);
                }
                let nrows = c.take_len()?;
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    rows.push(take_values(&mut c)?);
                }
                Response::Rows { columns, rows }
            }
            RS_PREPARED => Response::Prepared { stmt_id: c.take_u32()? },
            RS_SNAPSHOT => Response::SnapshotPinned { snap_id: c.take_u32()? },
            RS_CACHE_STATS => Response::CacheStats { hits: c.take_u64()?, misses: c.take_u64()? },
            RS_ERROR => Response::Error { code: c.take_u16()?, message: c.take_str()? },
            t => return bad(&format!("unknown response tag {t}")),
        };
        c.finish()?;
        Ok(resp)
    }

    /// Build the wire form of a [`DbError`].
    pub fn from_error(e: &DbError) -> Response {
        Response::Error { code: e.code(), message: e.wire_message().to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn frame_rejects_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Flip one payload bit.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(read_frame(&mut &buf[..]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn frame_rejects_oversize_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(WireError::Malformed(_))));
    }

    fn all_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::str("héllo 🦀"),
            Value::str(""),
            Value::Array(vec![Value::Int(1), Value::Array(vec![Value::Null])]),
            Value::Struct(vec![Value::str("nested"), Value::Struct(vec![])]),
        ]
    }

    #[test]
    fn value_codec_round_trips_every_variant() {
        let vals = all_values();
        let mut out = Vec::new();
        put_values(&mut out, &vals);
        let mut c = Cursor::new(&out);
        let back = take_values(&mut c).unwrap();
        c.finish().unwrap();
        // NaN != NaN under PartialEq, so compare via the storage total
        // order which treats NaN as equal to itself.
        assert_eq!(back.len(), vals.len());
        for (a, b) in back.iter().zip(&vals) {
            assert_eq!(a.cmp(b), std::cmp::Ordering::Equal, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Hello { version: PROTOCOL_VERSION },
            Request::Execute { script: "CREATE ENTITY e (id int KEY);".into() },
            Request::Query { sql: "SELECT e.id FROM e e".into(), params: all_values() },
            Request::Prepare { sql: "SELECT e.id FROM e e WHERE e.id = ?".into() },
            Request::ExecutePrepared { stmt_id: 7, params: vec![Value::Int(1)] },
            Request::Transaction {
                ops: vec![
                    TxOp::Insert { entity: "e".into(), data: vec![("id".into(), Value::Int(1))] },
                    TxOp::InsertLinked {
                        entity: "e".into(),
                        data: vec![],
                        links: vec![("r".into(), vec![Value::Int(2)])],
                    },
                    TxOp::UpdateEntity {
                        entity: "e".into(),
                        key: vec![Value::Int(1)],
                        changes: vec![("x".into(), Value::Null)],
                    },
                    TxOp::DeleteEntity { entity: "e".into(), key: vec![Value::Int(1)] },
                    TxOp::Link {
                        rel: "r".into(),
                        from: vec![Value::Int(1)],
                        to: vec![Value::Int(2)],
                        attrs: vec![("w".into(), Value::Float(0.5))],
                    },
                    TxOp::Unlink { rel: "r".into(), from: vec![], to: vec![] },
                ],
            },
            Request::PinSnapshot,
            Request::SnapshotQuery { snap_id: 3, sql: "SELECT 1".into(), params: vec![] },
            Request::ReleaseSnapshot { snap_id: 3 },
            Request::SetOption { key: "threads".into(), value: "1".into() },
            Request::CacheStats,
            Request::Close,
        ];
        for req in reqs {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Hello { version: 1, session_id: 42 },
            Response::Ack,
            Response::Rows {
                columns: vec!["a".into(), "b".into()],
                rows: vec![vec![Value::Int(1), Value::str("x")], vec![Value::Null, Value::Null]],
            },
            Response::Prepared { stmt_id: 9 },
            Response::SnapshotPinned { snap_id: 2 },
            Response::CacheStats { hits: 10, misses: 3 },
            Response::Error { code: 40, message: "duplicate key".into() },
        ];
        for resp in resps {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[200]).is_err());
        assert!(Response::decode(&[200]).is_err());
        // Truncated string length.
        assert!(Request::decode(&[RQ_EXECUTE, 255, 0, 0, 0, b'x']).is_err());
        // Trailing bytes.
        let mut enc = Request::Close.encode();
        enc.push(0);
        assert!(Request::decode(&enc).is_err());
        // Collection length far beyond the payload must not allocate.
        let mut enc = Vec::new();
        enc.push(RQ_QUERY);
        put_str(&mut enc, "SELECT 1");
        put_u32(&mut enc, u32::MAX);
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn error_response_round_trips_db_errors() {
        let e = DbError::Storage("duplicate key 'x'".into());
        let resp = Response::from_error(&e);
        let enc = resp.encode();
        let Response::Error { code, message } = Response::decode(&enc).unwrap() else {
            panic!("not an error");
        };
        let back = DbError::from_wire(code, message);
        assert!(matches!(back, DbError::Storage(_)));
        assert_eq!(back.to_string(), e.to_string());
    }
}
