//! # erbium-client
//!
//! The ERSP wire client: [`RemoteClient`] speaks the E/R Server Protocol
//! (see [`protocol`]) to an `erbium-server` over TCP and implements the
//! transport-independent [`erbium_model::Connection`] API — the same trait
//! the embedded handles implement — so a workload written once against
//! `Connection` runs unmodified in-process or over the network.
//!
//! The crate deliberately links only `erbium-model` (the API contract and
//! the `Value`/`DbError` types) and `erbium-query` (client-side syntax
//! pre-validation): no storage, no engine, no core. All execution happens
//! server-side; the client is encode → send → receive → decode.

pub mod protocol;

mod remote;

pub use remote::{RemoteClient, RemoteSnapshot, RemoteStatement};
