//! [`RemoteClient`]: the [`Connection`] implementation over ERSP/TCP.

use crate::protocol::{
    read_frame, write_frame, Request, Response, TxOp, PROTOCOL_VERSION,
};
use erbium_model::api::{CacheStats, Connection, ReadSession, Rows, TxOps};
use erbium_model::{DbError, DbResult, Value};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// One framed request/response channel with a completed handshake.
/// Both [`RemoteClient`] and [`RemoteSnapshot`] own one — a snapshot dials
/// its own connection so its pinned reads never contend with the parent
/// session's traffic (and so both can be used independently, which one
/// shared socket could not express).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    peer: SocketAddr,
    session_id: u64,
}

impl Conn {
    fn dial(addr: impl ToSocketAddrs) -> DbResult<Conn> {
        let stream =
            TcpStream::connect(addr).map_err(|e| DbError::Connection(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        let peer = stream
            .peer_addr()
            .map_err(|e| DbError::Connection(format!("peer_addr: {e}")))?;
        let reader = BufReader::new(
            stream.try_clone().map_err(|e| DbError::Connection(format!("clone: {e}")))?,
        );
        let mut conn = Conn { reader, writer: BufWriter::new(stream), peer, session_id: 0 };
        match conn.call(&Request::Hello { version: PROTOCOL_VERSION })? {
            Response::Hello { version, session_id } => {
                if version != PROTOCOL_VERSION {
                    return Err(DbError::Protocol(format!(
                        "server speaks protocol v{version}, client v{PROTOCOL_VERSION}"
                    )));
                }
                conn.session_id = session_id;
                Ok(conn)
            }
            other => Err(DbError::Protocol(format!("expected Hello, got {other:?}"))),
        }
    }

    /// One round trip. A server-reported failure comes back as the
    /// [`DbError`] it was on the server, reconstructed from its stable
    /// wire code.
    fn call(&mut self, req: &Request) -> DbResult<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush().map_err(|e| DbError::Connection(format!("flush: {e}")))?;
        let payload = read_frame(&mut self.reader)?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(DbError::from_wire(code, message)),
            resp => Ok(resp),
        }
    }

    fn call_rows(&mut self, req: &Request) -> DbResult<Rows> {
        match self.call(req)? {
            Response::Rows { columns, rows } => Ok(Rows { columns, rows }),
            other => Err(DbError::Protocol(format!("expected Rows, got {other:?}"))),
        }
    }

    fn call_ack(&mut self, req: &Request) -> DbResult<()> {
        match self.call(req)? {
            Response::Ack => Ok(()),
            other => Err(DbError::Protocol(format!("expected Ack, got {other:?}"))),
        }
    }

    /// Best-effort goodbye so the server tears the session down promptly
    /// instead of waiting for the idle timeout.
    fn close(&mut self) {
        let _ = write_frame(&mut self.writer, &Request::Close.encode());
        let _ = self.writer.flush();
    }
}

/// A session with a remote ErbiumDB server. See the crate docs; use it
/// through the [`Connection`] trait.
pub struct RemoteClient {
    conn: Conn,
}

/// A statement prepared server-side; valid only on the session that
/// prepared it.
#[derive(Debug, Clone)]
pub struct RemoteStatement {
    stmt_id: u32,
}

impl RemoteClient {
    /// Dial a server and perform the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> DbResult<RemoteClient> {
        Ok(RemoteClient { conn: Conn::dial(addr)? })
    }

    /// The server-assigned session id (diagnostics: it tags the server's
    /// log lines and slow-query records for this session).
    pub fn session_id(&self) -> u64 {
        self.conn.session_id
    }

    /// The server address this client is connected to.
    pub fn server_addr(&self) -> SocketAddr {
        self.conn.peer
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        self.conn.close();
    }
}

/// Client-side transaction buffer: [`TxOps`] calls record operations,
/// nothing touches the network until the closure returns `Ok` and the
/// whole batch ships as one atomic `Transaction` request. Per-operation
/// errors therefore surface at commit, exactly as the API contract
/// documents.
struct RemoteTx {
    ops: Vec<TxOp>,
}

fn named(data: &[(&str, Value)]) -> Vec<(String, Value)> {
    data.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

impl TxOps for RemoteTx {
    fn insert(&mut self, entity: &str, data: &[(&str, Value)]) -> DbResult<()> {
        self.ops.push(TxOp::Insert { entity: entity.to_string(), data: named(data) });
        Ok(())
    }

    fn insert_linked(
        &mut self,
        entity: &str,
        data: &[(&str, Value)],
        links: &[(&str, Vec<Value>)],
    ) -> DbResult<()> {
        self.ops.push(TxOp::InsertLinked {
            entity: entity.to_string(),
            data: named(data),
            links: links.iter().map(|(r, k)| (r.to_string(), k.clone())).collect(),
        });
        Ok(())
    }

    fn update_entity(
        &mut self,
        entity: &str,
        key: &[Value],
        changes: &[(&str, Value)],
    ) -> DbResult<()> {
        self.ops.push(TxOp::UpdateEntity {
            entity: entity.to_string(),
            key: key.to_vec(),
            changes: named(changes),
        });
        Ok(())
    }

    fn delete_entity(&mut self, entity: &str, key: &[Value]) -> DbResult<()> {
        self.ops.push(TxOp::DeleteEntity { entity: entity.to_string(), key: key.to_vec() });
        Ok(())
    }

    fn link(
        &mut self,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &[(&str, Value)],
    ) -> DbResult<()> {
        self.ops.push(TxOp::Link {
            rel: rel.to_string(),
            from: from_key.to_vec(),
            to: to_key.to_vec(),
            attrs: named(attrs),
        });
        Ok(())
    }

    fn unlink(&mut self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()> {
        self.ops.push(TxOp::Unlink {
            rel: rel.to_string(),
            from: from_key.to_vec(),
            to: to_key.to_vec(),
        });
        Ok(())
    }
}

/// A snapshot pinned server-side, queried over its own dedicated
/// connection (dropping it releases the pin and the socket).
pub struct RemoteSnapshot {
    conn: Conn,
    snap_id: u32,
}

impl ReadSession for RemoteSnapshot {
    fn query(&mut self, sql: &str) -> DbResult<Rows> {
        self.query_params(sql, &[])
    }

    fn query_params(&mut self, sql: &str, params: &[Value]) -> DbResult<Rows> {
        self.conn.call_rows(&Request::SnapshotQuery {
            snap_id: self.snap_id,
            sql: sql.to_string(),
            params: params.to_vec(),
        })
    }
}

impl Drop for RemoteSnapshot {
    fn drop(&mut self) {
        let _ = self.conn.call_ack(&Request::ReleaseSnapshot { snap_id: self.snap_id });
        self.conn.close();
    }
}

impl Connection for RemoteClient {
    type Prepared = RemoteStatement;
    type Reads = RemoteSnapshot;

    fn execute(&mut self, script: &str) -> DbResult<()> {
        self.conn.call_ack(&Request::Execute { script: script.to_string() })
    }

    fn query(&mut self, sql: &str) -> DbResult<Rows> {
        self.conn.call_rows(&Request::Query { sql: sql.to_string(), params: vec![] })
    }

    fn query_params(&mut self, sql: &str, params: &[Value]) -> DbResult<Rows> {
        self.conn
            .call_rows(&Request::Query { sql: sql.to_string(), params: params.to_vec() })
    }

    fn prepare(&mut self, sql: &str) -> DbResult<RemoteStatement> {
        // Syntax errors fail here, client-side, without a round trip; the
        // server still re-validates (and binds against its schema).
        erbium_query::parse_single(sql).map_err(DbError::from)?;
        match self.conn.call(&Request::Prepare { sql: sql.to_string() })? {
            Response::Prepared { stmt_id } => Ok(RemoteStatement { stmt_id }),
            other => Err(DbError::Protocol(format!("expected Prepared, got {other:?}"))),
        }
    }

    fn execute_prepared(
        &mut self,
        stmt: &RemoteStatement,
        params: &[Value],
    ) -> DbResult<Rows> {
        self.conn.call_rows(&Request::ExecutePrepared {
            stmt_id: stmt.stmt_id,
            params: params.to_vec(),
        })
    }

    fn transaction(&mut self, f: impl FnOnce(&mut dyn TxOps) -> DbResult<()>) -> DbResult<()> {
        let mut tx = RemoteTx { ops: Vec::new() };
        f(&mut tx)?;
        self.conn.call_ack(&Request::Transaction { ops: tx.ops })
    }

    fn snapshot(&mut self) -> DbResult<RemoteSnapshot> {
        // A dedicated connection per snapshot: the server pins per
        // session, and an owned socket lets the snapshot outlive (or be
        // used interleaved with) this client without sharing a stream.
        let mut conn = Conn::dial(self.conn.peer)?;
        match conn.call(&Request::PinSnapshot)? {
            Response::SnapshotPinned { snap_id } => Ok(RemoteSnapshot { conn, snap_id }),
            other => Err(DbError::Protocol(format!("expected SnapshotPinned, got {other:?}"))),
        }
    }

    fn set_option(&mut self, key: &str, value: &str) -> DbResult<()> {
        self.conn
            .call_ack(&Request::SetOption { key: key.to_string(), value: value.to_string() })
    }

    fn cache_stats(&mut self) -> DbResult<CacheStats> {
        match self.conn.call(&Request::CacheStats)? {
            Response::CacheStats { hits, misses } => Ok(CacheStats { hits, misses }),
            other => Err(DbError::Protocol(format!("expected CacheStats, got {other:?}"))),
        }
    }
}
