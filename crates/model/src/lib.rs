//! # erbium-model
//!
//! The extended entity-relationship (E/R) schema model — the paper's core
//! abstraction ("we specifically advocate for the familiar (extended)
//! entity-relationship abstraction").
//!
//! This crate defines:
//!
//! * the schema vocabulary ([`EntitySet`], [`Relationship`], [`Attribute`])
//!   covering everything Figure 1 of the paper exercises: composite
//!   attributes, multi-valued attributes, weak entity sets with identifying
//!   relationships, ISA specialization hierarchies with total/partial and
//!   disjoint/overlapping annotations, relationship cardinality and
//!   participation constraints, and free-text descriptions (the paper wants
//!   descriptive text attached to schema elements "that can be automatically
//!   used, e.g., for creating API documentations");
//! * [`ErSchema`] — the validated collection of entity sets and
//!   relationships, with inheritance-aware lookups;
//! * [`graph::ErGraph`] — the E/R diagram viewed as a graph with one node
//!   per entity, relationship, and attribute. Physical mappings are defined
//!   as covers of this graph by connected subgraphs (paper Section 4), so
//!   the graph exposes exactly the operations the mapping layer needs:
//!   membership, adjacency, and connectivity of induced subgraphs.

pub mod api;
pub mod attr;
pub mod db_error;
pub mod error;
pub mod fixtures;
pub mod graph;
pub mod schema;
pub mod value;

pub use api::{Connection, ReadSession, Rows, TxOps};
pub use attr::{AttrType, Attribute, ScalarType};
pub use db_error::{DbError, DbResult};
pub use error::{ModelError, ModelResult};
pub use value::{DataType, Value};
pub use graph::{ErGraph, NodeId, NodeKind};
pub use schema::{
    Cardinality, EntitySet, ErSchema, Participation, RelEnd, Relationship, Specialization, WeakInfo,
};
