//! Runtime values and data types.
//!
//! The E/R model requires richer values than classic 1NF relations: composite
//! attributes become [`Value::Struct`] and multi-valued attributes become
//! [`Value::Array`] (possibly arrays *of* structs, as in the paper's mapping
//! M5 where weak entity sets are folded into their owner as arrays of
//! composite types).
//!
//! `Value` implements a **total order** and a consistent `Hash` (floats are
//! ordered by IEEE total-order bits and `Null` sorts first) so values can be
//! used directly as join keys, grouping keys, and BTree index keys.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Logical data types for stored values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    /// Fixed-schema array of an element type (multi-valued attributes).
    Array(Box<DataType>),
    /// Composite value with named fields (composite attributes, folded weak
    /// entities). Field order is significant.
    Struct(Vec<(String, DataType)>),
}

impl DataType {
    /// An array of this type.
    pub fn array_of(self) -> DataType {
        DataType::Array(Box::new(self))
    }

    /// Returns `true` if `value` conforms to this type. `Null` conforms to
    /// every type (all columns are nullable at the storage layer; the E/R
    /// layer enforces mandatory participation separately).
    pub fn check(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Float, Value::Float(_)) => true,
            (DataType::Float, Value::Int(_)) => true, // implicit widening
            (DataType::Text, Value::Str(_)) => true,
            (DataType::Array(elem), Value::Array(vs)) => vs.iter().all(|v| elem.check(v)),
            (DataType::Struct(fields), Value::Struct(vs)) => {
                fields.len() == vs.len()
                    && fields.iter().zip(vs.iter()).all(|((_, t), v)| t.check(v))
            }
            _ => false,
        }
    }

    /// Field index within a struct type, by name.
    pub fn struct_field(&self, name: &str) -> Option<(usize, &DataType)> {
        match self {
            DataType::Struct(fields) => fields
                .iter()
                .enumerate()
                .find(|(_, (n, _))| n == name)
                .map(|(i, (_, t))| (i, t)),
            _ => None,
        }
    }

    /// Element type if this is an array type.
    pub fn elem(&self) -> Option<&DataType> {
        match self {
            DataType::Array(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
            DataType::Array(e) => write!(f, "{e}[]"),
            DataType::Struct(fields) => {
                write!(f, "(")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} {t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A runtime value.
///
/// Strings are reference-counted (`Arc<str>`) because the executor clones
/// values freely while assembling intermediate rows; cloning must stay cheap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Array(Vec<Value>),
    Struct(Vec<Value>),
}

impl Value {
    /// Construct a text value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, if any (does not coerce).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload, coercing ints.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Bool payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(vs) => Some(vs),
            _ => None,
        }
    }

    /// Struct payload, if any.
    pub fn as_struct(&self) -> Option<&[Value]> {
        match self {
            Value::Struct(vs) => Some(vs),
            _ => None,
        }
    }

    /// The most specific [`DataType`] describing this value, if derivable.
    /// `Null` and empty arrays have no intrinsic type.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
            Value::Array(vs) => vs
                .iter()
                .find_map(|v| v.data_type())
                .map(|t| DataType::Array(Box::new(t))),
            Value::Struct(vs) => {
                let mut fields = Vec::with_capacity(vs.len());
                for (i, v) in vs.iter().enumerate() {
                    fields.push((format!("f{i}"), v.data_type()?));
                }
                Some(DataType::Struct(fields))
            }
        }
    }

    /// Rough in-memory footprint in bytes; used by statistics and the
    /// advisor cost model.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 16 + s.len(),
            Value::Array(vs) => 24 + vs.iter().map(Value::approx_size).sum::<usize>(),
            Value::Struct(vs) => 8 + vs.iter().map(Value::approx_size).sum::<usize>(),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Struct(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: `Null` first, then by type rank; numerics compare across
    /// `Int`/`Float` numerically (NaN greatest among floats).
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64_cmp(*a, *b),
            (Int(a), Float(b)) => total_f64_cmp(*a as f64, *b),
            (Float(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Array(a), Array(b)) | (Struct(a), Struct(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and integral floats must hash identically because they
            // compare equal across the Int/Float divide.
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                state.write_u8(2);
                x.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Array(vs) => {
                state.write_u8(4);
                vs.hash(state);
            }
            Value::Struct(vs) => {
                state.write_u8(5);
                vs.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Array(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Struct(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
    }

    #[test]
    fn int_float_cross_type_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn nan_is_self_equal_and_greatest_float() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn arrays_compare_lexicographically() {
        let a = Value::Array(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::Array(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::Array(vec![Value::Int(1)]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn type_check_nested() {
        let t = DataType::Struct(vec![
            ("street".into(), DataType::Text),
            ("cities".into(), DataType::Text.array_of()),
        ]);
        let ok = Value::Struct(vec![
            Value::str("Main St"),
            Value::Array(vec![Value::str("CP"), Value::str("DC")]),
        ]);
        let bad = Value::Struct(vec![Value::Int(5), Value::Array(vec![])]);
        assert!(t.check(&ok));
        assert!(!t.check(&bad));
        assert!(t.check(&Value::Null));
    }

    #[test]
    fn display_roundtrippable_shapes() {
        let v = Value::Array(vec![Value::Struct(vec![Value::Int(1), Value::str("x")])]);
        assert_eq!(v.to_string(), "[(1, 'x')]");
    }

    #[test]
    fn struct_field_lookup() {
        let t = DataType::Struct(vec![
            ("a".into(), DataType::Int),
            ("b".into(), DataType::Text),
        ]);
        assert_eq!(t.struct_field("b").map(|(i, _)| i), Some(1));
        assert!(t.struct_field("z").is_none());
    }

    #[test]
    fn approx_size_monotone_in_content() {
        let small = Value::Array(vec![Value::Int(1)]);
        let big = Value::Array(vec![Value::Int(1); 100]);
        assert!(big.approx_size() > small.approx_size());
    }
}
