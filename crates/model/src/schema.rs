//! Entity sets, relationships, and the validated E/R schema.

use crate::attr::Attribute;
use crate::error::{ModelError, ModelResult};
use serde::{Deserialize, Serialize};

/// Cardinality annotation on one relationship end: how many relationship
/// instances one entity on this end may participate in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cardinality {
    One,
    Many,
}

/// Participation constraint on one relationship end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Participation {
    /// Every entity must participate (double line in E/R notation).
    Total,
    Partial,
}

/// Properties of a specialization (ISA) declared on the superclass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Specialization {
    /// Total: every superclass entity belongs to some subclass.
    pub total: bool,
    /// Disjoint: an entity belongs to at most one subclass.
    pub disjoint: bool,
}

impl Default for Specialization {
    fn default() -> Self {
        Specialization { total: false, disjoint: true }
    }
}

/// Weak-entity metadata: the owning entity set and the name of the
/// identifying relationship.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeakInfo {
    pub owner: String,
    pub identifying_relationship: String,
}

/// An entity set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntitySet {
    pub name: String,
    pub attributes: Vec<Attribute>,
    /// Names of key attributes. For weak entity sets this is the *partial*
    /// key (discriminator); the full key is owner key + partial key.
    /// Subclasses leave this empty — the key is inherited from the root.
    pub key: Vec<String>,
    /// Superclass name for ISA subclasses.
    pub parent: Option<String>,
    /// Specialization properties, meaningful on entities that have
    /// subclasses.
    pub specialization: Specialization,
    /// Present iff this is a weak entity set.
    pub weak: Option<WeakInfo>,
    pub description: Option<String>,
}

impl EntitySet {
    /// A strong entity set with the given key attribute names.
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        key: Vec<&str>,
    ) -> EntitySet {
        EntitySet {
            name: name.into(),
            attributes,
            key: key.into_iter().map(String::from).collect(),
            parent: None,
            specialization: Specialization::default(),
            weak: None,
            description: None,
        }
    }

    /// A subclass of `parent` adding the given attributes.
    pub fn subclass_of(
        name: impl Into<String>,
        parent: impl Into<String>,
        attributes: Vec<Attribute>,
    ) -> EntitySet {
        EntitySet {
            name: name.into(),
            attributes,
            key: Vec::new(),
            parent: Some(parent.into()),
            specialization: Specialization::default(),
            weak: None,
            description: None,
        }
    }

    /// A weak entity set owned by `owner` through `identifying_relationship`,
    /// with `key` as its partial key (discriminator).
    pub fn weak(
        name: impl Into<String>,
        owner: impl Into<String>,
        identifying_relationship: impl Into<String>,
        attributes: Vec<Attribute>,
        key: Vec<&str>,
    ) -> EntitySet {
        EntitySet {
            name: name.into(),
            attributes,
            key: key.into_iter().map(String::from).collect(),
            parent: None,
            specialization: Specialization::default(),
            weak: None,
            description: None,
        }
        .into_weak(owner, identifying_relationship)
    }

    fn into_weak(mut self, owner: impl Into<String>, rel: impl Into<String>) -> EntitySet {
        self.weak = Some(WeakInfo {
            owner: owner.into(),
            identifying_relationship: rel.into(),
        });
        self
    }

    /// Builder: set specialization properties (on a superclass).
    pub fn with_specialization(mut self, total: bool, disjoint: bool) -> EntitySet {
        self.specialization = Specialization { total, disjoint };
        self
    }

    /// Builder: attach a description.
    pub fn described(mut self, text: impl Into<String>) -> EntitySet {
        self.description = Some(text.into());
        self
    }

    pub fn is_weak(&self) -> bool {
        self.weak.is_some()
    }

    pub fn is_subclass(&self) -> bool {
        self.parent.is_some()
    }

    /// Attribute lookup by name (own attributes only).
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }
}

/// One end of a (binary) relationship.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelEnd {
    pub entity: String,
    /// Role name (needed for self-relationships, useful everywhere).
    pub role: Option<String>,
    pub cardinality: Cardinality,
    pub participation: Participation,
}

impl RelEnd {
    pub fn many(entity: impl Into<String>) -> RelEnd {
        RelEnd {
            entity: entity.into(),
            role: None,
            cardinality: Cardinality::Many,
            participation: Participation::Partial,
        }
    }

    pub fn one(entity: impl Into<String>) -> RelEnd {
        RelEnd {
            entity: entity.into(),
            role: None,
            cardinality: Cardinality::One,
            participation: Participation::Partial,
        }
    }

    pub fn total(mut self) -> RelEnd {
        self.participation = Participation::Total;
        self
    }

    pub fn with_role(mut self, role: impl Into<String>) -> RelEnd {
        self.role = Some(role.into());
        self
    }
}

/// A binary relationship set between two entity sets, optionally carrying
/// its own (descriptive) attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relationship {
    pub name: String,
    pub from: RelEnd,
    pub to: RelEnd,
    pub attributes: Vec<Attribute>,
    pub description: Option<String>,
}

impl Relationship {
    pub fn new(name: impl Into<String>, from: RelEnd, to: RelEnd) -> Relationship {
        Relationship { name: name.into(), from, to, attributes: Vec::new(), description: None }
    }

    /// Builder: attach relationship attributes.
    pub fn with_attributes(mut self, attributes: Vec<Attribute>) -> Relationship {
        self.attributes = attributes;
        self
    }

    pub fn described(mut self, text: impl Into<String>) -> Relationship {
        self.description = Some(text.into());
        self
    }

    /// Is this many-to-many?
    pub fn is_many_to_many(&self) -> bool {
        self.from.cardinality == Cardinality::Many && self.to.cardinality == Cardinality::Many
    }

    /// Is this many-to-one (in either direction)?
    pub fn is_many_to_one(&self) -> bool {
        self.from.cardinality != self.to.cardinality
    }

    /// The end with cardinality Many in a many-to-one relationship
    /// (the side a folded FK lives on).
    pub fn many_end(&self) -> Option<&RelEnd> {
        match (self.from.cardinality, self.to.cardinality) {
            (Cardinality::Many, Cardinality::One) => Some(&self.from),
            (Cardinality::One, Cardinality::Many) => Some(&self.to),
            _ => None,
        }
    }

    /// The end with cardinality One in a many-to-one relationship.
    pub fn one_end(&self) -> Option<&RelEnd> {
        match (self.from.cardinality, self.to.cardinality) {
            (Cardinality::Many, Cardinality::One) => Some(&self.to),
            (Cardinality::One, Cardinality::Many) => Some(&self.from),
            _ => None,
        }
    }

    /// The opposite end from `entity` (for self-relationships returns `to`).
    pub fn other_end(&self, entity: &str) -> Option<&RelEnd> {
        if self.from.entity == entity {
            Some(&self.to)
        } else if self.to.entity == entity {
            Some(&self.from)
        } else {
            None
        }
    }

    /// Does `entity` participate in this relationship?
    pub fn involves(&self, entity: &str) -> bool {
        self.from.entity == entity || self.to.entity == entity
    }
}

/// A validated E/R schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErSchema {
    entities: Vec<EntitySet>,
    relationships: Vec<Relationship>,
}

impl ErSchema {
    pub fn new() -> ErSchema {
        ErSchema::default()
    }

    /// Add an entity set (no cross-reference validation yet; call
    /// [`ErSchema::validate`] when the schema is complete).
    pub fn add_entity(&mut self, e: EntitySet) -> ModelResult<()> {
        if self.entity(&e.name).is_some() {
            return Err(ModelError::DuplicateEntity(e.name));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &e.attributes {
            if !seen.insert(a.name.as_str()) {
                return Err(ModelError::DuplicateAttribute {
                    owner: e.name.clone(),
                    attribute: a.name.clone(),
                });
            }
        }
        self.entities.push(e);
        Ok(())
    }

    /// Add a relationship.
    pub fn add_relationship(&mut self, r: Relationship) -> ModelResult<()> {
        if self.relationship(&r.name).is_some() {
            return Err(ModelError::DuplicateRelationship(r.name));
        }
        self.relationships.push(r);
        Ok(())
    }

    /// Remove an entity set (used by schema evolution). Fails if referenced.
    pub fn remove_entity(&mut self, name: &str) -> ModelResult<EntitySet> {
        if self.relationships.iter().any(|r| r.involves(name)) {
            return Err(ModelError::Invalid(format!(
                "entity '{name}' still participates in relationships"
            )));
        }
        if self.entities.iter().any(|e| e.parent.as_deref() == Some(name)) {
            return Err(ModelError::Invalid(format!("entity '{name}' still has subclasses")));
        }
        let pos = self
            .entities
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| ModelError::UnknownEntity(name.to_string()))?;
        Ok(self.entities.remove(pos))
    }

    /// Remove a relationship (used by schema evolution).
    pub fn remove_relationship(&mut self, name: &str) -> ModelResult<Relationship> {
        if let Some(e) = self
            .entities
            .iter()
            .find(|e| e.weak.as_ref().map(|w| w.identifying_relationship == name).unwrap_or(false))
        {
            return Err(ModelError::Invalid(format!(
                "relationship '{name}' identifies weak entity '{}'",
                e.name
            )));
        }
        let pos = self
            .relationships
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| ModelError::UnknownRelationship(name.to_string()))?;
        Ok(self.relationships.remove(pos))
    }

    pub fn entities(&self) -> &[EntitySet] {
        &self.entities
    }

    pub fn relationships(&self) -> &[Relationship] {
        &self.relationships
    }

    pub fn entity(&self, name: &str) -> Option<&EntitySet> {
        self.entities.iter().find(|e| e.name == name)
    }

    pub fn entity_mut(&mut self, name: &str) -> Option<&mut EntitySet> {
        self.entities.iter_mut().find(|e| e.name == name)
    }

    pub fn require_entity(&self, name: &str) -> ModelResult<&EntitySet> {
        self.entity(name).ok_or_else(|| ModelError::UnknownEntity(name.to_string()))
    }

    pub fn relationship(&self, name: &str) -> Option<&Relationship> {
        self.relationships.iter().find(|r| r.name == name)
    }

    pub fn relationship_mut(&mut self, name: &str) -> Option<&mut Relationship> {
        self.relationships.iter_mut().find(|r| r.name == name)
    }

    pub fn require_relationship(&self, name: &str) -> ModelResult<&Relationship> {
        self.relationship(name).ok_or_else(|| ModelError::UnknownRelationship(name.to_string()))
    }

    /// Direct subclasses of an entity set.
    pub fn subclasses(&self, name: &str) -> Vec<&EntitySet> {
        self.entities.iter().filter(|e| e.parent.as_deref() == Some(name)).collect()
    }

    /// All transitive subclasses (not including `name` itself).
    pub fn descendants(&self, name: &str) -> Vec<&EntitySet> {
        let mut out = Vec::new();
        let mut stack = vec![name.to_string()];
        while let Some(cur) = stack.pop() {
            for sub in self.subclasses(&cur) {
                stack.push(sub.name.clone());
                out.push(sub);
            }
        }
        out
    }

    /// The root of the ISA hierarchy containing `name` (itself if strong).
    pub fn hierarchy_root(&self, name: &str) -> ModelResult<&EntitySet> {
        let mut cur = self.require_entity(name)?;
        let mut hops = 0;
        while let Some(parent) = &cur.parent {
            cur = self.require_entity(parent)?;
            hops += 1;
            if hops > self.entities.len() {
                return Err(ModelError::InheritanceCycle(name.to_string()));
            }
        }
        Ok(cur)
    }

    /// Chain from the hierarchy root down to `name`, inclusive.
    pub fn ancestry(&self, name: &str) -> ModelResult<Vec<&EntitySet>> {
        let mut chain = vec![self.require_entity(name)?];
        let mut hops = 0;
        while let Some(parent) = &chain.last().expect("nonempty").parent {
            chain.push(self.require_entity(parent)?);
            hops += 1;
            if hops > self.entities.len() {
                return Err(ModelError::InheritanceCycle(name.to_string()));
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// All attributes of `name` including inherited ones, root-first.
    pub fn all_attributes(&self, name: &str) -> ModelResult<Vec<&Attribute>> {
        Ok(self.ancestry(name)?.into_iter().flat_map(|e| e.attributes.iter()).collect())
    }

    /// Key attribute names of `name`: inherited from the hierarchy root;
    /// for weak entities, the owner's key (recursively) plus the partial key.
    pub fn full_key(&self, name: &str) -> ModelResult<Vec<String>> {
        let root = self.hierarchy_root(name)?;
        match &root.weak {
            None => Ok(root.key.clone()),
            Some(w) => {
                let mut key = self.full_key(&w.owner)?;
                key.extend(root.key.iter().cloned());
                Ok(key)
            }
        }
    }

    /// Relationships in which `name` (not its super/subclasses) participates.
    pub fn relationships_of(&self, name: &str) -> Vec<&Relationship> {
        self.relationships.iter().filter(|r| r.involves(name)).collect()
    }

    /// Validate the complete schema.
    pub fn validate(&self) -> ModelResult<()> {
        for e in &self.entities {
            // Parent must exist and the chain must be acyclic.
            if let Some(p) = &e.parent {
                self.require_entity(p)?;
                self.ancestry(&e.name)?;
                if !e.key.is_empty() {
                    return Err(ModelError::SubclassWithKey(e.name.clone()));
                }
                if e.weak.is_some() {
                    return Err(ModelError::InvalidWeakEntity {
                        entity: e.name.clone(),
                        reason: "a weak entity set cannot also be a subclass".into(),
                    });
                }
            } else if let Some(w) = &e.weak {
                let owner = self.require_entity(&w.owner)?;
                if owner.name == e.name {
                    return Err(ModelError::InvalidWeakEntity {
                        entity: e.name.clone(),
                        reason: "weak entity cannot own itself".into(),
                    });
                }
                let rel = self.require_relationship(&w.identifying_relationship)?;
                if !(rel.involves(&e.name) && rel.involves(&w.owner)) {
                    return Err(ModelError::InvalidWeakEntity {
                        entity: e.name.clone(),
                        reason: format!(
                            "identifying relationship '{}' must connect '{}' and owner '{}'",
                            rel.name, e.name, w.owner
                        ),
                    });
                }
                if e.key.is_empty() {
                    return Err(ModelError::MissingKey(e.name.clone()));
                }
            } else if e.key.is_empty() {
                return Err(ModelError::MissingKey(e.name.clone()));
            }
            // Key attributes must exist and be required, single-valued.
            for k in &e.key {
                let a = e.attribute(k).ok_or_else(|| ModelError::UnknownAttribute {
                    owner: e.name.clone(),
                    attribute: k.clone(),
                })?;
                if a.optional || a.multi_valued {
                    return Err(ModelError::Invalid(format!(
                        "key attribute '{}.{}' must be required and single-valued",
                        e.name, k
                    )));
                }
            }
        }
        for r in &self.relationships {
            self.require_entity(&r.from.entity).map_err(|_| ModelError::InvalidRelationship {
                relationship: r.name.clone(),
                reason: format!("unknown entity '{}'", r.from.entity),
            })?;
            self.require_entity(&r.to.entity).map_err(|_| ModelError::InvalidRelationship {
                relationship: r.name.clone(),
                reason: format!("unknown entity '{}'", r.to.entity),
            })?;
            if r.from.entity == r.to.entity && r.from.role == r.to.role {
                return Err(ModelError::InvalidRelationship {
                    relationship: r.name.clone(),
                    reason: "self-relationship requires distinct role names".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::ScalarType;
    use crate::fixtures::university;

    #[test]
    fn university_schema_validates() {
        university().validate().unwrap();
    }

    #[test]
    fn inherited_attributes_and_keys() {
        let s = university();
        let attrs = s.all_attributes("student").unwrap();
        let names: Vec<&str> = attrs.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["id", "name", "address", "phone", "tot_credits"]);
        assert_eq!(s.full_key("student").unwrap(), vec!["id"]);
        assert_eq!(s.hierarchy_root("instructor").unwrap().name, "person");
    }

    #[test]
    fn weak_entity_full_key_includes_owner() {
        let s = university();
        assert_eq!(
            s.full_key("section").unwrap(),
            vec!["course_id", "sec_id", "semester", "year"]
        );
    }

    #[test]
    fn descendants_transitive() {
        let mut s = university();
        s.add_entity(EntitySet::subclass_of("ta", "student", vec![])).unwrap();
        let d: Vec<&str> = s.descendants("person").iter().map(|e| e.name.as_str()).collect();
        assert!(d.contains(&"instructor") && d.contains(&"student") && d.contains(&"ta"));
        s.validate().unwrap();
    }

    #[test]
    fn cycle_detected() {
        let mut s = ErSchema::new();
        s.add_entity(EntitySet::subclass_of("a", "b", vec![])).unwrap();
        s.add_entity(EntitySet::subclass_of("b", "a", vec![])).unwrap();
        assert!(matches!(s.validate(), Err(ModelError::InheritanceCycle(_))));
    }

    #[test]
    fn subclass_with_key_rejected() {
        let mut s = ErSchema::new();
        s.add_entity(EntitySet::new(
            "p",
            vec![Attribute::scalar("id", ScalarType::Int)],
            vec!["id"],
        ))
        .unwrap();
        let mut sub =
            EntitySet::subclass_of("c", "p", vec![Attribute::scalar("x", ScalarType::Int)]);
        sub.key = vec!["x".into()];
        s.add_entity(sub).unwrap();
        assert!(matches!(s.validate(), Err(ModelError::SubclassWithKey(_))));
    }

    #[test]
    fn missing_key_rejected() {
        let mut s = ErSchema::new();
        s.add_entity(EntitySet::new("p", vec![Attribute::scalar("x", ScalarType::Int)], vec![]))
            .unwrap();
        assert!(matches!(s.validate(), Err(ModelError::MissingKey(_))));
    }

    #[test]
    fn multivalued_key_rejected() {
        let mut s = ErSchema::new();
        s.add_entity(EntitySet::new(
            "p",
            vec![Attribute::scalar("id", ScalarType::Int).multi()],
            vec!["id"],
        ))
        .unwrap();
        assert!(s.validate().is_err());
    }

    #[test]
    fn weak_entity_requires_consistent_identifying_relationship() {
        let mut s = ErSchema::new();
        s.add_entity(EntitySet::new(
            "owner",
            vec![Attribute::scalar("id", ScalarType::Int)],
            vec!["id"],
        ))
        .unwrap();
        s.add_entity(EntitySet::new(
            "other",
            vec![Attribute::scalar("id", ScalarType::Int)],
            vec!["id"],
        ))
        .unwrap();
        // Identifying relationship connects the wrong pair.
        s.add_relationship(Relationship::new(
            "ident",
            RelEnd::many("other").total(),
            RelEnd::one("owner"),
        ))
        .unwrap();
        s.add_entity(EntitySet::weak(
            "w",
            "owner",
            "ident",
            vec![Attribute::scalar("d", ScalarType::Int)],
            vec!["d"],
        ))
        .unwrap();
        assert!(matches!(s.validate(), Err(ModelError::InvalidWeakEntity { .. })));
    }

    #[test]
    fn self_relationship_needs_roles() {
        let mut s = ErSchema::new();
        s.add_entity(EntitySet::new(
            "emp",
            vec![Attribute::scalar("id", ScalarType::Int)],
            vec!["id"],
        ))
        .unwrap();
        s.add_relationship(Relationship::new(
            "manages",
            RelEnd::many("emp"),
            RelEnd::one("emp"),
        ))
        .unwrap();
        assert!(s.validate().is_err());

        let mut s2 = ErSchema::new();
        s2.add_entity(EntitySet::new(
            "emp",
            vec![Attribute::scalar("id", ScalarType::Int)],
            vec!["id"],
        ))
        .unwrap();
        s2.add_relationship(Relationship::new(
            "manages",
            RelEnd::many("emp").with_role("report"),
            RelEnd::one("emp").with_role("manager"),
        ))
        .unwrap();
        s2.validate().unwrap();
    }

    #[test]
    fn many_to_one_ends() {
        let s = university();
        let advisor = s.relationship("advisor").unwrap();
        assert!(advisor.is_many_to_one());
        assert_eq!(advisor.many_end().unwrap().entity, "student");
        assert_eq!(advisor.one_end().unwrap().entity, "instructor");
        let takes = s.relationship("takes").unwrap();
        assert!(takes.is_many_to_many());
        assert!(takes.many_end().is_none());
    }

    #[test]
    fn remove_entity_guarded_by_references() {
        let mut s = university();
        assert!(s.remove_entity("person").is_err(), "has subclasses");
        assert!(s.remove_entity("course").is_err(), "participates in sec_of");
    }

    #[test]
    fn remove_relationship_guards_weak_identity() {
        let mut s = university();
        assert!(s.remove_relationship("sec_of").is_err());
        assert!(s.remove_relationship("advisor").is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let s = university();
        let json = serde_json::to_string(&s).unwrap();
        let back: ErSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
