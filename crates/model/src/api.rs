//! The transport-independent client API of ErbiumDB.
//!
//! The paper's Figure-3 architecture puts a client-facing API layer above
//! the E/R abstraction. This module is that layer's *contract*: one
//! [`Connection`] trait implemented by the embedded handles
//! (`erbium_core::Database`, `erbium_core::SharedDatabase`) and by the
//! networked `erbium_client::RemoteClient`, so workloads — benches, smoke
//! binaries, applications — are written once and run unmodified against
//! either transport.
//!
//! Living in `erbium-model` (not `erbium-core`) is deliberate: the wire
//! client must speak this API without linking storage or the engine, and
//! everything the trait mentions — [`Value`](crate::Value), [`Rows`],
//! [`DbError`](crate::DbError) — is already defined here.
//!
//! ## Contract
//!
//! * `&mut self` receivers throughout: a connection is a session, and
//!   sessions are single-threaded. Concurrency is expressed by opening more
//!   connections (embedded handles are cheap to clone; remote clients dial
//!   another socket), never by sharing one.
//! * [`Connection::transaction`] is atomic all-or-nothing on every
//!   transport. Remote transactions are *buffered*: operations are recorded
//!   client-side and shipped as one batch at closure end, so per-operation
//!   errors surface at commit time rather than at the recording call. The
//!   [`TxOps`] surface is therefore write-only — no mid-transaction reads.
//! * [`Connection::snapshot`] pins a point-in-time read session: repeated
//!   queries over it return stable answers regardless of concurrent
//!   commits.
//! * [`Connection::prepare`] + [`Connection::execute_prepared`] bind a
//!   `?`-parameterized template once; re-executions skip parse and plan
//!   (embedded: generation-keyed plan-cache hit; remote: server-side
//!   statement id).
//! * [`Connection::set_option`] configures *this session only* — it must
//!   never leak into other sessions or process defaults.

use crate::db_error::DbResult;
use crate::value::Value;

/// A query result: column names plus rows of values. The wire-level
/// mirror of `erbium_core::QueryResult`, minus the embedded-only metrics
/// tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

/// The write surface available inside a [`Connection::transaction`]
/// closure. Mirrors `erbium_core::Tx` method-for-method, restricted to
/// operations every transport can honor atomically (no reads — a buffered
/// remote transaction has nothing to read from until commit).
pub trait TxOps {
    /// Insert an entity instance. Multi-valued attributes take
    /// `Value::Array`, composite attributes `Value::Struct`.
    fn insert(&mut self, entity: &str, data: &[(&str, Value)]) -> DbResult<()>;
    /// Insert with many-to-one relationship targets applied atomically.
    fn insert_linked(
        &mut self,
        entity: &str,
        data: &[(&str, Value)],
        links: &[(&str, Vec<Value>)],
    ) -> DbResult<()>;
    /// Update attributes of one instance.
    fn update_entity(
        &mut self,
        entity: &str,
        key: &[Value],
        changes: &[(&str, Value)],
    ) -> DbResult<()>;
    /// Delete one instance entirely.
    fn delete_entity(&mut self, entity: &str, key: &[Value]) -> DbResult<()>;
    /// Create a relationship instance, optionally with attributes.
    fn link(
        &mut self,
        rel: &str,
        from_key: &[Value],
        to_key: &[Value],
        attrs: &[(&str, Value)],
    ) -> DbResult<()>;
    /// Remove a relationship instance.
    fn unlink(&mut self, rel: &str, from_key: &[Value], to_key: &[Value]) -> DbResult<()>;
}

/// A pinned point-in-time read session (see [`Connection::snapshot`]).
pub trait ReadSession {
    /// Run an ERQL SELECT against the pinned state.
    fn query(&mut self, sql: &str) -> DbResult<Rows>;
    /// Run a `?`-parameterized ERQL SELECT against the pinned state.
    fn query_params(&mut self, sql: &str, params: &[Value]) -> DbResult<Rows>;
}

/// Plan-cache effectiveness counters as reported through a connection
/// (`hits`/`misses` mirror `erbium_engine::PlanCacheStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

/// A session with an ErbiumDB database, embedded or remote.
pub trait Connection {
    /// Prepared-statement handle (embedded: the template text keyed into
    /// the plan cache; remote: a server-side statement id).
    type Prepared;
    /// Pinned snapshot handle.
    type Reads: ReadSession;

    /// Execute a script of ERQL statements (DDL and/or SELECTs whose
    /// results are discarded).
    fn execute(&mut self, script: &str) -> DbResult<()>;
    /// Run an ERQL SELECT and return its rows.
    fn query(&mut self, sql: &str) -> DbResult<Rows>;
    /// Run a `?`-parameterized ERQL SELECT, binding `params` positionally.
    fn query_params(&mut self, sql: &str, params: &[Value]) -> DbResult<Rows>;
    /// Bind a `?`-parameterized template for repeated execution.
    fn prepare(&mut self, sql: &str) -> DbResult<Self::Prepared>;
    /// Execute a prepared template with positional parameter values.
    fn execute_prepared(&mut self, stmt: &Self::Prepared, params: &[Value]) -> DbResult<Rows>;
    /// Run a group of writes as one atomic transaction.
    fn transaction(
        &mut self,
        f: impl FnOnce(&mut dyn TxOps) -> DbResult<()>,
    ) -> DbResult<()>;
    /// Pin the current state for stable repeated reads.
    fn snapshot(&mut self) -> DbResult<Self::Reads>;
    /// Set a session-scoped option (`threads`, `batch_size`, `columnar`,
    /// `slow_query_ms`, ...). Never affects other sessions.
    fn set_option(&mut self, key: &str, value: &str) -> DbResult<()>;
    /// Plan-cache counters of the serving database (process-wide for an
    /// embedded handle; the server's cache for a remote one).
    fn cache_stats(&mut self) -> DbResult<CacheStats>;
}
