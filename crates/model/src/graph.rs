//! The E/R diagram as a graph.
//!
//! Paper, Section 4: "we first view the E/R diagram as a graph where each
//! entity, relationship, and attribute is a separate node. Entity nodes are
//! connected to the relationships in which they participate, to subclasses
//! or superclasses, and to their attributes. A mapping to physical storage
//! representation can be seen as a cover of this graph using connected
//! subgraphs."
//!
//! [`ErGraph`] is that graph. Composite attributes are one node (their
//! nested structure travels with them); relationship attributes hang off
//! the relationship node.

use crate::error::{ModelError, ModelResult};
use crate::schema::ErSchema;
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node of the E/R graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    Entity(String),
    Relationship(String),
    /// `(owner, attribute)` where owner is an entity set or relationship.
    Attribute(String, String),
}

impl NodeId {
    pub fn entity(name: impl Into<String>) -> NodeId {
        NodeId::Entity(name.into())
    }

    pub fn relationship(name: impl Into<String>) -> NodeId {
        NodeId::Relationship(name.into())
    }

    pub fn attribute(owner: impl Into<String>, name: impl Into<String>) -> NodeId {
        NodeId::Attribute(owner.into(), name.into())
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Entity(e) => write!(f, "E:{e}"),
            NodeId::Relationship(r) => write!(f, "R:{r}"),
            NodeId::Attribute(o, a) => write!(f, "A:{o}.{a}"),
        }
    }
}

/// Coarse node classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Entity,
    Relationship,
    Attribute,
}

/// Why two nodes are adjacent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Entity/relationship — its attribute.
    HasAttribute,
    /// Entity — relationship it participates in.
    Participates,
    /// Subclass — superclass.
    Isa,
}

/// The E/R diagram as an undirected graph.
#[derive(Debug, Clone)]
pub struct ErGraph {
    nodes: Vec<NodeId>,
    index: FxHashMap<NodeId, usize>,
    adj: Vec<Vec<(usize, EdgeKind)>>,
}

impl ErGraph {
    /// Build the graph from a schema.
    pub fn from_schema(schema: &ErSchema) -> ModelResult<ErGraph> {
        let mut g = ErGraph { nodes: Vec::new(), index: FxHashMap::default(), adj: Vec::new() };
        for e in schema.entities() {
            let en = g.add_node(NodeId::entity(&e.name));
            for a in &e.attributes {
                let an = g.add_node(NodeId::attribute(&e.name, &a.name));
                g.add_edge(en, an, EdgeKind::HasAttribute);
            }
        }
        for e in schema.entities() {
            if let Some(parent) = &e.parent {
                let child = g.require(&NodeId::entity(&e.name))?;
                let parent = g.require(&NodeId::entity(parent))?;
                g.add_edge(child, parent, EdgeKind::Isa);
            }
        }
        for r in schema.relationships() {
            let rn = g.add_node(NodeId::relationship(&r.name));
            for a in &r.attributes {
                let an = g.add_node(NodeId::attribute(&r.name, &a.name));
                g.add_edge(rn, an, EdgeKind::HasAttribute);
            }
            let from = g.require(&NodeId::entity(&r.from.entity))?;
            let to = g.require(&NodeId::entity(&r.to.entity))?;
            g.add_edge(rn, from, EdgeKind::Participates);
            if r.from.entity != r.to.entity {
                g.add_edge(rn, to, EdgeKind::Participates);
            }
        }
        Ok(g)
    }

    fn add_node(&mut self, id: NodeId) -> usize {
        if let Some(&i) = self.index.get(&id) {
            return i;
        }
        let i = self.nodes.len();
        self.index.insert(id.clone(), i);
        self.nodes.push(id);
        self.adj.push(Vec::new());
        i
    }

    fn add_edge(&mut self, a: usize, b: usize, kind: EdgeKind) {
        self.adj[a].push((b, kind));
        self.adj[b].push((a, kind));
    }

    fn require(&self, id: &NodeId) -> ModelResult<usize> {
        self.index
            .get(id)
            .copied()
            .ok_or_else(|| ModelError::Invalid(format!("graph node {id} not found")))
    }

    /// All node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Does the graph contain this node?
    pub fn contains(&self, id: &NodeId) -> bool {
        self.index.contains_key(id)
    }

    /// Neighbours of a node.
    pub fn neighbours(&self, id: &NodeId) -> ModelResult<Vec<(&NodeId, EdgeKind)>> {
        let i = self.require(id)?;
        Ok(self.adj[i].iter().map(|&(j, k)| (&self.nodes[j], k)).collect())
    }

    /// Is the subgraph induced by `subset` connected (and nonempty)?
    pub fn is_connected_subgraph(&self, subset: &[NodeId]) -> ModelResult<bool> {
        if subset.is_empty() {
            return Ok(false);
        }
        let idxs: FxHashSet<usize> =
            subset.iter().map(|id| self.require(id)).collect::<ModelResult<_>>()?;
        let start = *idxs.iter().next().expect("nonempty");
        let mut seen = FxHashSet::default();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(cur) = stack.pop() {
            for &(next, _) in &self.adj[cur] {
                if idxs.contains(&next) && seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        Ok(seen.len() == idxs.len())
    }

    /// Nodes NOT covered by the union of the given subsets (a valid mapping
    /// must cover every node).
    pub fn uncovered<'a>(&'a self, subsets: &[Vec<NodeId>]) -> Vec<&'a NodeId> {
        let covered: FxHashSet<&NodeId> = subsets.iter().flatten().collect();
        self.nodes.iter().filter(|n| !covered.contains(n)).collect()
    }

    /// Connected components of the whole graph (sets of node ids).
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        for start in 0..self.nodes.len() {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(cur) = stack.pop() {
                comp.push(self.nodes[cur].clone());
                for &(next, _) in &self.adj[cur] {
                    if !seen[next] {
                        seen[next] = true;
                        stack.push(next);
                    }
                }
            }
            comp.sort();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn graph() -> ErGraph {
        ErGraph::from_schema(&fixtures::university()).unwrap()
    }

    #[test]
    fn node_counts_match_schema() {
        let s = fixtures::university();
        let g = graph();
        let n_entities = s.entities().len();
        let n_rels = s.relationships().len();
        let n_attrs: usize = s.entities().iter().map(|e| e.attributes.len()).sum::<usize>()
            + s.relationships().iter().map(|r| r.attributes.len()).sum::<usize>();
        assert_eq!(g.len(), n_entities + n_rels + n_attrs);
    }

    #[test]
    fn entity_attribute_adjacency() {
        let g = graph();
        let nbrs = g.neighbours(&NodeId::entity("person")).unwrap();
        assert!(nbrs
            .iter()
            .any(|(n, k)| **n == NodeId::attribute("person", "phone") && *k == EdgeKind::HasAttribute));
        assert!(nbrs
            .iter()
            .any(|(n, k)| **n == NodeId::entity("instructor") && *k == EdgeKind::Isa));
    }

    #[test]
    fn relationship_adjacency() {
        let g = graph();
        let nbrs = g.neighbours(&NodeId::relationship("advisor")).unwrap();
        let names: Vec<String> = nbrs.iter().map(|(n, _)| n.to_string()).collect();
        assert!(names.contains(&"E:student".to_string()));
        assert!(names.contains(&"E:instructor".to_string()));
    }

    #[test]
    fn whole_graph_connected() {
        let g = graph();
        assert_eq!(g.components().len(), 1, "university schema is one component");
    }

    #[test]
    fn connectivity_of_subsets() {
        let g = graph();
        // person + its attribute: connected.
        assert!(g
            .is_connected_subgraph(&[
                NodeId::entity("person"),
                NodeId::attribute("person", "name")
            ])
            .unwrap());
        // person + section attribute without the path between them: not.
        assert!(!g
            .is_connected_subgraph(&[
                NodeId::entity("person"),
                NodeId::attribute("section", "sec_id")
            ])
            .unwrap());
        // student–advisor–instructor chain: connected through the relationship.
        assert!(g
            .is_connected_subgraph(&[
                NodeId::entity("student"),
                NodeId::relationship("advisor"),
                NodeId::entity("instructor"),
            ])
            .unwrap());
        // student + instructor WITHOUT advisor: person connects them via ISA...
        // only if person is in the subset.
        assert!(!g
            .is_connected_subgraph(&[NodeId::entity("student"), NodeId::entity("instructor")])
            .unwrap());
        assert!(g
            .is_connected_subgraph(&[
                NodeId::entity("student"),
                NodeId::entity("person"),
                NodeId::entity("instructor")
            ])
            .unwrap());
        assert!(!g.is_connected_subgraph(&[]).unwrap());
    }

    #[test]
    fn uncovered_detection() {
        let g = graph();
        let all: Vec<NodeId> = g.nodes().to_vec();
        assert!(g.uncovered(&[all]).is_empty());
        let missing = g.uncovered(&[vec![NodeId::entity("person")]]);
        assert!(missing.len() == g.len() - 1);
    }

    #[test]
    fn unknown_node_rejected() {
        let g = graph();
        assert!(g.neighbours(&NodeId::entity("ghost")).is_err());
        assert!(g.is_connected_subgraph(&[NodeId::entity("ghost")]).is_err());
    }
}
