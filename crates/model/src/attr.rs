//! Attributes: simple, composite, and multi-valued.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar domains for simple attributes. The model layer is deliberately
/// independent of the storage layer's value types; the mapping layer
/// converts between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalarType {
    Int,
    Float,
    Text,
    Bool,
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::Int => write!(f, "int"),
            ScalarType::Float => write!(f, "float"),
            ScalarType::Text => write!(f, "text"),
            ScalarType::Bool => write!(f, "bool"),
        }
    }
}

/// The type of an attribute: a scalar domain or a composite of named
/// sub-attributes (which may themselves be composite or multi-valued —
/// the paper's DDL "directly defines composite attributes").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrType {
    Scalar(ScalarType),
    Composite(Vec<Attribute>),
}

impl AttrType {
    /// Depth of composite nesting (scalar = 0).
    pub fn nesting_depth(&self) -> usize {
        match self {
            AttrType::Scalar(_) => 0,
            AttrType::Composite(fields) => {
                1 + fields.iter().map(|a| a.ty.nesting_depth()).max().unwrap_or(0)
            }
        }
    }
}

/// One attribute of an entity set or relationship.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    pub name: String,
    pub ty: AttrType,
    /// Multi-valued attribute (double oval in E/R notation): the attribute
    /// holds a *set* of values of `ty`.
    pub multi_valued: bool,
    /// May be absent (NULL). Keys must not be optional.
    pub optional: bool,
    /// Human description, surfaced in generated documentation.
    pub description: Option<String>,
    /// Governance tags, e.g. `"pii"`. The paper motivates entity-centric
    /// governance: "better understanding and tagging the data being
    /// collected".
    pub tags: Vec<String>,
}

impl Attribute {
    /// A required scalar attribute.
    pub fn scalar(name: impl Into<String>, ty: ScalarType) -> Attribute {
        Attribute {
            name: name.into(),
            ty: AttrType::Scalar(ty),
            multi_valued: false,
            optional: false,
            description: None,
            tags: Vec::new(),
        }
    }

    /// A composite attribute with the given sub-attributes.
    pub fn composite(name: impl Into<String>, fields: Vec<Attribute>) -> Attribute {
        Attribute {
            name: name.into(),
            ty: AttrType::Composite(fields),
            multi_valued: false,
            optional: false,
            description: None,
            tags: Vec::new(),
        }
    }

    /// Builder: mark multi-valued.
    pub fn multi(mut self) -> Attribute {
        self.multi_valued = true;
        self
    }

    /// Builder: mark optional.
    pub fn nullable(mut self) -> Attribute {
        self.optional = true;
        self
    }

    /// Builder: attach a description.
    pub fn described(mut self, text: impl Into<String>) -> Attribute {
        self.description = Some(text.into());
        self
    }

    /// Builder: attach a governance tag.
    pub fn tagged(mut self, tag: impl Into<String>) -> Attribute {
        self.tags.push(tag.into());
        self
    }

    /// Does this attribute carry the given governance tag?
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let a = Attribute::scalar("phone", ScalarType::Text)
            .multi()
            .nullable()
            .tagged("pii")
            .described("contact phone numbers");
        assert!(a.multi_valued && a.optional && a.has_tag("pii"));
        assert_eq!(a.description.as_deref(), Some("contact phone numbers"));
    }

    #[test]
    fn nesting_depth() {
        let addr = Attribute::composite(
            "address",
            vec![
                Attribute::scalar("street", ScalarType::Text),
                Attribute::composite("geo", vec![Attribute::scalar("lat", ScalarType::Float)]),
            ],
        );
        assert_eq!(addr.ty.nesting_depth(), 2);
        assert_eq!(AttrType::Scalar(ScalarType::Int).nesting_depth(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let a = Attribute::composite("c", vec![Attribute::scalar("x", ScalarType::Int).multi()]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Attribute = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
