//! Reference schemas from the paper.
//!
//! * [`university`] — the Figure-1 running example (adapted from
//!   Silberschatz et al.): a `person` hierarchy with `instructor` and
//!   `student` subclasses, a weak `section` entity set owned by `course`,
//!   a composite `address`, a multi-valued `phone`, and the
//!   `advisor`/`member_of`/`takes`/`teaches` relationships.
//! * [`experiment`] — the Figure-4 synthetic evaluation schema: 8 entity
//!   sets including a 5-set type hierarchy rooted at `R` and two weak
//!   entity sets `S1`, `S2` owned by `S`; three multi-valued attributes on
//!   `R`; relationships `r_s` (many-to-one), `r2_s1` (many-to-many with
//!   nearly one-to-one data — the M6 co-location target), and `r1_r3`
//!   (many-to-many).

use crate::attr::{Attribute, ScalarType};
use crate::schema::{EntitySet, ErSchema, RelEnd, Relationship};

/// The paper's Figure-1 university schema.
pub fn university() -> ErSchema {
    let mut s = ErSchema::new();
    s.add_entity(
        EntitySet::new(
            "person",
            vec![
                Attribute::scalar("id", ScalarType::Int).described("person identifier"),
                Attribute::scalar("name", ScalarType::Text).tagged("pii"),
                Attribute::composite(
                    "address",
                    vec![
                        Attribute::scalar("street", ScalarType::Text),
                        Attribute::scalar("city", ScalarType::Text),
                    ],
                )
                .nullable()
                .tagged("pii"),
                Attribute::scalar("phone", ScalarType::Text).multi().tagged("pii"),
            ],
            vec!["id"],
        )
        .with_specialization(false, true)
        .described("people on campus"),
    )
    .expect("fresh schema");
    s.add_entity(EntitySet::subclass_of(
        "instructor",
        "person",
        vec![Attribute::scalar("rank", ScalarType::Text).nullable()],
    ))
    .expect("fresh schema");
    s.add_entity(EntitySet::subclass_of(
        "student",
        "person",
        vec![Attribute::scalar("tot_credits", ScalarType::Int).nullable()],
    ))
    .expect("fresh schema");
    s.add_entity(EntitySet::new(
        "department",
        vec![
            Attribute::scalar("dept_name", ScalarType::Text),
            Attribute::scalar("building", ScalarType::Text).nullable(),
        ],
        vec!["dept_name"],
    ))
    .expect("fresh schema");
    s.add_entity(EntitySet::new(
        "course",
        vec![
            Attribute::scalar("course_id", ScalarType::Text),
            Attribute::scalar("title", ScalarType::Text),
            Attribute::scalar("credits", ScalarType::Int),
        ],
        vec!["course_id"],
    ))
    .expect("fresh schema");
    s.add_relationship(Relationship::new(
        "sec_of",
        RelEnd::many("section").total(),
        RelEnd::one("course"),
    ))
    .expect("fresh schema");
    s.add_entity(EntitySet::weak(
        "section",
        "course",
        "sec_of",
        vec![
            Attribute::scalar("sec_id", ScalarType::Int),
            Attribute::scalar("semester", ScalarType::Text),
            Attribute::scalar("year", ScalarType::Int),
        ],
        vec!["sec_id", "semester", "year"],
    ))
    .expect("fresh schema");
    s.add_relationship(Relationship::new(
        "advisor",
        RelEnd::many("student"),
        RelEnd::one("instructor"),
    ))
    .expect("fresh schema");
    s.add_relationship(Relationship::new(
        "member_of",
        RelEnd::many("instructor").total(),
        RelEnd::one("department"),
    ))
    .expect("fresh schema");
    s.add_relationship(Relationship::new(
        "takes",
        RelEnd::many("student"),
        RelEnd::many("section"),
    ))
    .expect("fresh schema");
    s.add_relationship(Relationship::new(
        "teaches",
        RelEnd::many("instructor"),
        RelEnd::many("section"),
    ))
    .expect("fresh schema");
    debug_assert!(s.validate().is_ok());
    s
}

/// The paper's Figure-4 experiment schema.
///
/// Hierarchy: `R` is the root; `R1` and `R2` are its children; `R3` is a
/// child of `R1` and `R4` a child of `R2` (5 entity sets; "all information
/// for the R3 entities" needs the 3-way join R ⋈ R1 ⋈ R3 under the fully
/// normalized mapping, matching the paper's observation).
pub fn experiment() -> ErSchema {
    let mut s = ErSchema::new();
    s.add_entity(
        EntitySet::new(
            "R",
            vec![
                Attribute::scalar("r_id", ScalarType::Int),
                Attribute::scalar("r_a", ScalarType::Text),
                Attribute::scalar("r_b", ScalarType::Int),
                Attribute::scalar("r_mv1", ScalarType::Int).multi(),
                Attribute::scalar("r_mv2", ScalarType::Int).multi(),
                Attribute::scalar("r_mv3", ScalarType::Text).multi(),
            ],
            vec!["r_id"],
        )
        .with_specialization(false, true),
    )
    .expect("fresh schema");
    s.add_entity(
        EntitySet::subclass_of(
            "R1",
            "R",
            vec![
                Attribute::scalar("r1_a", ScalarType::Int).nullable(),
                Attribute::scalar("r1_b", ScalarType::Text).nullable(),
            ],
        )
        .with_specialization(false, true),
    )
    .expect("fresh schema");
    s.add_entity(
        EntitySet::subclass_of(
            "R2",
            "R",
            vec![
                Attribute::scalar("r2_a", ScalarType::Int).nullable(),
                Attribute::scalar("r2_b", ScalarType::Text).nullable(),
            ],
        )
        .with_specialization(false, true),
    )
    .expect("fresh schema");
    s.add_entity(EntitySet::subclass_of(
        "R3",
        "R1",
        vec![Attribute::scalar("r3_a", ScalarType::Int).nullable()],
    ))
    .expect("fresh schema");
    s.add_entity(EntitySet::subclass_of(
        "R4",
        "R2",
        vec![Attribute::scalar("r4_a", ScalarType::Text).nullable()],
    ))
    .expect("fresh schema");
    s.add_entity(EntitySet::new(
        "S",
        vec![
            Attribute::scalar("s_id", ScalarType::Int),
            Attribute::scalar("s_a", ScalarType::Text),
            Attribute::scalar("s_b", ScalarType::Int),
        ],
        vec!["s_id"],
    ))
    .expect("fresh schema");
    s.add_relationship(Relationship::new("s_s1", RelEnd::many("S1").total(), RelEnd::one("S")))
        .expect("fresh schema");
    s.add_relationship(Relationship::new("s_s2", RelEnd::many("S2").total(), RelEnd::one("S")))
        .expect("fresh schema");
    s.add_entity(EntitySet::weak(
        "S1",
        "S",
        "s_s1",
        vec![
            Attribute::scalar("s1_no", ScalarType::Int),
            Attribute::scalar("s1_a", ScalarType::Int).nullable(),
            Attribute::scalar("s1_b", ScalarType::Text).nullable(),
        ],
        vec!["s1_no"],
    ))
    .expect("fresh schema");
    s.add_entity(EntitySet::weak(
        "S2",
        "S",
        "s_s2",
        vec![
            Attribute::scalar("s2_no", ScalarType::Int),
            Attribute::scalar("s2_a", ScalarType::Text).nullable(),
        ],
        vec!["s2_no"],
    ))
    .expect("fresh schema");
    // R — S: many-to-one (folds into R under the normalized mapping).
    s.add_relationship(Relationship::new("r_s", RelEnd::many("R"), RelEnd::one("S")))
        .expect("fresh schema");
    // R2 — S1: many-to-many at the schema level but nearly one-to-one in
    // the generated data; the co-location (M6) target.
    s.add_relationship(Relationship::new("r2_s1", RelEnd::many("R2"), RelEnd::many("S1")))
        .expect("fresh schema");
    // R1 — R3: many-to-many within the hierarchy.
    s.add_relationship(Relationship::new(
        "r1_r3",
        RelEnd::many("R1").with_role("left"),
        RelEnd::many("R3").with_role("right"),
    ))
    .expect("fresh schema");
    debug_assert!(s.validate().is_ok());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_fixture_schemas_validate() {
        university().validate().unwrap();
        experiment().validate().unwrap();
    }

    #[test]
    fn experiment_schema_shape_matches_paper() {
        let s = experiment();
        assert_eq!(s.entities().len(), 8, "8 entity sets");
        // 5-set type hierarchy rooted at R.
        let hier: Vec<&str> = std::iter::once("R")
            .chain(s.descendants("R").iter().map(|e| e.name.as_str()))
            .collect();
        assert_eq!(hier.len(), 5);
        // Two weak entity sets.
        assert_eq!(s.entities().iter().filter(|e| e.is_weak()).count(), 2);
        // Three multi-valued attributes on R.
        let r = s.entity("R").unwrap();
        assert_eq!(r.attributes.iter().filter(|a| a.multi_valued).count(), 3);
        // R3 sits two levels below R: 3-way join under full normalization.
        assert_eq!(s.ancestry("R3").unwrap().len(), 3);
    }

    #[test]
    fn experiment_relationship_shapes() {
        let s = experiment();
        assert!(s.relationship("r_s").unwrap().is_many_to_one());
        assert!(s.relationship("r2_s1").unwrap().is_many_to_many());
        assert!(s.relationship("r1_r3").unwrap().is_many_to_many());
    }
}
