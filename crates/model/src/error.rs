//! Model-layer error type.

use std::fmt;

/// Errors raised while constructing or validating an E/R schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    DuplicateEntity(String),
    DuplicateRelationship(String),
    DuplicateAttribute { owner: String, attribute: String },
    UnknownEntity(String),
    UnknownRelationship(String),
    UnknownAttribute { owner: String, attribute: String },
    /// The ISA hierarchy contains a cycle through this entity.
    InheritanceCycle(String),
    /// A subclass declares its own key (keys are inherited from the root).
    SubclassWithKey(String),
    /// A strong entity set lacks a key.
    MissingKey(String),
    /// Weak entity set configuration problems.
    InvalidWeakEntity { entity: String, reason: String },
    /// Relationship configuration problems.
    InvalidRelationship { relationship: String, reason: String },
    /// Generic validation failure.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateEntity(e) => write!(f, "duplicate entity set '{e}'"),
            ModelError::DuplicateRelationship(r) => write!(f, "duplicate relationship '{r}'"),
            ModelError::DuplicateAttribute { owner, attribute } => {
                write!(f, "duplicate attribute '{attribute}' on '{owner}'")
            }
            ModelError::UnknownEntity(e) => write!(f, "unknown entity set '{e}'"),
            ModelError::UnknownRelationship(r) => write!(f, "unknown relationship '{r}'"),
            ModelError::UnknownAttribute { owner, attribute } => {
                write!(f, "unknown attribute '{attribute}' on '{owner}'")
            }
            ModelError::InheritanceCycle(e) => {
                write!(f, "inheritance cycle through entity set '{e}'")
            }
            ModelError::SubclassWithKey(e) => {
                write!(f, "subclass '{e}' must not declare its own key")
            }
            ModelError::MissingKey(e) => write!(f, "entity set '{e}' has no key"),
            ModelError::InvalidWeakEntity { entity, reason } => {
                write!(f, "invalid weak entity set '{entity}': {reason}")
            }
            ModelError::InvalidRelationship { relationship, reason } => {
                write!(f, "invalid relationship '{relationship}': {reason}")
            }
            ModelError::Invalid(m) => write!(f, "invalid schema: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for model operations.
pub type ModelResult<T> = Result<T, ModelError>;
