//! The unified public error type of ErbiumDB.
//!
//! Every error a caller can observe — through the embedded `Database` API
//! or an ERSP error frame on the wire — is one [`DbError`]. Each variant
//! has a **stable numeric code** ([`DbError::code`]) so the protocol's
//! error frames and the embedded API report identical classifications, and
//! [`DbError::from_wire`] reconstructs the variant from `(code, message)`
//! on the client side.
//!
//! The per-layer error enums (`StorageError`, `EngineError`, `ParseError`,
//! `MappingError`) still exist inside their crates — rich, typed, pattern-
//! matchable. This type is the *surface*: each layer crate provides a
//! `From<LayerError> for DbError` impl that collapses to a category + a
//! rendered message, which is exactly what crosses an API or wire boundary.

use std::fmt;

/// Top-level error type of ErbiumDB. Payload-carrying variants hold the
/// rendered message (not the source enum) so every variant round-trips
/// through `(code, message)` wire frames losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// ERQL lexing / parsing failed.
    Parse(String),
    /// E/R schema error (validation, unknown entity/attribute, ...).
    Model(String),
    /// Mapping-layer error (invalid cover, unsupported construct, bad
    /// payload, binding failure).
    Mapping(String),
    /// Physical storage error (duplicate key, missing table/row, I/O,
    /// corruption, ...).
    Storage(String),
    /// Query-engine evaluation or planning error.
    Engine(String),
    /// Query cancelled cooperatively.
    Cancelled,
    /// No mapping installed yet (DDL-only phase), or operation requires one.
    NotInstalled,
    /// A mapping is already installed; use `evolve`/`remap`.
    AlreadyInstalled,
    /// Query rejected by the active access policy.
    PolicyViolation(String),
    /// Malformed ERSP frame or out-of-protocol request.
    Protocol(String),
    /// Server admission control rejected the request: too many queries
    /// in flight and the wait queue is full. Retry with backoff.
    Overloaded,
    /// Client-side transport failure (connect, read, write, disconnect).
    Connection(String),
    /// Catch-all for codes a newer peer emits that this side predates.
    Internal(String),
}

impl DbError {
    /// Stable numeric code of this error's category. Codes are part of the
    /// wire protocol: never renumber an existing variant.
    pub fn code(&self) -> u16 {
        match self {
            DbError::Parse(_) => 10,
            DbError::Model(_) => 20,
            DbError::Mapping(_) => 30,
            DbError::Storage(_) => 40,
            DbError::Engine(_) => 50,
            DbError::Cancelled => 51,
            DbError::NotInstalled => 60,
            DbError::AlreadyInstalled => 61,
            DbError::PolicyViolation(_) => 62,
            DbError::Protocol(_) => 70,
            DbError::Overloaded => 71,
            DbError::Connection(_) => 72,
            DbError::Internal(_) => 99,
        }
    }

    /// The message payload as it should travel in an error frame. Unit
    /// variants send an empty message; their meaning is fully carried by
    /// the code.
    pub fn wire_message(&self) -> &str {
        match self {
            DbError::Parse(m)
            | DbError::Model(m)
            | DbError::Mapping(m)
            | DbError::Storage(m)
            | DbError::Engine(m)
            | DbError::PolicyViolation(m)
            | DbError::Protocol(m)
            | DbError::Connection(m)
            | DbError::Internal(m) => m,
            DbError::Cancelled
            | DbError::NotInstalled
            | DbError::AlreadyInstalled
            | DbError::Overloaded => "",
        }
    }

    /// Reconstruct the variant an error frame encodes. Unknown codes fold
    /// into [`DbError::Internal`] (a newer server may emit codes this
    /// client predates) — the message survives either way.
    pub fn from_wire(code: u16, message: String) -> DbError {
        match code {
            10 => DbError::Parse(message),
            20 => DbError::Model(message),
            30 => DbError::Mapping(message),
            40 => DbError::Storage(message),
            50 => DbError::Engine(message),
            51 => DbError::Cancelled,
            60 => DbError::NotInstalled,
            61 => DbError::AlreadyInstalled,
            62 => DbError::PolicyViolation(message),
            70 => DbError::Protocol(message),
            71 => DbError::Overloaded,
            72 => DbError::Connection(message),
            99 => DbError::Internal(message),
            _ => DbError::Internal(format!("unknown error code {code}: {message}")),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Model(m) => write!(f, "schema error: {m}"),
            DbError::Mapping(m) => write!(f, "{m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Engine(m) => write!(f, "engine error: {m}"),
            DbError::Cancelled => write!(f, "query cancelled"),
            DbError::NotInstalled => write!(f, "no physical mapping installed"),
            DbError::AlreadyInstalled => {
                write!(f, "a mapping is already installed; use evolve() or remap()")
            }
            DbError::PolicyViolation(m) => write!(f, "access policy violation: {m}"),
            DbError::Protocol(m) => write!(f, "protocol error: {m}"),
            DbError::Overloaded => write!(f, "server overloaded; retry later"),
            DbError::Connection(m) => write!(f, "connection error: {m}"),
            DbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<crate::error::ModelError> for DbError {
    fn from(e: crate::error::ModelError) -> Self {
        DbError::Model(e.to_string())
    }
}

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant must survive a `(code, message)` round trip — that is
    /// the wire contract of ERSP error frames.
    #[test]
    fn wire_round_trip_all_variants() {
        let all = vec![
            DbError::Parse("p".into()),
            DbError::Model("m".into()),
            DbError::Mapping("x".into()),
            DbError::Storage("s".into()),
            DbError::Engine("e".into()),
            DbError::Cancelled,
            DbError::NotInstalled,
            DbError::AlreadyInstalled,
            DbError::PolicyViolation("v".into()),
            DbError::Protocol("f".into()),
            DbError::Overloaded,
            DbError::Connection("c".into()),
            DbError::Internal("i".into()),
        ];
        for e in all {
            let back = DbError::from_wire(e.code(), e.wire_message().to_string());
            assert_eq!(back, e, "code {} did not round-trip", e.code());
        }
    }

    #[test]
    fn codes_are_distinct_and_stable() {
        // The exact numbers are part of the protocol; this test freezes them.
        assert_eq!(DbError::Parse(String::new()).code(), 10);
        assert_eq!(DbError::Model(String::new()).code(), 20);
        assert_eq!(DbError::Mapping(String::new()).code(), 30);
        assert_eq!(DbError::Storage(String::new()).code(), 40);
        assert_eq!(DbError::Engine(String::new()).code(), 50);
        assert_eq!(DbError::Cancelled.code(), 51);
        assert_eq!(DbError::NotInstalled.code(), 60);
        assert_eq!(DbError::AlreadyInstalled.code(), 61);
        assert_eq!(DbError::PolicyViolation(String::new()).code(), 62);
        assert_eq!(DbError::Protocol(String::new()).code(), 70);
        assert_eq!(DbError::Overloaded.code(), 71);
        assert_eq!(DbError::Connection(String::new()).code(), 72);
        assert_eq!(DbError::Internal(String::new()).code(), 99);
    }

    #[test]
    fn unknown_code_folds_to_internal() {
        let e = DbError::from_wire(1234, "future variant".into());
        assert!(matches!(e, DbError::Internal(_)));
        assert_eq!(e.code(), 99);
    }
}
