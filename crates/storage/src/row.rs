//! Rows and row identifiers.

use crate::value::Value;

/// A tuple of values. Arity and types are governed by the owning table's
/// [`crate::schema::TableSchema`] (or, for intermediate results, by the
/// producing plan node).
pub type Row = Vec<Value>;

/// Stable identifier of a row slot within one [`crate::table::Table`].
///
/// Row ids survive unrelated inserts and deletes: deletion tombstones the
/// slot and pushes it on a free list, so a row id is only reused after its
/// row was deleted. Indexes store row ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl RowId {
    /// The slot index inside the table's row vector.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Render a row for debugging / example output.
pub fn format_row(row: &Row) -> String {
    let mut s = String::from("(");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&v.to_string());
    }
    s.push(')');
    s
}
