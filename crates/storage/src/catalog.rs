//! The catalog: named tables plus a persisted metadata area.
//!
//! The paper's prototype keeps the chosen E/R mapping "in a table in the
//! database as a JSON object, ... read into memory at initialization time".
//! [`Catalog::put_meta`]/[`Catalog::get_meta`] provide that same facility:
//! an ordinary key→JSON store living beside the data tables, used by the
//! upper layers to persist the E/R schema, the installed mapping, and the
//! schema version history.

use crate::error::{StorageError, StorageResult};
use crate::factorized::FactorizedTable;
use crate::table::Table;
use rustc_hash::FxHashMap;

/// All physical state of one database instance.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: FxHashMap<String, Table>,
    factorized: FxHashMap<String, FactorizedTable>,
    meta: FxHashMap<String, serde_json::Value>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a new table. Fails if the name is taken (by either a plain
    /// or a factorized table).
    pub fn create_table(&mut self, table: Table) -> StorageResult<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) || self.factorized.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Remove a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<Table> {
        self.tables.remove(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.tables.get(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.tables.get_mut(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all plain tables, sorted (stable for tests and display).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register a factorized (multi-relation) structure.
    pub fn create_factorized(&mut self, name: impl Into<String>, ft: FactorizedTable) -> StorageResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) || self.factorized.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        self.factorized.insert(name, ft);
        Ok(())
    }

    pub fn drop_factorized(&mut self, name: &str) -> StorageResult<FactorizedTable> {
        self.factorized.remove(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    pub fn factorized(&self, name: &str) -> StorageResult<&FactorizedTable> {
        self.factorized.get(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    pub fn factorized_mut(&mut self, name: &str) -> StorageResult<&mut FactorizedTable> {
        self.factorized.get_mut(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    pub fn has_factorized(&self, name: &str) -> bool {
        self.factorized.contains_key(name)
    }

    pub fn factorized_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factorized.keys().cloned().collect();
        names.sort();
        names
    }

    /// Store a metadata document under a key (overwrites).
    pub fn put_meta(&mut self, key: impl Into<String>, value: serde_json::Value) {
        self.meta.insert(key.into(), value);
    }

    /// Fetch a metadata document.
    pub fn get_meta(&self, key: &str) -> Option<&serde_json::Value> {
        self.meta.get(key)
    }

    /// Remove a metadata document.
    pub fn delete_meta(&mut self, key: &str) -> Option<serde_json::Value> {
        self.meta.remove(key)
    }

    /// Serialize a typed document into metadata.
    pub fn put_meta_typed<T: serde::Serialize>(&mut self, key: impl Into<String>, value: &T) -> StorageResult<()> {
        let v = serde_json::to_value(value).map_err(|e| StorageError::Metadata(e.to_string()))?;
        self.put_meta(key, v);
        Ok(())
    }

    /// Deserialize a typed document from metadata.
    pub fn get_meta_typed<T: serde::de::DeserializeOwned>(&self, key: &str) -> StorageResult<Option<T>> {
        match self.meta.get(key) {
            None => Ok(None),
            Some(v) => serde_json::from_value(v.clone())
                .map(Some)
                .map_err(|e| StorageError::Metadata(e.to_string())),
        }
    }

    /// Total live rows across all plain tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn t(name: &str) -> Table {
        Table::new(TableSchema::new(name, vec![Column::not_null("id", DataType::Int)], vec![0]))
    }

    #[test]
    fn create_and_drop_tables() {
        let mut c = Catalog::new();
        c.create_table(t("a")).unwrap();
        assert!(c.has_table("a"));
        assert!(matches!(c.create_table(t("a")), Err(StorageError::TableExists(_))));
        c.drop_table("a").unwrap();
        assert!(!c.has_table("a"));
        assert!(c.drop_table("a").is_err());
    }

    #[test]
    fn meta_typed_roundtrip() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct M {
            version: u32,
            tables: Vec<String>,
        }
        let mut c = Catalog::new();
        let m = M { version: 3, tables: vec!["x".into()] };
        c.put_meta_typed("mapping", &m).unwrap();
        let got: Option<M> = c.get_meta_typed("mapping").unwrap();
        assert_eq!(got, Some(m));
        assert!(c.get_meta_typed::<M>("missing").unwrap().is_none());
    }

    #[test]
    fn table_names_sorted() {
        let mut c = Catalog::new();
        c.create_table(t("zeta")).unwrap();
        c.create_table(t("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
