//! The catalog: named tables plus a persisted metadata area.
//!
//! The paper's prototype keeps the chosen E/R mapping "in a table in the
//! database as a JSON object, ... read into memory at initialization time".
//! [`Catalog::put_meta`]/[`Catalog::get_meta`] provide that same facility:
//! an ordinary key→JSON store living beside the data tables, used by the
//! upper layers to persist the E/R schema, the installed mapping, and the
//! schema version history.

use crate::buffer_pool::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::factorized::FactorizedTable;
use crate::stats::{CatalogStats, TableStats};
use crate::table::Table;
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// All physical state of one database instance.
///
/// Tables live behind `Arc`s so that cloning a `Catalog` is shallow — a
/// handful of pointer bumps, independent of data size. That clone *is* the
/// snapshot mechanism for concurrent reads: a published read view holds a
/// cloned `Catalog`, and every mutation goes through [`Catalog::table_mut`]
/// / [`Catalog::factorized_mut`], which copy-on-write (`Arc::make_mut`) the
/// table iff a snapshot still shares it. Readers therefore keep a fully
/// consistent, immutable view (rows, columns, indexes, stats) with no locks
/// held while the writer keeps mutating.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// The buffer pool every table installed in this catalog is bound to.
    /// Unbounded by default; [`Catalog::recover_with`] and the database
    /// layer thread a budgeted pool through instead.
    pool: Arc<BufferPool>,
    tables: FxHashMap<String, Arc<Table>>,
    factorized: FxHashMap<String, Arc<FactorizedTable>>,
    meta: FxHashMap<String, serde_json::Value>,
    /// ANALYZE-gathered statistics, keyed by table name (factorized
    /// structures contribute `name`, `name#left`, `name#right`).
    stats: CatalogStats,
    /// Commit epoch: advanced once per transaction by the database layer
    /// ([`Catalog::advance_epoch`]) and stamped into every table a
    /// transaction touches, so row slots record the `[created, deleted)`
    /// epoch interval they were live in. Process-local: recovery restarts
    /// at 0 (slot stamps are visibility bookkeeping, never persisted).
    epoch: u64,
    /// Plain tables mutated since the last checkpoint (names inserted by
    /// [`Catalog::table_mut`], cleared by [`Catalog::mark_checkpointed`]).
    /// Incremental checkpoints serialize exactly this set into a delta.
    dirty_tables: FxHashSet<String>,
    /// Factorized structures mutated since the last checkpoint.
    dirty_facts: FxHashSet<String>,
    /// True when the *shape* of the catalog changed since the last
    /// checkpoint (table/structure created or dropped). A structural change
    /// forces the next checkpoint to be a full snapshot: deltas only carry
    /// changed content, not existence.
    structural_dirty: bool,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog::with_pool(BufferPool::unbounded())
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// An empty catalog whose tables will be bound to `pool`.
    pub fn with_pool(pool: Arc<BufferPool>) -> Catalog {
        Catalog {
            pool,
            tables: FxHashMap::default(),
            factorized: FxHashMap::default(),
            meta: FxHashMap::default(),
            stats: CatalogStats::default(),
            epoch: 0,
            dirty_tables: FxHashSet::default(),
            dirty_facts: FxHashSet::default(),
            structural_dirty: false,
        }
    }

    /// The buffer pool this catalog's tables are bound to.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// One cooperative eviction pass: while the pool is over budget, sweep
    /// the catalog's tables clock-hand style and evict cold pages (second
    /// chance first, then a forced pass). Tables still shared with a
    /// pinned snapshot are skipped — evicting their pages would not free
    /// memory, the snapshot's clone keeps them resident. Called from the
    /// `&mut` choke points (transaction end, checkpoint, recovery); spill
    /// I/O failures make eviction a no-op rather than an error, since
    /// dropping cold pages is an optimization, never a correctness step.
    pub fn reclaim_pages(&mut self) -> usize {
        if !self.pool.over_budget() {
            return 0;
        }
        let mut evicted = 0;
        for force in [false, true] {
            for t in self.tables.values_mut() {
                if !self.pool.over_budget() {
                    return evicted;
                }
                if let Some(t) = Arc::get_mut(t) {
                    evicted += t.reclaim_pages(force).unwrap_or(0);
                }
            }
            for ft in self.factorized.values_mut() {
                if !self.pool.over_budget() {
                    return evicted;
                }
                if let Some(ft) = Arc::get_mut(ft) {
                    evicted += ft.reclaim_pages(force).unwrap_or(0);
                }
            }
        }
        evicted
    }

    /// The current commit epoch (see the `epoch` field).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the commit epoch and return the new value. The database
    /// layer calls this once at the start of every writing transaction;
    /// tables touched afterwards stamp their slots with it.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Register a new table. Fails if the name is taken (by either a plain
    /// or a factorized table).
    pub fn create_table(&mut self, mut table: Table) -> StorageResult<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) || self.factorized.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        table.bind_pool(&self.pool);
        self.structural_dirty = true;
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Remove a table, returning it. Any gathered statistics are dropped.
    /// If a pinned snapshot still shares the table, it keeps its `Arc` and
    /// the returned value is a clone.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<Table> {
        let t =
            self.tables.remove(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))?;
        self.stats.remove(name);
        self.dirty_tables.remove(name);
        self.structural_dirty = true;
        Ok(Arc::try_unwrap(t).unwrap_or_else(|shared| (*shared).clone()))
    }

    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(name)
            .map(|t| t.as_ref())
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Mutable access to a table. Handing out `&mut` is the choke point for
    /// every CRUD path, so two pieces of bookkeeping live here: gathered
    /// statistics are conservatively marked stale (the caller may be about
    /// to write), and the current commit epoch is stamped into the table so
    /// slot mutations record which epoch they happened in. If a snapshot
    /// still shares the table, `Arc::make_mut` detaches a private copy
    /// first (copy-on-write) — the snapshot keeps the old version.
    pub fn table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        let epoch = self.epoch;
        let t = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))?;
        self.stats.mark_stale(name);
        if !self.dirty_tables.contains(name) {
            self.dirty_tables.insert(name.to_string());
        }
        let t = Arc::make_mut(t);
        t.set_write_epoch(epoch);
        t.bump_content_epoch();
        Ok(t)
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all plain tables, sorted (stable for tests and display).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register a factorized (multi-relation) structure.
    pub fn create_factorized(&mut self, name: impl Into<String>, mut ft: FactorizedTable) -> StorageResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) || self.factorized.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        ft.bind_pool(&self.pool);
        self.structural_dirty = true;
        self.factorized.insert(name, Arc::new(ft));
        Ok(())
    }

    pub fn drop_factorized(&mut self, name: &str) -> StorageResult<FactorizedTable> {
        let ft = self
            .factorized
            .remove(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))?;
        self.stats.remove(name);
        self.stats.remove(&format!("{name}#left"));
        self.stats.remove(&format!("{name}#right"));
        self.dirty_facts.remove(name);
        self.structural_dirty = true;
        Ok(Arc::try_unwrap(ft).unwrap_or_else(|shared| (*shared).clone()))
    }

    pub fn factorized(&self, name: &str) -> StorageResult<&FactorizedTable> {
        self.factorized
            .get(name)
            .map(|ft| ft.as_ref())
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Mutable access to a factorized structure; marks all three of its
    /// statistics entries stale, copy-on-writes the structure if a
    /// snapshot still shares it, and stamps the commit epoch into both
    /// member tables (see [`Catalog::table_mut`]).
    pub fn factorized_mut(&mut self, name: &str) -> StorageResult<&mut FactorizedTable> {
        if !self.factorized.contains_key(name) {
            return Err(StorageError::TableNotFound(name.to_string()));
        }
        self.stats.mark_stale(name);
        self.stats.mark_stale(&format!("{name}#left"));
        self.stats.mark_stale(&format!("{name}#right"));
        if !self.dirty_facts.contains(name) {
            self.dirty_facts.insert(name.to_string());
        }
        let epoch = self.epoch;
        let ft = Arc::make_mut(self.factorized.get_mut(name).expect("checked above"));
        ft.set_write_epoch(epoch);
        ft.bump_content_epoch();
        Ok(ft)
    }

    pub fn has_factorized(&self, name: &str) -> bool {
        self.factorized.contains_key(name)
    }

    pub fn factorized_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factorized.keys().cloned().collect();
        names.sort();
        names
    }

    /// Plain tables mutated since the last checkpoint, sorted.
    pub fn dirty_table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.dirty_tables.iter().cloned().collect();
        names.sort();
        names
    }

    /// Factorized structures mutated since the last checkpoint, sorted.
    pub fn dirty_factorized_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.dirty_facts.iter().cloned().collect();
        names.sort();
        names
    }

    /// Has the catalog's shape changed since the last checkpoint?
    pub fn structural_dirty(&self) -> bool {
        self.structural_dirty
    }

    /// Reset all dirty tracking. Called by the checkpointer once the
    /// current state is safely on disk (full snapshot or delta).
    pub(crate) fn mark_checkpointed(&mut self) {
        self.dirty_tables.clear();
        self.dirty_facts.clear();
        self.structural_dirty = false;
    }

    /// Install a table version wholesale, replacing any existing entry of
    /// the same name (delta-checkpoint recovery: the delta carries the whole
    /// serialized table, not a diff).
    pub(crate) fn install_table_version(&mut self, mut table: Table) {
        table.bind_pool(&self.pool);
        self.tables.insert(table.name().to_string(), Arc::new(table));
    }

    /// Install a factorized-structure version wholesale (see
    /// [`Catalog::install_table_version`]).
    pub(crate) fn install_factorized_version(&mut self, name: String, mut ft: FactorizedTable) {
        ft.bind_pool(&self.pool);
        self.factorized.insert(name, Arc::new(ft));
    }

    /// Replace the whole metadata area (delta-checkpoint recovery: every
    /// delta carries the full metadata map — it is tiny and versioning it
    /// per-key is not worth the bookkeeping).
    pub(crate) fn replace_meta(&mut self, meta: FxHashMap<String, serde_json::Value>) {
        self.meta = meta;
    }

    /// Store a metadata document under a key (overwrites).
    pub fn put_meta(&mut self, key: impl Into<String>, value: serde_json::Value) {
        self.meta.insert(key.into(), value);
    }

    /// Fetch a metadata document.
    pub fn get_meta(&self, key: &str) -> Option<&serde_json::Value> {
        self.meta.get(key)
    }

    /// Remove a metadata document.
    pub fn delete_meta(&mut self, key: &str) -> Option<serde_json::Value> {
        self.meta.remove(key)
    }

    /// Serialize a typed document into metadata.
    pub fn put_meta_typed<T: serde::Serialize>(&mut self, key: impl Into<String>, value: &T) -> StorageResult<()> {
        let v = serde_json::to_value(value).map_err(|e| StorageError::Metadata(e.to_string()))?;
        self.put_meta(key, v);
        Ok(())
    }

    /// Deserialize a typed document from metadata.
    pub fn get_meta_typed<T: serde::de::DeserializeOwned>(&self, key: &str) -> StorageResult<Option<T>> {
        match self.meta.get(key) {
            None => Ok(None),
            Some(v) => serde_json::from_value(v.clone())
                .map(Some)
                .map_err(|e| StorageError::Metadata(e.to_string())),
        }
    }

    /// Iterate all metadata entries (checkpoint support).
    pub fn meta_entries(&self) -> impl Iterator<Item = (&String, &serde_json::Value)> {
        self.meta.iter()
    }

    /// Iterate all plain tables (checkpoint support).
    pub(crate) fn tables_iter(&self) -> impl Iterator<Item = (&String, &Table)> {
        self.tables.iter().map(|(n, t)| (n, t.as_ref()))
    }

    /// Iterate all factorized structures (checkpoint support).
    pub(crate) fn factorized_iter(&self) -> impl Iterator<Item = (&String, &FactorizedTable)> {
        self.factorized.iter().map(|(n, ft)| (n, ft.as_ref()))
    }

    /// Mutable sweep over all plain tables without stats bookkeeping
    /// (WAL-redo epilogue: free-list rebuild).
    pub(crate) fn tables_iter_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut().map(Arc::make_mut)
    }

    /// Mutable sweep over all factorized structures without stats
    /// bookkeeping (WAL-redo epilogue: free-list rebuild).
    pub(crate) fn factorized_iter_mut(&mut self) -> impl Iterator<Item = &mut FactorizedTable> {
        self.factorized.values_mut().map(Arc::make_mut)
    }

    /// Total live rows across all plain tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// The gathered statistics registry (empty until [`Catalog::analyze`]
    /// or [`Catalog::put_stats`] runs).
    pub fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    /// Gathered statistics for one table (or factorized-stats key such as
    /// `name#left`), stale or not.
    pub fn table_stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    /// Install externally computed statistics under `name`. The advisor uses
    /// this to cost candidate mappings over *synthesized* statistics without
    /// populating any data.
    pub fn put_stats(&mut self, name: impl Into<String>, stats: TableStats) {
        self.stats.put(name, stats);
    }

    /// Replace the whole statistics registry. Recovery uses this to restore
    /// the registry persisted in a checkpoint snapshot *before* redoing the
    /// WAL suffix, so mutations in the suffix re-derive staleness through
    /// the ordinary [`Catalog::table_mut`] / [`Catalog::factorized_mut`]
    /// paths.
    pub(crate) fn set_stats(&mut self, stats: CatalogStats) {
        self.stats = stats;
    }

    /// Recompute statistics for just the named plain tables. The bulk-ingest
    /// path calls this once per batch to refresh what it touched instead of
    /// re-scanning the whole catalog. Tables without an existing stats entry
    /// are skipped: the no-stats-until-ANALYZE contract stays intact (a bulk
    /// load must not flip the optimizer into cost-based mode by itself).
    /// Returns the number of entries refreshed.
    pub fn reanalyze_tables(&mut self, names: &[String]) -> usize {
        let mut written = 0;
        for name in names {
            if self.stats.get(name).is_none() {
                continue;
            }
            if let Some(t) = self.tables.get(name) {
                let fresh = t.compute_stats();
                self.stats.put(name.clone(), fresh);
                written += 1;
            }
        }
        written
    }

    /// ANALYZE: gather fresh statistics for every plain table and every
    /// factorized structure in one pass each. Factorized structures yield
    /// three entries — the stored join under the structure's own name and
    /// the member sides under `name#left` / `name#right`. Returns the number
    /// of statistics entries written.
    pub fn analyze(&mut self) -> usize {
        let mut written = 0;
        let table_stats: Vec<(String, TableStats)> =
            self.tables.iter().map(|(n, t)| (n.clone(), t.compute_stats())).collect();
        for (name, stats) in table_stats {
            self.stats.put(name, stats);
            written += 1;
        }
        let fact_stats: Vec<(String, TableStats, TableStats, TableStats)> = self
            .factorized
            .iter()
            .map(|(n, ft)| {
                let (left, right, join) = ft.compute_stats();
                (n.clone(), left, right, join)
            })
            .collect();
        for (name, left, right, join) in fact_stats {
            self.stats.put(format!("{name}#left"), left);
            self.stats.put(format!("{name}#right"), right);
            self.stats.put(name, join);
            written += 3;
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn t(name: &str) -> Table {
        Table::new(TableSchema::new(name, vec![Column::not_null("id", DataType::Int)], vec![0]))
    }

    #[test]
    fn create_and_drop_tables() {
        let mut c = Catalog::new();
        c.create_table(t("a")).unwrap();
        assert!(c.has_table("a"));
        assert!(matches!(c.create_table(t("a")), Err(StorageError::TableExists(_))));
        c.drop_table("a").unwrap();
        assert!(!c.has_table("a"));
        assert!(c.drop_table("a").is_err());
    }

    #[test]
    fn meta_typed_roundtrip() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct M {
            version: u32,
            tables: Vec<String>,
        }
        let mut c = Catalog::new();
        let m = M { version: 3, tables: vec!["x".into()] };
        c.put_meta_typed("mapping", &m).unwrap();
        let got: Option<M> = c.get_meta_typed("mapping").unwrap();
        assert_eq!(got, Some(m));
        assert!(c.get_meta_typed::<M>("missing").unwrap().is_none());
    }

    #[test]
    fn analyze_gathers_and_writes_invalidate() {
        use crate::value::Value;
        let mut c = Catalog::new();
        let mut a = t("a");
        for i in 0..10 {
            a.insert(vec![Value::Int(i)]).unwrap();
        }
        c.create_table(a).unwrap();
        assert!(c.stats().is_empty(), "no stats before ANALYZE");

        let n = c.analyze();
        assert_eq!(n, 1);
        let s = c.table_stats("a").unwrap();
        assert_eq!(s.row_count, 10);
        assert_eq!(s.columns[0].ndv, 10);
        assert!(!c.stats().is_stale("a"));

        // A write through the mutable accessor marks stats stale but keeps them.
        c.table_mut("a").unwrap().insert(vec![Value::Int(99)]).unwrap();
        assert!(c.stats().is_stale("a"));
        assert_eq!(c.table_stats("a").unwrap().row_count, 10, "stale stats still served");

        // Re-ANALYZE refreshes.
        c.analyze();
        assert!(!c.stats().is_stale("a"));
        assert_eq!(c.table_stats("a").unwrap().row_count, 11);

        // Dropping the table drops its stats.
        c.drop_table("a").unwrap();
        assert!(c.table_stats("a").is_none());
    }

    #[test]
    fn analyze_factorized_writes_three_entries() {
        use crate::value::{DataType, Value};
        let left = TableSchema::new(
            "l",
            vec![Column::not_null("lid", DataType::Int)],
            vec![0],
        );
        let right = TableSchema::new(
            "r",
            vec![Column::not_null("rid", DataType::Int)],
            vec![0],
        );
        let mut ft = FactorizedTable::new("f", left, right);
        let l0 = ft.insert_left(vec![Value::Int(1)]).unwrap();
        let r0 = ft.insert_right(vec![Value::Int(10)]).unwrap();
        let r1 = ft.insert_right(vec![Value::Int(20)]).unwrap();
        ft.link(l0, r0).unwrap();
        ft.link(l0, r1).unwrap();

        let mut c = Catalog::new();
        c.create_factorized("f", ft).unwrap();
        assert_eq!(c.analyze(), 3);
        assert_eq!(c.table_stats("f#left").unwrap().row_count, 1);
        assert_eq!(c.table_stats("f#right").unwrap().row_count, 2);
        assert_eq!(c.table_stats("f").unwrap().row_count, 2, "join stats count pairs");
        assert_eq!(c.table_stats("f").unwrap().columns.len(), 2, "join stats span both sides");

        c.factorized_mut("f").unwrap();
        assert!(c.stats().is_stale("f"));
        assert!(c.stats().is_stale("f#left"));
        assert!(c.stats().is_stale("f#right"));

        c.drop_factorized("f").unwrap();
        assert!(c.table_stats("f").is_none());
        assert!(c.table_stats("f#left").is_none());
    }

    #[test]
    fn cloned_catalog_is_a_snapshot_under_cow() {
        use crate::value::Value;
        let mut c = Catalog::new();
        let mut a = t("a");
        a.insert(vec![Value::Int(1)]).unwrap();
        c.create_table(a).unwrap();

        // A clone shares table storage (shallow), then copy-on-write
        // detaches the writer's version on the first mutation.
        let snap = c.clone();
        c.advance_epoch();
        c.table_mut("a").unwrap().insert(vec![Value::Int(2)]).unwrap();
        c.table_mut("a").unwrap().delete(crate::row::RowId(0)).unwrap();
        assert_eq!(snap.table("a").unwrap().len(), 1, "snapshot still sees the old version");
        assert_eq!(c.table("a").unwrap().len(), 1);
        assert!(snap.table("a").unwrap().get(crate::row::RowId(0)).is_some());
        assert!(c.table("a").unwrap().get(crate::row::RowId(0)).is_none());

        // Epoch stamps: slot 0 lived [0, 1), slot 1 lives [1, MAX).
        let wt = c.table("a").unwrap();
        assert_eq!(wt.slot_epochs(0), Some((0, 1)));
        assert_eq!(wt.slot_epochs(1), Some((1, u64::MAX)));
        assert!(wt.slot_visible_at(0, 0) && !wt.slot_visible_at(0, 1));
        // Dropping a shared table hands the snapshot's copy back by clone.
        let dropped = c.drop_table("a").unwrap();
        assert_eq!(dropped.len(), 1);
        assert_eq!(snap.table("a").unwrap().len(), 1);
    }

    #[test]
    fn dirty_tracking_follows_write_choke_points() {
        use crate::value::Value;
        let mut c = Catalog::new();
        c.create_table(t("a")).unwrap();
        c.create_table(t("b")).unwrap();
        assert!(c.structural_dirty(), "creation is structural");
        c.mark_checkpointed();
        assert!(!c.structural_dirty());
        assert!(c.dirty_table_names().is_empty());

        let e0 = c.table("a").unwrap().content_epoch();
        c.table_mut("a").unwrap().insert(vec![Value::Int(1)]).unwrap();
        c.table_mut("a").unwrap().insert(vec![Value::Int(2)]).unwrap();
        assert_eq!(c.dirty_table_names(), vec!["a".to_string()], "b untouched");
        assert!(c.table("a").unwrap().content_epoch() > e0, "content epoch advanced");
        assert!(!c.structural_dirty(), "CRUD is not structural");

        c.mark_checkpointed();
        assert!(c.dirty_table_names().is_empty());
        c.drop_table("b").unwrap();
        assert!(c.structural_dirty(), "drop is structural");

        // Factorized structures are tracked in their own set.
        let left = TableSchema::new("l", vec![Column::not_null("lid", DataType::Int)], vec![0]);
        let right = TableSchema::new("r", vec![Column::not_null("rid", DataType::Int)], vec![0]);
        c.create_factorized("f", FactorizedTable::new("f", left, right)).unwrap();
        c.mark_checkpointed();
        c.factorized_mut("f").unwrap().insert_left(vec![Value::Int(1)]).unwrap();
        assert_eq!(c.dirty_factorized_names(), vec!["f".to_string()]);
        assert!(c.dirty_table_names().is_empty());
    }

    #[test]
    fn table_names_sorted() {
        let mut c = Catalog::new();
        c.create_table(t("zeta")).unwrap();
        c.create_table(t("alpha")).unwrap();
        assert_eq!(c.table_names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
