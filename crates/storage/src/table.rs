//! Slotted row tables with primary-key enforcement and secondary indexes.

use crate::error::{StorageError, StorageResult};
use crate::index::{HashIndex, IndexKind, SecondaryIndex};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::stats::TableStats;
use crate::value::Value;

/// An in-memory table.
///
/// Rows live in stable slots: deleting a row tombstones its slot and the
/// slot is recycled by a later insert, so [`RowId`]s held by indexes remain
/// valid for live rows. The primary key (if declared in the schema) is
/// enforced with a unique hash index that is maintained on every mutation.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Option<Row>>,
    free: Vec<u64>,
    live: usize,
    pk_index: Option<HashIndex>,
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Create an empty table. A primary-key index is created automatically
    /// when the schema declares key columns.
    pub fn new(schema: TableSchema) -> Table {
        let pk_index = if schema.primary_key.is_empty() { None } else { Some(HashIndex::new()) };
        Table { schema, rows: Vec::new(), free: Vec::new(), live: 0, pk_index, indexes: Vec::new() }
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a validated row; returns its id. The stored representation is
    /// canonicalized (Ints bound for Float columns widen to `Value::Float`,
    /// see [`TableSchema::canonicalize_row`]) so join/group/index keys over
    /// a column always share one physical type.
    pub fn insert(&mut self, mut row: Row) -> StorageResult<RowId> {
        self.schema.validate_row(&row)?;
        self.schema.canonicalize_row(&mut row);
        if let Some(key) = self.schema.key_of(&row) {
            let pk = self.pk_index.as_ref().expect("pk index exists when key declared");
            if !pk.get(&key).is_empty() {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: key.to_string(),
                });
            }
        }
        let rid = match self.free.pop() {
            Some(slot) => {
                self.rows[slot as usize] = Some(row);
                RowId(slot)
            }
            None => {
                self.rows.push(Some(row));
                RowId(self.rows.len() as u64 - 1)
            }
        };
        self.live += 1;
        let row_ref = self.rows[rid.idx()].as_ref().expect("just inserted");
        if let Some(key) = self.schema.key_of(row_ref) {
            self.pk_index.as_mut().expect("pk index").insert(key, rid);
        }
        // Borrow juggling: clone the row for index maintenance to keep the
        // hot path simple; secondary indexes are rare on write-heavy tables.
        if !self.indexes.is_empty() {
            let row_clone = row_ref.clone();
            for idx in &mut self.indexes {
                idx.insert(&row_clone, rid);
            }
        }
        Ok(rid)
    }

    /// Fetch a live row.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(rid.idx()).and_then(|r| r.as_ref())
    }

    /// Replace a live row in place (same slot, indexes maintained).
    /// Returns the previous contents. Canonicalizes like [`Table::insert`].
    pub fn update(&mut self, rid: RowId, mut new_row: Row) -> StorageResult<Row> {
        self.schema.validate_row(&new_row)?;
        self.schema.canonicalize_row(&mut new_row);
        let old = self
            .rows
            .get(rid.idx())
            .and_then(|r| r.as_ref())
            .cloned()
            .ok_or_else(|| StorageError::RowNotFound { table: self.schema.name.clone(), row: rid.0 })?;
        // Primary-key change must stay unique.
        let old_key = self.schema.key_of(&old);
        let new_key = self.schema.key_of(&new_row);
        if let (Some(ok), Some(nk)) = (&old_key, &new_key) {
            if ok != nk {
                let pk = self.pk_index.as_ref().expect("pk index");
                if !pk.get(nk).is_empty() {
                    return Err(StorageError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: nk.to_string(),
                    });
                }
            }
        }
        if let Some(pk) = self.pk_index.as_mut() {
            if let Some(ok) = &old_key {
                pk.remove(ok, rid);
            }
            if let Some(nk) = new_key {
                pk.insert(nk, rid);
            }
        }
        for idx in &mut self.indexes {
            idx.remove(&old, rid);
            idx.insert(&new_row, rid);
        }
        self.rows[rid.idx()] = Some(new_row);
        Ok(old)
    }

    /// Delete a live row; returns its contents.
    pub fn delete(&mut self, rid: RowId) -> StorageResult<Row> {
        let row = self
            .rows
            .get_mut(rid.idx())
            .and_then(Option::take)
            .ok_or_else(|| StorageError::RowNotFound { table: self.schema.name.clone(), row: rid.0 })?;
        self.free.push(rid.0);
        self.live -= 1;
        if let Some(key) = self.schema.key_of(&row) {
            self.pk_index.as_mut().expect("pk index").remove(&key, rid);
        }
        for idx in &mut self.indexes {
            idx.remove(&row, rid);
        }
        Ok(row)
    }

    /// Re-insert a previously deleted row into a specific slot (transaction
    /// rollback support). The slot must be free. The row is canonicalized
    /// like [`Table::insert`] so restored state is physically identical to
    /// freshly ingested state.
    pub(crate) fn restore(&mut self, rid: RowId, mut row: Row) -> StorageResult<()> {
        if self.rows.get(rid.idx()).map(|r| r.is_some()).unwrap_or(true) {
            return Err(StorageError::Internal(format!(
                "restore into occupied or out-of-range slot {rid} of '{}'",
                self.schema.name
            )));
        }
        self.schema.canonicalize_row(&mut row);
        if let Some(pos) = self.free.iter().position(|s| *s == rid.0) {
            self.free.swap_remove(pos);
        }
        self.rows[rid.idx()] = Some(row);
        self.live += 1;
        let row_ref = self.rows[rid.idx()].as_ref().expect("just restored").clone();
        if let Some(key) = self.schema.key_of(&row_ref) {
            self.pk_index.as_mut().expect("pk index").insert(key, rid);
        }
        for idx in &mut self.indexes {
            idx.insert(&row_ref, rid);
        }
        Ok(())
    }

    /// Place a row into an exact slot, growing the slot vector with
    /// tombstones as needed (WAL redo support: rows must land at the ids
    /// the log recorded, which free-list replay cannot guarantee because
    /// rolled-back transactions never reach the log). The caller is
    /// expected to call [`Table::rebuild_free`] once after replay.
    pub(crate) fn place_at(&mut self, rid: RowId, row: Row) -> StorageResult<()> {
        if rid.idx() >= self.rows.len() {
            self.rows.resize(rid.idx() + 1, None);
        }
        self.restore(rid, row)
    }

    /// Recompute the free list from the slot vector (after WAL redo, which
    /// places rows at exact slots rather than popping the free list).
    pub(crate) fn rebuild_free(&mut self) {
        self.free = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i as u64))
            .collect();
    }

    /// Raw slot vector (live rows and tombstones), for checkpointing. The
    /// snapshot must preserve slot positions exactly so that [`RowId`]s in
    /// the WAL suffix and in factorized link vectors stay valid.
    pub(crate) fn slots(&self) -> &[Option<Row>] {
        &self.rows
    }

    /// Rebuild a table from a checkpointed slot vector: rows are validated,
    /// canonicalized, and indexed; the free list is derived from the
    /// tombstone positions.
    pub(crate) fn from_slots(schema: TableSchema, slots: Vec<Option<Row>>) -> StorageResult<Table> {
        let mut t = Table::new(schema);
        t.rows = vec![None; slots.len()];
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some(row) = slot {
                t.schema.validate_row(&row)?;
                t.restore(RowId(i as u64), row)?;
            }
        }
        t.rebuild_free();
        Ok(t)
    }

    /// Number of physical slots (live rows plus tombstones). Slot indexes
    /// `0..slot_count()` partition the table into contiguous ranges, which
    /// is what morsel-driven executors hand out to worker threads.
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterate the live rows whose slots fall in `range` (a morsel). The
    /// iterator borrows the table, so callers stream rows without cloning.
    /// Out-of-range bounds are clamped.
    pub fn scan_slots(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = (RowId, &Row)> {
        let end = range.end.min(self.rows.len());
        let start = range.start.min(end);
        self.rows[start..end]
            .iter()
            .enumerate()
            .filter_map(move |(i, r)| r.as_ref().map(move |row| (RowId((start + i) as u64), row)))
    }

    /// Iterate live rows with their ids.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.scan_slots(0..self.rows.len())
    }

    /// Materialize all live rows (cloned).
    pub fn all_rows(&self) -> Vec<Row> {
        self.scan().map(|(_, r)| r.clone()).collect()
    }

    /// Primary-key point lookup.
    pub fn lookup_pk(&self, key: &Value) -> Option<(RowId, &Row)> {
        let pk = self.pk_index.as_ref()?;
        let rid = *pk.get(key).first()?;
        self.get(rid).map(|r| (rid, r))
    }

    /// Create a named secondary index over the given columns and backfill it.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
    ) -> StorageResult<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(StorageError::IndexExists(name));
        }
        for &c in &columns {
            if c >= self.schema.arity() {
                return Err(StorageError::ColumnNotFound {
                    table: self.schema.name.clone(),
                    column: format!("#{c}"),
                });
            }
        }
        let mut idx = SecondaryIndex::new(name, columns, kind);
        for (rid, row) in self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (RowId(i as u64), row)))
        {
            idx.insert(row, rid);
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drop a secondary index by name.
    pub fn drop_index(&mut self, name: &str) -> StorageResult<()> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name == name)
            .ok_or_else(|| StorageError::IndexNotFound(name.to_string()))?;
        self.indexes.remove(pos);
        Ok(())
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        &self.indexes
    }

    /// Find a secondary index whose key is exactly `columns` (in order), or
    /// the primary key if it matches. Returns the rows for `key`.
    pub fn index_lookup(&self, columns: &[usize], key: &Value) -> Option<Vec<(RowId, &Row)>> {
        if columns == self.schema.primary_key.as_slice() && self.pk_index.is_some() {
            return Some(self.lookup_pk(key).into_iter().collect());
        }
        let idx = self.indexes.iter().find(|i| i.columns == columns)?;
        Some(
            idx.lookup(key)
                .into_iter()
                .filter_map(|rid| self.get(rid).map(|r| (rid, r)))
                .collect(),
        )
    }

    /// Does an equality-capable index exist on exactly these columns?
    pub fn has_index_on(&self, columns: &[usize]) -> bool {
        (!self.schema.primary_key.is_empty() && columns == self.schema.primary_key.as_slice())
            || self.indexes.iter().any(|i| i.columns == columns)
    }

    /// Compute fresh statistics over the live rows.
    pub fn compute_stats(&self) -> TableStats {
        TableStats::compute(self.scan().map(|(_, r)| r.as_slice()), self.schema.arity())
    }

    /// Remove all rows (indexes cleared too). Schema is kept.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.free.clear();
        self.live = 0;
        if let Some(pk) = &mut self.pk_index {
            *pk = HashIndex::new();
        }
        let specs: Vec<(String, Vec<usize>, IndexKind)> = self
            .indexes
            .iter()
            .map(|i| (i.name.clone(), i.columns.clone(), i.kind()))
            .collect();
        self.indexes.clear();
        for (name, cols, kind) in specs {
            let _ = self.create_index(name, cols, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn people() -> Table {
        Table::new(TableSchema::new(
            "people",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("age", DataType::Int),
            ],
            vec![0],
        ))
    }

    fn row(id: i64, name: &str, age: i64) -> Row {
        vec![Value::Int(id), Value::str(name), Value::Int(age)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        assert_eq!(t.get(rid).unwrap()[1], Value::str("ada"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = people();
        t.insert(row(1, "ada", 36)).unwrap();
        assert!(matches!(t.insert(row(1, "bob", 20)), Err(StorageError::DuplicateKey { .. })));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_frees_slot_and_reuses_it() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        let old = t.delete(r1).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.len(), 1);
        let r3 = t.insert(row(3, "eve", 25)).unwrap();
        assert_eq!(r3, r1, "freed slot is recycled");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pk_lookup_follows_updates() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        t.update(rid, row(5, "ada", 37)).unwrap();
        assert!(t.lookup_pk(&Value::Int(1)).is_none());
        let (_, r) = t.lookup_pk(&Value::Int(5)).unwrap();
        assert_eq!(r[2], Value::Int(37));
    }

    #[test]
    fn update_to_existing_key_rejected() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        assert!(matches!(t.update(rid, row(2, "ada", 36)), Err(StorageError::DuplicateKey { .. })));
        // Unchanged on failure.
        assert_eq!(t.lookup_pk(&Value::Int(1)).unwrap().1[1], Value::str("ada"));
    }

    #[test]
    fn secondary_index_maintained_across_mutations() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 36)).unwrap();
        t.create_index("by_age", vec![2], IndexKind::Hash).unwrap();
        assert_eq!(t.index_lookup(&[2], &Value::Int(36)).unwrap().len(), 2);
        t.update(r1, row(1, "ada", 40)).unwrap();
        assert_eq!(t.index_lookup(&[2], &Value::Int(36)).unwrap().len(), 1);
        assert_eq!(t.index_lookup(&[2], &Value::Int(40)).unwrap().len(), 1);
        t.delete(r1).unwrap();
        assert!(t.index_lookup(&[2], &Value::Int(40)).unwrap().is_empty());
    }

    #[test]
    fn restore_undoes_delete_exactly() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        let old = t.delete(rid).unwrap();
        t.restore(rid, old).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.lookup_pk(&Value::Int(1)).is_some());
        assert!(t.restore(rid, row(1, "x", 0)).is_err(), "occupied slot rejected");
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        t.delete(r1).unwrap();
        let ids: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn scan_slots_partitions_scan() {
        let mut t = people();
        for i in 0..10 {
            t.insert(row(i, "p", i)).unwrap();
        }
        t.delete(RowId(4)).unwrap();
        let full: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        let mut pieced = Vec::new();
        for start in (0..t.slot_count()).step_by(3) {
            pieced.extend(
                t.scan_slots(start..start + 3).map(|(_, r)| r[0].as_int().unwrap()),
            );
        }
        assert_eq!(pieced, full, "contiguous slot morsels cover the scan exactly once");
        // Clamped out-of-range morsel is empty, not a panic.
        assert_eq!(t.scan_slots(100..200).count(), 0);
    }

    #[test]
    fn truncate_clears_rows_keeps_indexes() {
        let mut t = people();
        t.create_index("by_age", vec![2], IndexKind::BTree).unwrap();
        t.insert(row(1, "ada", 36)).unwrap();
        t.truncate();
        assert_eq!(t.len(), 0);
        assert!(t.has_index_on(&[2]));
        t.insert(row(1, "ada", 36)).unwrap();
        assert_eq!(t.index_lookup(&[2], &Value::Int(36)).unwrap().len(), 1);
    }

    #[test]
    fn float_column_canonicalizes_int_ingest() {
        let mut t = Table::new(TableSchema::new(
            "m",
            vec![Column::not_null("id", DataType::Int), Column::new("score", DataType::Float)],
            vec![0],
        ));
        let rid = t.insert(vec![Value::Int(1), Value::Int(5)]).unwrap();
        assert!(
            matches!(t.get(rid).unwrap()[1], Value::Float(f) if f == 5.0),
            "Int widened to Float at ingest"
        );
        // Index keys see the canonical representation too.
        t.create_index("by_score", vec![1], IndexKind::Hash).unwrap();
        t.insert(vec![Value::Int(2), Value::Float(5.0)]).unwrap();
        assert_eq!(t.index_lookup(&[1], &Value::Float(5.0)).unwrap().len(), 2);
        // Update path canonicalizes as well.
        t.update(rid, vec![Value::Int(1), Value::Int(7)]).unwrap();
        assert!(matches!(t.get(rid).unwrap()[1], Value::Float(f) if f == 7.0));
    }

    #[test]
    fn stats_reflect_live_rows() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        t.delete(r1).unwrap();
        let stats = t.compute_stats();
        assert_eq!(stats.row_count, 1);
        assert_eq!(stats.columns[0].min, Some(Value::Int(2)));
    }
}
