//! Slotted row tables with primary-key enforcement and secondary indexes.

use crate::buffer_pool::BufferPool;
use crate::column::{Bitmap, ColumnSlice, Columns};
use crate::error::{StorageError, StorageResult};
use crate::index::{HashIndex, IndexKind, SecondaryIndex};
use crate::pages::{page_rows_for, PageData, RowStore, SlotPin};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::stats::{ColumnStats, TableStats, NDV_CAP};
use crate::value::Value;
use rustc_hash::FxHashSet;
use std::hash::Hash;
use std::sync::Arc;

/// An in-memory table.
///
/// Rows live in stable slots: deleting a row tombstones its slot and the
/// slot is recycled by a later insert, so [`RowId`]s held by indexes remain
/// valid for live rows. The primary key (if declared in the schema) is
/// enforced with a unique hash index that is maintained on every mutation.
///
/// Alongside the row-shaped slot vector, every scalar column is mirrored in
/// a typed column vector ([`Columns`]) maintained eagerly by all five write
/// paths (insert / update / delete / restore / truncate — `place_at` and
/// `from_slots` both funnel through `restore`). The row view stays
/// authoritative for WAL, snapshots, CRUD, and the txn undo log; the column
/// view feeds the engine's vectorized kernels and one-pass statistics. The
/// two views are slot-aligned by construction.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    /// The row view, split into fixed-size pages managed by a
    /// [`BufferPool`] (see [`crate::pages`]). Slot indices are unchanged
    /// from the old flat `Vec<Option<Row>>`; only residency is managed.
    rows: RowStore,
    cols: Columns,
    free: Vec<u64>,
    live: usize,
    pk_index: Option<HashIndex>,
    indexes: Vec<SecondaryIndex>,
    /// Catalog epoch of the transaction currently writing this table,
    /// stamped by `Catalog::table_mut` before any mutation (0 for tables
    /// mutated outside a catalog, e.g. during construction or WAL redo).
    write_epoch: u64,
    /// Monotonic content version, bumped by `Catalog::table_mut` every time
    /// a writer checks the table out for mutation. Incremental checkpoints
    /// compare it against the version captured at the last checkpoint to
    /// decide whether the table must be re-serialized into a delta.
    content_epoch: u64,
    /// Per-slot `[created_epoch, deleted_epoch)` visibility interval,
    /// slot-aligned with `rows` and maintained by all five write paths
    /// (insert / update / delete / restore / truncate). A live slot has
    /// `deleted == u64::MAX`. Snapshot isolation itself is structural
    /// (published views hold `Arc`s to immutable table versions); these
    /// stamps make the epoch each slot (dis)appeared in observable, so
    /// tests can assert the `created <= snapshot_epoch < deleted`
    /// invariant against what a pinned snapshot actually sees.
    epochs: Vec<(u64, u64)>,
}

impl Table {
    /// Create an empty table. A primary-key index is created automatically
    /// when the schema declares key columns.
    pub fn new(schema: TableSchema) -> Table {
        Table::with_pool(schema, BufferPool::unbounded())
    }

    /// Create an empty table whose row pages are managed by `pool`.
    /// [`Table::new`] binds the process-wide unbounded pool; the catalog
    /// rebinds tables to its own pool on install (see
    /// `Catalog::reclaim_pages`).
    pub fn with_pool(schema: TableSchema, pool: Arc<BufferPool>) -> Table {
        let pk_index = if schema.primary_key.is_empty() { None } else { Some(HashIndex::new()) };
        let cols = Columns::from_schema(&schema);
        let rows = RowStore::new(schema.arity(), page_rows_for(&schema), pool);
        Table {
            schema,
            rows,
            cols,
            free: Vec::new(),
            live: 0,
            pk_index,
            indexes: Vec::new(),
            write_epoch: 0,
            content_epoch: 0,
            epochs: Vec::new(),
        }
    }

    /// Rebind the row pages to another buffer pool (catalog install and
    /// recovery wiring). No-op when already bound to `pool`.
    pub(crate) fn bind_pool(&mut self, pool: &Arc<BufferPool>) {
        self.rows.rebind(pool);
    }

    /// One clock-sweep reclaim pass over this table's pages (see
    /// `RowStore::reclaim`). Returns pages evicted.
    pub(crate) fn reclaim_pages(&mut self, force: bool) -> StorageResult<usize> {
        self.rows.reclaim(force)
    }

    /// Rows per page of the paged row store (power of two; schema-derived).
    pub fn page_rows(&self) -> usize {
        self.rows.page_rows()
    }

    /// Number of pages currently backing the row store.
    pub fn page_count(&self) -> usize {
        self.rows.page_count()
    }

    /// Monotonic content version (see the field doc). Two observations of
    /// the same table with equal content epochs are guaranteed unchanged;
    /// unequal epochs mean a writer checked the table out in between.
    pub fn content_epoch(&self) -> u64 {
        self.content_epoch
    }

    /// Bump the content version. Called by `Catalog::table_mut` alongside
    /// dirty-set maintenance, before the writer touches any row.
    pub(crate) fn bump_content_epoch(&mut self) {
        self.content_epoch += 1;
    }

    /// Stamp the catalog epoch that subsequent mutations belong to. Called
    /// by `Catalog::table_mut` (the write choke point) so every slot
    /// touched by a transaction records the epoch it was touched in.
    pub(crate) fn set_write_epoch(&mut self, epoch: u64) {
        self.write_epoch = epoch;
    }

    /// The epoch last stamped via [`Table::set_write_epoch`].
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// The `[created, deleted)` epoch interval of a slot, if it was ever
    /// occupied. Live slots report `deleted == u64::MAX`.
    pub fn slot_epochs(&self, slot: usize) -> Option<(u64, u64)> {
        self.epochs.get(slot).copied()
    }

    /// Would `slot` hold a live row in a snapshot pinned at `epoch`?
    /// True iff `created <= epoch < deleted`. This is the visibility
    /// invariant snapshot-isolation tests check; the engine itself never
    /// filters by it (published views are structurally immutable).
    pub fn slot_visible_at(&self, slot: usize, epoch: u64) -> bool {
        self.slot_epochs(slot).is_some_and(|(c, d)| c <= epoch && epoch < d)
    }

    /// Write a slot's epoch interval, growing the stamp vector as needed
    /// (mirrors how `place_at` grows the slot vector during WAL redo).
    fn stamp_slot(&mut self, slot: usize, created: u64, deleted: u64) {
        if slot >= self.epochs.len() {
            self.epochs.resize(slot + 1, (0, 0));
        }
        self.epochs[slot] = (created, deleted);
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a validated row; returns its id. The stored representation is
    /// canonicalized (Ints bound for Float columns widen to `Value::Float`,
    /// see [`TableSchema::canonicalize_row`]) so join/group/index keys over
    /// a column always share one physical type.
    pub fn insert(&mut self, mut row: Row) -> StorageResult<RowId> {
        self.schema.validate_row(&row)?;
        self.schema.canonicalize_row(&mut row);
        if let Some(key) = self.schema.key_of(&row) {
            let pk = self.pk_index.as_ref().expect("pk index exists when key declared");
            if !pk.get(&key).is_empty() {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: key.to_string(),
                });
            }
        }
        let rid = match self.free.pop() {
            Some(slot) => {
                self.rows.set(slot as usize, Some(row));
                RowId(slot)
            }
            None => {
                self.rows.push(Some(row));
                RowId(self.rows.len() as u64 - 1)
            }
        };
        self.live += 1;
        self.stamp_slot(rid.idx(), self.write_epoch, u64::MAX);
        let row_ref = self.rows.get(rid.idx()).expect("just inserted");
        self.cols.set_row(rid.idx(), row_ref);
        if let Some(key) = self.schema.key_of(row_ref) {
            self.pk_index.as_mut().expect("pk index").insert(key, rid);
        }
        // Borrow juggling: clone the row for index maintenance to keep the
        // hot path simple; secondary indexes are rare on write-heavy tables.
        if !self.indexes.is_empty() {
            let row_clone = row_ref.clone();
            for idx in &mut self.indexes {
                idx.insert(&row_clone, rid);
            }
        }
        Ok(rid)
    }

    /// Append a batch of rows at the tail in one shot — the bulk-ingest
    /// fast path. Compared with a loop over [`Table::insert`]:
    ///
    /// - validation, canonicalization, and primary-key checks (against the
    ///   index **and** within the batch) run up front, so a failure leaves
    ///   the table untouched instead of half-ingested;
    /// - the typed column vectors grow once for the whole batch and are
    ///   filled column-at-a-time (dictionary interning batch-at-a-time);
    /// - secondary indexes are extended in one pass at the end, not per row.
    ///
    /// Rows always land in fresh tail slots (`first..first+n`), never in
    /// recycled free-list slots, so the batch is contiguous — which is what
    /// lets the WAL describe it with a single compact `BulkInsert` record.
    /// Returns `(first_slot, row_count)`.
    pub fn bulk_append(&mut self, rows: Vec<Row>) -> StorageResult<(u64, usize)> {
        let mut canon: Vec<Row> = Vec::with_capacity(rows.len());
        let mut batch_keys: FxHashSet<Value> = FxHashSet::default();
        for mut row in rows {
            self.schema.validate_row(&row)?;
            self.schema.canonicalize_row(&mut row);
            if let Some(key) = self.schema.key_of(&row) {
                let pk = self.pk_index.as_ref().expect("pk index exists when key declared");
                if !pk.get(&key).is_empty() || !batch_keys.insert(key.clone()) {
                    return Err(StorageError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: key.to_string(),
                    });
                }
            }
            canon.push(row);
        }
        let first = self.rows.len();
        let n = canon.len();
        if n == 0 {
            return Ok((first as u64, 0));
        }
        self.cols.append_rows(first, &canon);
        for row in canon {
            self.rows.push(Some(row));
        }
        self.live += n;
        if self.epochs.len() < first + n {
            self.epochs.resize(first + n, (0, 0));
        }
        let epoch = self.write_epoch;
        for stamp in &mut self.epochs[first..first + n] {
            *stamp = (epoch, u64::MAX);
        }
        for slot in first..first + n {
            let rid = RowId(slot as u64);
            let row = self.rows.get(slot).expect("just appended");
            if let Some(key) = self.schema.key_of(row) {
                self.pk_index.as_mut().expect("pk index").insert(key, rid);
            }
            for idx in &mut self.indexes {
                idx.insert(row, rid);
            }
        }
        Ok((first as u64, n))
    }

    /// Fetch a live row (faulting its page in if evicted).
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(rid.idx())
    }

    /// Replace a live row in place (same slot, indexes maintained).
    /// Returns the previous contents. Canonicalizes like [`Table::insert`].
    pub fn update(&mut self, rid: RowId, mut new_row: Row) -> StorageResult<Row> {
        self.schema.validate_row(&new_row)?;
        self.schema.canonicalize_row(&mut new_row);
        let old = self
            .rows
            .get(rid.idx())
            .cloned()
            .ok_or_else(|| StorageError::RowNotFound { table: self.schema.name.clone(), row: rid.0 })?;
        // Primary-key change must stay unique.
        let old_key = self.schema.key_of(&old);
        let new_key = self.schema.key_of(&new_row);
        if let (Some(ok), Some(nk)) = (&old_key, &new_key) {
            if ok != nk {
                let pk = self.pk_index.as_ref().expect("pk index");
                if !pk.get(nk).is_empty() {
                    return Err(StorageError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: nk.to_string(),
                    });
                }
            }
        }
        if let Some(pk) = self.pk_index.as_mut() {
            if let Some(ok) = &old_key {
                pk.remove(ok, rid);
            }
            if let Some(nk) = new_key {
                pk.insert(nk, rid);
            }
        }
        for idx in &mut self.indexes {
            idx.remove(&old, rid);
            idx.insert(&new_row, rid);
        }
        self.cols.set_row(rid.idx(), &new_row);
        self.rows.set(rid.idx(), Some(new_row));
        // An in-place update is a new row version: it becomes visible from
        // the writing epoch onward (snapshots pinned earlier hold the old
        // table version and never see it).
        self.stamp_slot(rid.idx(), self.write_epoch, u64::MAX);
        Ok(old)
    }

    /// Delete a live row; returns its contents.
    pub fn delete(&mut self, rid: RowId) -> StorageResult<Row> {
        let row = self
            .rows
            .take(rid.idx())
            .ok_or_else(|| StorageError::RowNotFound { table: self.schema.name.clone(), row: rid.0 })?;
        self.free.push(rid.0);
        self.live -= 1;
        if let Some(stamp) = self.epochs.get_mut(rid.idx()) {
            stamp.1 = self.write_epoch;
        }
        self.cols.clear_slot(rid.idx());
        if let Some(key) = self.schema.key_of(&row) {
            self.pk_index.as_mut().expect("pk index").remove(&key, rid);
        }
        for idx in &mut self.indexes {
            idx.remove(&row, rid);
        }
        Ok(row)
    }

    /// Re-insert a previously deleted row into a specific slot (transaction
    /// rollback support). The slot must be free. The row is canonicalized
    /// like [`Table::insert`] so restored state is physically identical to
    /// freshly ingested state.
    pub(crate) fn restore(&mut self, rid: RowId, mut row: Row) -> StorageResult<()> {
        if rid.idx() >= self.rows.len() || self.rows.get(rid.idx()).is_some() {
            return Err(StorageError::Internal(format!(
                "restore into occupied or out-of-range slot {rid} of '{}'",
                self.schema.name
            )));
        }
        self.schema.canonicalize_row(&mut row);
        if let Some(pos) = self.free.iter().position(|s| *s == rid.0) {
            self.free.swap_remove(pos);
        }
        self.rows.set(rid.idx(), Some(row));
        self.live += 1;
        self.stamp_slot(rid.idx(), self.write_epoch, u64::MAX);
        let row_ref = self.rows.get(rid.idx()).expect("just restored").clone();
        self.cols.set_row(rid.idx(), &row_ref);
        if let Some(key) = self.schema.key_of(&row_ref) {
            self.pk_index.as_mut().expect("pk index").insert(key, rid);
        }
        for idx in &mut self.indexes {
            idx.insert(&row_ref, rid);
        }
        Ok(())
    }

    /// Place a row into an exact slot, growing the slot vector with
    /// tombstones as needed (WAL redo support: rows must land at the ids
    /// the log recorded, which free-list replay cannot guarantee because
    /// rolled-back transactions never reach the log). The caller is
    /// expected to call [`Table::rebuild_free`] once after replay.
    pub(crate) fn place_at(&mut self, rid: RowId, row: Row) -> StorageResult<()> {
        if rid.idx() >= self.rows.len() {
            let want = rid.idx().checked_add(1).ok_or_else(|| {
                StorageError::Corrupt(format!("row id {rid} overflows the slot space"))
            })?;
            self.rows.resize_none(want);
        }
        self.restore(rid, row)
    }

    /// Recompute the free list from the slot vector (after WAL redo, which
    /// places rows at exact slots rather than popping the free list).
    pub(crate) fn rebuild_free(&mut self) {
        let mut free = Vec::new();
        for (first, page) in self.rows.page_pins() {
            for (i, slot) in page.iter().enumerate() {
                if slot.is_none() {
                    free.push((first + i) as u64);
                }
            }
        }
        self.free = free;
    }

    /// Materialized slot vector (live rows and tombstones), for tests and
    /// snapshot round-trips. The snapshot must preserve slot positions
    /// exactly so that [`RowId`]s in the WAL suffix and in factorized link
    /// vectors stay valid. Checkpoint encoding itself streams page by page
    /// via [`Table::page_pins`] instead of materializing this vector.
    #[cfg(test)]
    pub(crate) fn slots_vec(&self) -> Vec<Option<Row>> {
        self.rows.slots_vec()
    }

    /// Transient pins over every page, in slot order, tagged with the first
    /// slot index each page covers. Pages evicted to the spill store are
    /// decoded without being re-installed as resident, so a full-table walk
    /// stays within the frame budget.
    pub(crate) fn page_pins(&self) -> impl Iterator<Item = (usize, Arc<PageData>)> + '_ {
        self.rows.page_pins()
    }

    /// Pin the pages covering `range` and return an owning handle whose
    /// rows can be borrowed without touching the table again (morsel
    /// execution: one pin per morsel, dropped when the morsel completes).
    /// Bounds behave exactly like [`Table::scan_slots`]: the end is
    /// clamped, a start past the end yields an empty pin.
    pub fn pin_slots(&self, range: std::ops::Range<usize>) -> SlotPin {
        self.rows.pin(range.start, range.end)
    }

    /// Rebuild a table from a checkpointed slot vector: rows are validated,
    /// canonicalized, and indexed; the free list is derived from the
    /// tombstone positions. Production decoding streams slots one at a time
    /// through [`Table::load_slot`] instead; this materialized-vector form
    /// exists for round-trip tests.
    #[cfg(test)]
    pub(crate) fn from_slots(schema: TableSchema, slots: Vec<Option<Row>>) -> StorageResult<Table> {
        let mut t = Table::new(schema);
        for slot in slots {
            t.load_slot(slot)?;
        }
        t.rebuild_free();
        Ok(t)
    }

    /// Append one checkpointed slot (row or tombstone) at the next slot
    /// index: the streaming unit of the snapshot decoder. The caller is
    /// expected to run [`Table::rebuild_free`] once after the last slot.
    pub(crate) fn load_slot(&mut self, slot: Option<Row>) -> StorageResult<()> {
        let i = self.rows.len();
        match slot {
            None => self.rows.push(None),
            Some(mut row) => {
                self.schema.validate_row(&row)?;
                self.schema.canonicalize_row(&mut row);
                self.rows.push(Some(row));
                self.live += 1;
                self.stamp_slot(i, self.write_epoch, u64::MAX);
                let rid = RowId(i as u64);
                let row_ref = self.rows.get(i).expect("just loaded").clone();
                self.cols.set_row(i, &row_ref);
                if let Some(key) = self.schema.key_of(&row_ref) {
                    self.pk_index.as_mut().expect("key_of implies pk index").insert(key, rid);
                }
                for idx in &mut self.indexes {
                    idx.insert(&row_ref, rid);
                }
            }
        }
        Ok(())
    }

    /// Number of physical slots (live rows plus tombstones). Slot indexes
    /// `0..slot_count()` partition the table into contiguous ranges, which
    /// is what morsel-driven executors hand out to worker threads.
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterate the live rows whose slots fall in `range` (a morsel). The
    /// iterator borrows the table, so callers stream rows without cloning.
    ///
    /// # Bounds
    ///
    /// `range.end` may overshoot [`Table::slot_count`] — the final morsel of
    /// a fixed-size partition legitimately does — and is clamped. A
    /// `range.start` beyond `slot_count`, however, is caller off-by-one
    /// morsel math (a partition scheme can never produce one): it yields an
    /// empty iterator in release builds but panics under `debug_assertions`
    /// so kernel code cannot silently mask the bug.
    pub fn scan_slots(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = (RowId, &Row)> {
        debug_assert!(
            range.start <= self.rows.len(),
            "scan_slots range starts at {} but '{}' has only {} slots",
            range.start,
            self.schema.name,
            self.rows.len()
        );
        self.rows
            .iter_range(range.start, range.end)
            .map(|(i, row)| (RowId(i as u64), row))
    }

    /// Iterate live rows with their ids.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.scan_slots(0..self.rows.len())
    }

    /// Column-major view of the table: typed vectors per scalar column plus
    /// the live-slot bitmap, slot-aligned with the row view. Array/struct
    /// columns have no typed vector (`Columns::slice` returns `None`);
    /// readers fall back to [`Table::get`] for those.
    pub fn columns(&self) -> &Columns {
        &self.cols
    }

    /// Typed read view of one column (`None` for array/struct columns).
    /// Shorthand for `self.columns().slice(col)`.
    pub fn column_slice(&self, col: usize) -> Option<ColumnSlice<'_>> {
        self.cols.slice(col)
    }

    /// Live-slot bitmap: bit `i` is set iff slot `i` holds a live row.
    /// Bits beyond the column view's length read as unset (trailing
    /// tombstones may leave the bitmap shorter than [`Table::slot_count`]).
    pub fn live_slots(&self) -> &Bitmap {
        self.cols.live()
    }

    /// Materialize all live rows (cloned).
    pub fn all_rows(&self) -> Vec<Row> {
        self.scan().map(|(_, r)| r.clone()).collect()
    }

    /// Primary-key point lookup.
    pub fn lookup_pk(&self, key: &Value) -> Option<(RowId, &Row)> {
        let pk = self.pk_index.as_ref()?;
        let rid = *pk.get(key).first()?;
        self.get(rid).map(|r| (rid, r))
    }

    /// Create a named secondary index over the given columns and backfill it.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
    ) -> StorageResult<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(StorageError::IndexExists(name));
        }
        for &c in &columns {
            if c >= self.schema.arity() {
                return Err(StorageError::ColumnNotFound {
                    table: self.schema.name.clone(),
                    column: format!("#{c}"),
                });
            }
        }
        let mut idx = SecondaryIndex::new(name, columns, kind);
        for (first, page) in self.rows.page_pins() {
            for (i, slot) in page.iter().enumerate() {
                if let Some(row) = slot {
                    idx.insert(row, RowId((first + i) as u64));
                }
            }
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drop a secondary index by name.
    pub fn drop_index(&mut self, name: &str) -> StorageResult<()> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name == name)
            .ok_or_else(|| StorageError::IndexNotFound(name.to_string()))?;
        self.indexes.remove(pos);
        Ok(())
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[SecondaryIndex] {
        &self.indexes
    }

    /// Find a secondary index whose key is exactly `columns` (in order), or
    /// the primary key if it matches. Returns the rows for `key`.
    pub fn index_lookup(&self, columns: &[usize], key: &Value) -> Option<Vec<(RowId, &Row)>> {
        if columns == self.schema.primary_key.as_slice() && self.pk_index.is_some() {
            return Some(self.lookup_pk(key).into_iter().collect());
        }
        let idx = self.indexes.iter().find(|i| i.columns == columns)?;
        Some(
            idx.lookup(key)
                .into_iter()
                .filter_map(|rid| self.get(rid).map(|r| (rid, r)))
                .collect(),
        )
    }

    /// Does an equality-capable index exist on exactly these columns?
    pub fn has_index_on(&self, columns: &[usize]) -> bool {
        (!self.schema.primary_key.is_empty() && columns == self.schema.primary_key.as_slice())
            || self.indexes.iter().any(|i| i.columns == columns)
    }

    /// Compute fresh statistics in one pass over the typed column vectors.
    ///
    /// Produces exactly what [`TableStats::compute`] produces over the live
    /// rows — same NDV saturation at the cap, same total-order min/max
    /// (floats by `total_cmp`), same width accumulation order — but without
    /// materializing or re-matching row cells: Int/Float/Bool columns hash
    /// raw scalars, and dictionary-encoded text columns get NDV for free
    /// from a per-code presence vector. Array/struct columns (no typed
    /// vector) fall back to a row pass for that column only.
    pub fn compute_stats(&self) -> TableStats {
        let row_count = self.live as u64;
        let slot_count = self.rows.len();
        let live = self.cols.live();
        let mut columns = Vec::with_capacity(self.schema.arity());
        let mut total_bytes = 0u64;
        for c in 0..self.schema.arity() {
            let (stats, bytes) = match self.cols.slice(c) {
                Some(ColumnSlice::Int { data, valid }) => typed_column_stats(
                    live,
                    valid,
                    slot_count,
                    row_count,
                    |i| (8, data[i]),
                    |a, b| a < b,
                    |k| Value::Int(*k),
                ),
                // Floats key NDV by bit pattern: `Value` equality over
                // floats is `total_cmp == Equal`, which holds iff the bits
                // match, so the u64 set has identical cardinality.
                Some(ColumnSlice::Float { data, valid }) => typed_column_stats(
                    live,
                    valid,
                    slot_count,
                    row_count,
                    |i| (8, data[i].to_bits()),
                    |a, b| f64::from_bits(*a).total_cmp(&f64::from_bits(*b)).is_lt(),
                    |k| Value::Float(f64::from_bits(*k)),
                ),
                Some(ColumnSlice::Bool { data, valid }) => typed_column_stats(
                    live,
                    valid,
                    slot_count,
                    row_count,
                    |i| (1, data[i]),
                    |a, b| !*a & *b,
                    |k| Value::Bool(*k),
                ),
                Some(ColumnSlice::Str { codes, valid, dict }) => {
                    dict_column_stats(live, valid, codes, dict, slot_count, row_count)
                }
                None => self.row_column_stats(c, row_count),
            };
            total_bytes += bytes;
            columns.push(stats);
        }
        TableStats { row_count, columns, total_bytes }
    }

    /// Row-pass statistics for one array/struct column (no typed vector).
    /// Mirrors the per-cell bookkeeping of [`TableStats::compute`].
    fn row_column_stats(&self, col: usize, row_count: u64) -> (ColumnStats, u64) {
        let mut out = ColumnStats::default();
        let mut bytes = 0u64;
        let mut width_sum = 0f64;
        let mut arr_sum = 0f64;
        let mut arr_count = 0u64;
        let mut set: FxHashSet<&Value> = FxHashSet::default();
        let mut saturated = false;
        for (_, row) in self.scan() {
            let v = &row[col];
            let sz = v.approx_size();
            bytes += sz as u64;
            width_sum += sz as f64;
            if v.is_null() {
                out.null_count += 1;
                continue;
            }
            if let Value::Array(vs) = v {
                arr_sum += vs.len() as f64;
                arr_count += 1;
            }
            match (&out.min, v) {
                (None, v) => out.min = Some(v.clone()),
                (Some(m), v) if v < m => out.min = Some(v.clone()),
                _ => {}
            }
            match (&out.max, v) {
                (None, v) => out.max = Some(v.clone()),
                (Some(m), v) if v > m => out.max = Some(v.clone()),
                _ => {}
            }
            if !saturated {
                set.insert(v);
                if set.len() >= NDV_CAP {
                    saturated = true;
                }
            }
        }
        out.ndv = set.len() as u64;
        out.avg_width = if row_count > 0 { width_sum / row_count as f64 } else { 0.0 };
        out.avg_array_len = if arr_count > 0 { arr_sum / arr_count as f64 } else { 0.0 };
        (out, bytes)
    }

    /// Remove all rows (indexes cleared too). Schema is kept.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.cols.reset();
        self.free.clear();
        self.epochs.clear();
        self.live = 0;
        if let Some(pk) = &mut self.pk_index {
            *pk = HashIndex::new();
        }
        let specs: Vec<(String, Vec<usize>, IndexKind)> = self
            .indexes
            .iter()
            .map(|i| (i.name.clone(), i.columns.clone(), i.kind()))
            .collect();
        self.indexes.clear();
        for (name, cols, kind) in specs {
            let _ = self.create_index(name, cols, kind);
        }
    }
}

/// One-pass statistics over a typed scalar column. Generic over the raw
/// key type `K` (i64 / f64-bits / bool) so Int, Float, and Bool columns
/// share the loop; `cell(slot)` yields the value's byte width and key,
/// `lt` is the column's total order, `to_value` lifts a key back into a
/// [`Value`] for the min/max fields.
fn typed_column_stats<K: Copy + Eq + Hash>(
    live: &Bitmap,
    valid: &Bitmap,
    slot_count: usize,
    row_count: u64,
    mut cell: impl FnMut(usize) -> (u64, K),
    mut lt: impl FnMut(&K, &K) -> bool,
    to_value: impl Fn(&K) -> Value,
) -> (ColumnStats, u64) {
    let mut out = ColumnStats::default();
    let mut bytes = 0u64;
    let mut width_sum = 0f64;
    let mut set: FxHashSet<K> = FxHashSet::default();
    let mut saturated = false;
    let mut min: Option<K> = None;
    let mut max: Option<K> = None;
    for slot in 0..slot_count {
        if !live.get(slot) {
            continue;
        }
        if !valid.get(slot) {
            out.null_count += 1;
            bytes += 1;
            width_sum += 1.0;
            continue;
        }
        let (w, k) = cell(slot);
        bytes += w;
        width_sum += w as f64;
        match &min {
            None => min = Some(k),
            Some(m) if lt(&k, m) => min = Some(k),
            _ => {}
        }
        match &max {
            None => max = Some(k),
            Some(m) if lt(m, &k) => max = Some(k),
            _ => {}
        }
        if !saturated {
            set.insert(k);
            if set.len() >= NDV_CAP {
                saturated = true;
            }
        }
    }
    out.ndv = set.len() as u64;
    out.avg_width = if row_count > 0 { width_sum / row_count as f64 } else { 0.0 };
    out.min = min.as_ref().map(&to_value);
    out.max = max.as_ref().map(&to_value);
    (out, bytes)
}

/// One-pass statistics over a dictionary-encoded text column: NDV comes
/// free from a per-code presence vector (no hashing of string payloads),
/// min/max compare the dictionary strings behind the codes.
fn dict_column_stats(
    live: &Bitmap,
    valid: &Bitmap,
    codes: &[u32],
    dict: &crate::column::StringDict,
    slot_count: usize,
    row_count: u64,
) -> (ColumnStats, u64) {
    let mut out = ColumnStats::default();
    let mut bytes = 0u64;
    let mut width_sum = 0f64;
    let mut present = vec![false; dict.len()];
    let mut live_codes = 0usize;
    let mut min: Option<u32> = None;
    let mut max: Option<u32> = None;
    for (slot, &code) in codes.iter().enumerate().take(slot_count) {
        if !live.get(slot) {
            continue;
        }
        if !valid.get(slot) {
            out.null_count += 1;
            bytes += 1;
            width_sum += 1.0;
            continue;
        }
        let s = dict.get(code);
        let w = 16 + s.len() as u64;
        bytes += w;
        width_sum += w as f64;
        if !present[code as usize] {
            present[code as usize] = true;
            live_codes += 1;
        }
        match min {
            None => min = Some(code),
            Some(m) if s.as_ref() < dict.get(m).as_ref() => min = Some(code),
            _ => {}
        }
        match max {
            None => max = Some(code),
            Some(m) if s.as_ref() > dict.get(m).as_ref() => max = Some(code),
            _ => {}
        }
    }
    out.ndv = live_codes.min(NDV_CAP) as u64;
    out.avg_width = if row_count > 0 { width_sum / row_count as f64 } else { 0.0 };
    out.min = min.map(|c| Value::Str(std::sync::Arc::clone(dict.get(c))));
    out.max = max.map(|c| Value::Str(std::sync::Arc::clone(dict.get(c))));
    (out, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn people() -> Table {
        Table::new(TableSchema::new(
            "people",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("age", DataType::Int),
            ],
            vec![0],
        ))
    }

    fn row(id: i64, name: &str, age: i64) -> Row {
        vec![Value::Int(id), Value::str(name), Value::Int(age)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        assert_eq!(t.get(rid).unwrap()[1], Value::str("ada"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = people();
        t.insert(row(1, "ada", 36)).unwrap();
        assert!(matches!(t.insert(row(1, "bob", 20)), Err(StorageError::DuplicateKey { .. })));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bulk_append_matches_per_row_insert() {
        let mut a = people();
        let mut b = people();
        let rows: Vec<Row> = (0..50).map(|i| row(i, "p", i % 7)).collect();
        for r in rows.clone() {
            a.insert(r).unwrap();
        }
        b.set_write_epoch(4);
        let (first, n) = b.bulk_append(rows).unwrap();
        assert_eq!((first, n), (0, 50));
        assert_eq!(a.all_rows(), b.all_rows());
        assert_eq!(a.compute_stats(), b.compute_stats());
        assert_eq!(b.lookup_pk(&Value::Int(17)).unwrap().1[0], Value::Int(17));
        assert_eq!(b.slot_epochs(17), Some((4, u64::MAX)), "batch slots carry the write epoch");
    }

    #[test]
    fn bulk_append_rejects_duplicates_atomically() {
        let mut t = people();
        t.insert(row(1, "ada", 36)).unwrap();
        // Duplicate against the existing primary-key index ...
        assert!(matches!(
            t.bulk_append(vec![row(2, "b", 1), row(1, "dup", 2)]),
            Err(StorageError::DuplicateKey { .. })
        ));
        // ... and within the batch itself.
        assert!(matches!(
            t.bulk_append(vec![row(3, "c", 1), row(3, "c2", 2)]),
            Err(StorageError::DuplicateKey { .. })
        ));
        assert_eq!(t.len(), 1, "failed batch leaves the table untouched");
        assert_eq!(t.slot_count(), 1);
        assert!(t.lookup_pk(&Value::Int(2)).is_none());
    }

    #[test]
    fn bulk_append_lands_at_tail_not_free_slots() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        t.delete(r1).unwrap();
        let (first, n) = t.bulk_append(vec![row(3, "eve", 25), row(4, "kim", 30)]).unwrap();
        assert_eq!((first, n), (2, 2), "batch is contiguous at the tail");
        assert!(t.get(RowId(0)).is_none(), "freed slot is not recycled by a batch");
        assert_eq!(t.len(), 3);
        // The freed slot is still available to the per-row path afterwards.
        assert_eq!(t.insert(row(5, "joe", 40)).unwrap(), r1);
    }

    #[test]
    fn bulk_append_canonicalizes_and_indexes_once() {
        let mut t = Table::new(TableSchema::new(
            "m",
            vec![Column::not_null("id", DataType::Int), Column::new("score", DataType::Float)],
            vec![0],
        ));
        t.create_index("by_score", vec![1], IndexKind::Hash).unwrap();
        t.bulk_append(vec![
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(2), Value::Float(5.0)],
        ])
        .unwrap();
        assert!(matches!(t.get(RowId(0)).unwrap()[1], Value::Float(f) if f == 5.0));
        assert_eq!(t.index_lookup(&[1], &Value::Float(5.0)).unwrap().len(), 2);
        // Column view is slot-aligned with the batch too.
        assert_eq!(t.column_slice(0).unwrap().value_at(1), Value::Int(2));
    }

    #[test]
    fn delete_frees_slot_and_reuses_it() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        let old = t.delete(r1).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.len(), 1);
        let r3 = t.insert(row(3, "eve", 25)).unwrap();
        assert_eq!(r3, r1, "freed slot is recycled");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pk_lookup_follows_updates() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        t.update(rid, row(5, "ada", 37)).unwrap();
        assert!(t.lookup_pk(&Value::Int(1)).is_none());
        let (_, r) = t.lookup_pk(&Value::Int(5)).unwrap();
        assert_eq!(r[2], Value::Int(37));
    }

    #[test]
    fn update_to_existing_key_rejected() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        assert!(matches!(t.update(rid, row(2, "ada", 36)), Err(StorageError::DuplicateKey { .. })));
        // Unchanged on failure.
        assert_eq!(t.lookup_pk(&Value::Int(1)).unwrap().1[1], Value::str("ada"));
    }

    #[test]
    fn secondary_index_maintained_across_mutations() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 36)).unwrap();
        t.create_index("by_age", vec![2], IndexKind::Hash).unwrap();
        assert_eq!(t.index_lookup(&[2], &Value::Int(36)).unwrap().len(), 2);
        t.update(r1, row(1, "ada", 40)).unwrap();
        assert_eq!(t.index_lookup(&[2], &Value::Int(36)).unwrap().len(), 1);
        assert_eq!(t.index_lookup(&[2], &Value::Int(40)).unwrap().len(), 1);
        t.delete(r1).unwrap();
        assert!(t.index_lookup(&[2], &Value::Int(40)).unwrap().is_empty());
    }

    #[test]
    fn restore_undoes_delete_exactly() {
        let mut t = people();
        let rid = t.insert(row(1, "ada", 36)).unwrap();
        let old = t.delete(rid).unwrap();
        t.restore(rid, old).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.lookup_pk(&Value::Int(1)).is_some());
        assert!(t.restore(rid, row(1, "x", 0)).is_err(), "occupied slot rejected");
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        t.delete(r1).unwrap();
        let ids: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn scan_slots_partitions_scan() {
        let mut t = people();
        for i in 0..10 {
            t.insert(row(i, "p", i)).unwrap();
        }
        t.delete(RowId(4)).unwrap();
        let full: Vec<i64> = t.scan().map(|(_, r)| r[0].as_int().unwrap()).collect();
        let mut pieced = Vec::new();
        for start in (0..t.slot_count()).step_by(3) {
            pieced.extend(
                t.scan_slots(start..start + 3).map(|(_, r)| r[0].as_int().unwrap()),
            );
        }
        assert_eq!(pieced, full, "contiguous slot morsels cover the scan exactly once");
        // A tail morsel may overshoot slot_count at its *end*; it is clamped.
        let tail: Vec<i64> = t.scan_slots(8..200).map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(tail, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "scan_slots range starts at")]
    #[cfg(debug_assertions)]
    fn scan_slots_start_past_end_is_caller_bug() {
        let mut t = people();
        t.insert(row(1, "ada", 36)).unwrap();
        // A start beyond slot_count can never come from a correct morsel
        // partition; it must panic loudly in debug builds.
        let _ = t.scan_slots(100..200).count();
    }

    #[test]
    fn slot_epoch_stamps_track_write_paths() {
        let mut t = people();
        t.set_write_epoch(3);
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        assert_eq!(t.slot_epochs(r1.idx()), Some((3, u64::MAX)));
        assert!(t.slot_visible_at(r1.idx(), 3) && t.slot_visible_at(r1.idx(), 9));
        assert!(!t.slot_visible_at(r1.idx(), 2), "not visible before creation");

        t.set_write_epoch(5);
        let old = t.delete(r1).unwrap();
        assert_eq!(t.slot_epochs(r1.idx()), Some((3, 5)));
        assert!(t.slot_visible_at(r1.idx(), 4) && !t.slot_visible_at(r1.idx(), 5));

        t.set_write_epoch(6);
        t.restore(r1, old).unwrap();
        assert_eq!(t.slot_epochs(r1.idx()), Some((6, u64::MAX)));

        t.set_write_epoch(8);
        t.update(r1, row(1, "ada", 40)).unwrap();
        assert_eq!(t.slot_epochs(r1.idx()), Some((8, u64::MAX)), "update is a new version");

        t.truncate();
        assert_eq!(t.slot_epochs(r1.idx()), None);
    }

    #[test]
    fn truncate_clears_rows_keeps_indexes() {
        let mut t = people();
        t.create_index("by_age", vec![2], IndexKind::BTree).unwrap();
        t.insert(row(1, "ada", 36)).unwrap();
        t.truncate();
        assert_eq!(t.len(), 0);
        assert!(t.has_index_on(&[2]));
        t.insert(row(1, "ada", 36)).unwrap();
        assert_eq!(t.index_lookup(&[2], &Value::Int(36)).unwrap().len(), 1);
    }

    #[test]
    fn float_column_canonicalizes_int_ingest() {
        let mut t = Table::new(TableSchema::new(
            "m",
            vec![Column::not_null("id", DataType::Int), Column::new("score", DataType::Float)],
            vec![0],
        ));
        let rid = t.insert(vec![Value::Int(1), Value::Int(5)]).unwrap();
        assert!(
            matches!(t.get(rid).unwrap()[1], Value::Float(f) if f == 5.0),
            "Int widened to Float at ingest"
        );
        // Index keys see the canonical representation too.
        t.create_index("by_score", vec![1], IndexKind::Hash).unwrap();
        t.insert(vec![Value::Int(2), Value::Float(5.0)]).unwrap();
        assert_eq!(t.index_lookup(&[1], &Value::Float(5.0)).unwrap().len(), 2);
        // Update path canonicalizes as well.
        t.update(rid, vec![Value::Int(1), Value::Int(7)]).unwrap();
        assert!(matches!(t.get(rid).unwrap()[1], Value::Float(f) if f == 7.0));
    }

    #[test]
    fn stats_reflect_live_rows() {
        let mut t = people();
        let r1 = t.insert(row(1, "ada", 36)).unwrap();
        t.insert(row(2, "bob", 20)).unwrap();
        t.delete(r1).unwrap();
        let stats = t.compute_stats();
        assert_eq!(stats.row_count, 1);
        assert_eq!(stats.columns[0].min, Some(Value::Int(2)));
    }

    /// A table with every column shape, churned through insert / update /
    /// delete / restore so the column view has tombstones, recycled slots,
    /// and dead dictionary entries.
    fn churned_mixed_table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "mixed",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("score", DataType::Float),
                Column::new("flag", DataType::Bool),
                Column::new("tag", DataType::Text),
                Column::new("mv", DataType::Int.array_of()),
            ],
            vec![0],
        ));
        for i in 0..20i64 {
            t.insert(vec![
                Value::Int(i),
                if i % 4 == 0 { Value::Null } else { Value::Int(i * 3) }, // widens to Float
                if i % 5 == 0 { Value::Null } else { Value::Bool(i % 2 == 0) },
                if i % 3 == 0 { Value::Null } else { Value::str(["red", "green", "blue"][(i % 3) as usize]) },
                if i % 6 == 0 { Value::Null } else { Value::Array(vec![Value::Int(i), Value::Int(i + 1)]) },
            ])
            .unwrap();
        }
        let gone = t.delete(RowId(3)).unwrap();
        t.delete(RowId(7)).unwrap();
        t.delete(RowId(19)).unwrap(); // trailing tombstone
        t.restore(RowId(3), gone).unwrap();
        t.update(RowId(5), vec![Value::Int(105), Value::Float(-0.0), Value::Bool(false), Value::str("red"), Value::Null])
            .unwrap();
        t.insert(vec![Value::Int(200), Value::Float(f64::NAN), Value::Null, Value::str("violet"), Value::Null])
            .unwrap(); // recycles a freed slot
        t
    }

    #[test]
    fn columnar_stats_match_row_pass_exactly() {
        let t = churned_mixed_table();
        let row_pass = TableStats::compute(t.scan().map(|(_, r)| r.as_slice()), t.schema().arity());
        assert_eq!(t.compute_stats(), row_pass, "columnar one-pass stats must be identical");
        // Dictionary NDV counts *live* strings only: "violet" replaced one
        // deleted row; dead codes must not inflate the count.
        assert_eq!(row_pass.columns[3].ndv, t.compute_stats().columns[3].ndv);
    }

    #[test]
    fn column_view_tracks_all_write_paths() {
        let t = churned_mixed_table();
        assert_eq!(t.live_slots().count_ones(), t.len());
        for c in 0..4 {
            let s = t.column_slice(c).expect("scalar column");
            for (rid, row) in t.scan() {
                let got = s.value_at(rid.idx());
                match (&got, &row[c]) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "col {c} slot {rid}")
                    }
                    (a, b) => assert_eq!(a, b, "col {c} slot {rid}"),
                }
            }
        }
        assert!(t.column_slice(4).is_none(), "array column is row-only");
        // The trailing tombstone is dead in the live bitmap; the restored
        // slot and the recycled slot (the 200-row reused freed slot 7) live.
        assert!(!t.live_slots().get(19));
        assert!(t.live_slots().get(3), "restored slot is live again");
        assert_eq!(t.column_slice(0).unwrap().value_at(7), Value::Int(200), "freed slot recycled");
    }

    #[test]
    fn column_view_survives_snapshot_roundtrip_and_truncate() {
        let t = churned_mixed_table();
        let rebuilt = Table::from_slots(t.schema().clone(), t.slots_vec()).unwrap();
        assert_eq!(rebuilt.compute_stats(), t.compute_stats());
        assert_eq!(rebuilt.live_slots().count_ones(), t.len());
        let mut t2 = t.clone();
        t2.truncate();
        assert_eq!(t2.live_slots().count_ones(), 0);
        assert_eq!(t2.compute_stats().row_count, 0);
        // Insert after truncate repopulates the column view from scratch.
        t2.insert(vec![Value::Int(1), Value::Null, Value::Null, Value::str("x"), Value::Null]).unwrap();
        assert_eq!(t2.column_slice(0).unwrap().value_at(0), Value::Int(1));
    }
}
